"""The CPM continuous monitoring algorithm (Section 3).

The monitor owns the grid ``G``, the query table ``QT`` and the full
processing pipeline:

* **NN computation** (Figure 3.4) — best-first search over the conceptual
  partitioning; processes the minimal set of cells (those intersecting the
  circle with radius ``best_dist``) and leaves behind the visit list, the
  residual search heap and the influence-list marks.
* **NN re-computation** (Figure 3.6) — re-runs an affected query by
  re-scanning the visit list sequentially (O(1) "get next" instead of heap
  operations) and only then resuming the residual heap.
* **Update handling** (Figure 3.8) — batch processing of a cycle's object
  updates.  Only queries whose influence region intersects an updated cell
  are touched; if the k best incomers (``in_list``) outnumber the outgoing
  NNs (``out_count``) the new result is assembled *without accessing the
  grid*, otherwise re-computation runs.
* **NN monitoring** (Figure 3.9) — the per-cycle driver: object updates
  first (ignoring queries that received updates), then query terminations,
  movements (termination + re-insertion) and insertions.

Query generality (Section 5): any :class:`repro.core.strategies.QueryStrategy`
can be installed, so the same engine monitors point NN, aggregate NN
(sum/min/max) and constrained queries.

Ablation/robustness switches (see DESIGN.md):

* ``reuse_bookkeeping=False`` — the paper's low-memory fallback: drop the
  visit list/heap and recompute affected queries from scratch.
* ``merge_optimization=False`` — disable the Section 3.3 batch enhancement;
  any outgoing NN triggers re-computation as in the single-update
  processing of Section 3.2.
"""

from __future__ import annotations

from bisect import insort
from collections.abc import Iterable, Sequence
from heapq import heappop, heappush
from itertools import repeat
from math import hypot, inf as _INF

from repro.core.bookkeeping import CycleScratch, QueryState
from repro.core.heap import CELL, RECT
from repro.core.partition import DIRECTIONS
from repro.core.strategies import (
    AggregateNNStrategy,
    ConstrainedStrategy,
    FilteredStrategy,
    PointNNStrategy,
    QueryStrategy,
)
from repro.geometry.aggregates import AggregateFunction
from repro.geometry.points import Point
from repro.geometry.rects import Rect
from repro.grid.grid import Grid
from repro.grid.kernels import VEC_MIN_BATCH as _VEC_MIN_BATCH, KernelBackend
from repro.grid.stats import GridStats
from repro.monitor import ContinuousMonitor, QueryRecord, ResultEntry
from repro.updates import (
    FlatUpdateBatch,
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
)


class CPMMonitor(ContinuousMonitor):
    """Conceptual Partitioning Monitoring over a main-memory grid."""

    name = "CPM"

    def __init__(
        self,
        cells_per_axis: int = 128,
        *,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        delta: float | None = None,
        reuse_bookkeeping: bool = True,
        merge_optimization: bool = True,
        backend: str | KernelBackend | None = None,
    ) -> None:
        if delta is not None:
            self._grid = Grid(delta=delta, bounds=bounds, backend=backend)
        else:
            self._grid = Grid(cells_per_axis, bounds=bounds, backend=backend)
        # oid -> packed cell id: the authoritative object->cell map.  The
        # update loop reads it instead of re-deriving the old cell from
        # the update's old coordinates (one dict hit versus ~a dozen
        # float/int operations per endpoint).  It is also the only
        # per-object side table: positions are *not* shadowed in a second
        # dict — object_position() reads them back through the cell
        # columns, so the update loops save one dict store (and, on the
        # flat path, one tuple allocation) per move.
        self._object_cells: dict[int, int] = {}
        self._queries: dict[int, QueryState] = {}
        # qid -> (state, nn, qx, qy, is_point): the influence-probe
        # record.  One dict hit + tuple unpack replaces an attribute
        # chase per probed query in the update loop (the fields are
        # immutable per installation; the NeighborList identity is stable
        # - replace() swaps its internals, not the object).
        self._query_probes: dict[int, tuple] = {}
        # Recycled CycleScratch instances (see CycleScratch.reset): the
        # steady-state update loop allocates no per-cycle scratch objects.
        self._scratch_pool: list[CycleScratch] = []
        self.reuse_bookkeeping = reuse_bookkeeping
        self.merge_optimization = merge_optimization

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def grid(self) -> Grid:
        """The underlying object grid ``G`` (read-only use by callers)."""
        return self._grid

    @property
    def stats(self) -> GridStats:
        return self._grid.stats

    @property
    def object_count(self) -> int:
        return len(self._object_cells)

    def object_position(self, oid: int) -> Point | None:
        cid = self._object_cells.get(oid)
        if cid is None:
            return None
        cell = self._grid._cells[cid]
        idx = cell.slot[oid]
        return (cell.xs[idx], cell.ys[idx])

    def iter_objects(self) -> Iterable[tuple[int, Point]]:
        """Ascending-oid iteration (positions read back through the cell
        columns — CPM keeps no second position table)."""
        cells = self._grid._cells
        for oid in sorted(self._object_cells):
            cell = cells[self._object_cells[oid]]
            idx = cell.slot[oid]
            yield oid, (cell.xs[idx], cell.ys[idx])

    def query_ids(self) -> list[int]:
        return list(self._queries)

    def _query_records(self) -> list[QueryRecord]:
        """Capture hook: every query re-installs from its strategy."""
        return [
            QueryRecord(qid, state.k, strategy=state.strategy)
            for qid, state in self._queries.items()
        ]

    def query_state(self, qid: int) -> QueryState:
        """Book-keeping of a query (tests, diagnostics, space accounting)."""
        return self._queries[qid]

    def best_dist(self, qid: int) -> float:
        """Distance of the query's k-th neighbor (``inf`` when under-full)."""
        return self._queries[qid].best_dist

    def influence_cells(self, qid: int) -> list[tuple[int, int]]:
        """Cells currently in the query's influence region (marked cells)."""
        return self._queries[qid].influence_cells()

    # ------------------------------------------------------------------
    # Object population
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        """Bulk-load the initial object set.

        Only valid before any query is installed — afterwards objects must
        arrive as appearance updates so that results stay consistent.
        """
        if self._queries:
            raise RuntimeError(
                "bulk loading after query installation would corrupt results; "
                "send appearance updates instead"
            )
        grid = self._grid
        for oid, (x, y) in objects:
            cid = grid.cell_id(x, y)
            grid.insert_at(cid, oid, (x, y))
            self._object_cells[oid] = cid

    # ------------------------------------------------------------------
    # Query installation (Figure 3.4)
    # ------------------------------------------------------------------

    def install_query(self, qid: int, point: Point, k: int = 1) -> list[ResultEntry]:
        """Register a plain point k-NN query."""
        return self.install_strategy_query(qid, PointNNStrategy(point[0], point[1]), k)

    def install_ann_query(
        self,
        qid: int,
        points: Sequence[Point],
        k: int = 1,
        fn: str | AggregateFunction = "sum",
    ) -> list[ResultEntry]:
        """Register an aggregate NN query over ``points`` (Section 5)."""
        return self.install_strategy_query(qid, AggregateNNStrategy(points, fn), k)

    def install_constrained_query(
        self, qid: int, point: Point, region: Rect, k: int = 1
    ) -> list[ResultEntry]:
        """Register a constrained NN query (Figure 5.3)."""
        strategy = ConstrainedStrategy(PointNNStrategy(point[0], point[1]), region)
        return self.install_strategy_query(qid, strategy, k)

    def install_strategy_query(
        self, qid: int, strategy: QueryStrategy, k: int = 1
    ) -> list[ResultEntry]:
        """Register a query with an arbitrary geometry strategy."""
        if qid in self._queries:
            raise KeyError(f"query {qid} is already installed")
        if isinstance(strategy, FilteredStrategy):
            # Filter predicates read this monitor's live tag table; bound
            # here (not at construction) so strategies travel through
            # specs/wire/pickle free of engine state.
            strategy.bind_tags(self.tag_table)
        state = QueryState(qid, strategy, k, strategy.partition(self._grid))
        self._seed_heap(state)
        self._run_search(state)
        state.best_dist = state.nn.kth_dist
        state.reconcile_marks(self._grid, processed_upto=state.visit_length)
        self._queries[qid] = state
        self._query_probes[qid] = (
            state, state.nn, state.qx, state.qy, state.is_point
        )
        return state.result_entries()

    def remove_query(self, qid: int) -> None:
        """Terminate a query: drop its QT entry and influence marks."""
        state = self._queries.pop(qid)
        del self._query_probes[qid]
        state.unmark_all(self._grid)

    def result(self, qid: int) -> list[ResultEntry]:
        return self._queries[qid].result_entries()

    # ------------------------------------------------------------------
    # Search internals
    # ------------------------------------------------------------------

    def _seed_heap(self, state: QueryState) -> None:
        """Lines 3-5 of Figure 3.4: en-heap the core cells and the level-0
        rectangle of each direction."""
        grid = self._grid
        strategy = state.strategy
        heap = state.heap
        partition = state.partition
        if state.is_point:
            # Plain point NN: the core is the single query cell (mindist
            # 0 by construction would be wrong for clamped out-of-bounds
            # queries, so it is still computed) and the four level-0 keys
            # are perpendicular gaps (strategies._perpendicular_gap,
            # inlined; same float ops).
            qx = state.qx
            qy = state.qy
            ci = partition.i_lo
            cj = partition.j_lo
            bounds = grid.bounds
            bx0 = bounds.x0
            by0 = bounds.y0
            delta = grid.delta
            heap.push_cell(grid.mindist_xy(ci, cj, qx, qy), ci, cj)
            rows_2 = partition.rows - 2
            cols_2 = partition.cols - 2
            if cj <= rows_2:  # UP_0 exists
                gap = by0 + (cj + 1) * delta - qy
                heap.push_rect(gap if gap > 0.0 else 0.0, 0, 0)
            if ci <= cols_2:  # RIGHT_0
                gap = bx0 + (ci + 1) * delta - qx
                heap.push_rect(gap if gap > 0.0 else 0.0, 1, 0)
            if cj >= 1:  # DOWN_0
                gap = qy - (by0 + cj * delta)
                heap.push_rect(gap if gap > 0.0 else 0.0, 2, 0)
            if ci >= 1:  # LEFT_0
                gap = qx - (bx0 + ci * delta)
                heap.push_rect(gap if gap > 0.0 else 0.0, 3, 0)
        else:
            for i, j in partition.core_cells():
                if strategy.cell_allowed(grid, i, j):
                    heap.push_cell(strategy.cell_key(grid, i, j), i, j)
            for direction in DIRECTIONS:
                if partition.exists(direction, 0):
                    heap.push_rect(
                        strategy.strip_key0(grid, partition, direction), direction, 0
                    )

    def _run_search(self, state: QueryState) -> None:
        """The de-heaping loop of Figure 3.4 (also the heap continuation of
        Figure 3.6): process entries in ascending key order until the next
        key is ``>= best_dist`` (``kth_dist`` is ``inf`` while under-full,
        so the comparison never stops an unfinished search).

        De-heaped cells run lines 10-12 of Figure 3.4 inline: scan the
        cell, update ``best_NN``, insert the query into the cell's
        influence list, extend the visit list.  For plain point queries the
        cell scan is the fused :meth:`Grid.scan_within` kernel (distances
        computed and bounded by the k-th distance in one comprehension)
        and the best-NN insertion (the semantics of ``NeighborList.add``)
        is inlined against the live entry/distance containers — this is
        the hottest loop of the library.
        """
        grid = self._grid
        strategy = state.strategy
        heap = state.heap
        nn = state.nn
        partition = state.partition
        step = strategy.level_step(grid)
        is_point = state.is_point
        qx = state.qx
        qy = state.qy
        qid = state.qid
        rows = grid.rows
        visit_cids = state.visit_cids
        visit_keys = state.visit_keys
        # Inlined partition geometry for the point path: the core cell,
        # the workspace frame and the per-direction level bounds (the
        # max_level arithmetic of ConceptualPartition) as plain locals.
        bounds = grid.bounds
        bx0 = bounds.x0
        by0 = bounds.y0
        bx1 = bounds.x1
        by1 = bounds.y1
        delta = grid.delta
        cols_1 = grid.cols - 1
        rows_1 = rows - 1
        ci = partition.i_lo
        cj = partition.j_lo
        # Inlined grid storage (the mirror contract of the grid module
        # docstring): the cell columns, the mark store and the counters
        # are driven directly — zero function frames per processed cell.
        cells_store = grid._cells
        marks_store = grid._marks
        stats = grid.stats
        # Vectorized cell-scan kernel (numpy backend; None elsewhere).
        vec_within = grid._vec_within
        vec_min = grid._vec_min
        # The NN list identity is stable here: the search only inserts (in
        # place); replace() — which rebinds — never runs during a search.
        heap_list = heap._heap
        entries = nn._entries
        dists = nn._dists
        k = nn.k
        n_cur = len(entries)
        kd = entries[k - 1][0] if n_cur >= k else _INF
        # Counters accumulate in locals and flush once after the loop:
        # nothing reads them mid-search, and an attribute bump per cell
        # is measurable at this loop's trip count.
        n_scans = 0
        n_objs = 0
        n_marks = 0
        while heap_list:
            if heap_list[0][0] >= kd:
                break
            key, _seq, kind, a, b = heappop(heap_list)
            if kind == CELL:
                cid = a * rows + b
                # Inlined Grid.scan_within / scan_all_flat: one charged
                # cell access, objects_scanned bumped by the population.
                cell = cells_store[cid]
                n_scans += 1
                if cell is not None and (coids := cell.oids):
                    n_objs += len(coids)
                    if is_point:
                        if vec_within is not None and len(coids) >= vec_min:
                            # Vectorized prefilter bounded by the
                            # loop-entry kd — a superset of everything
                            # the scalar loop accepts (kd only shrinks)
                            # — then the same merge re-applying the
                            # live kd, so the outcome is identical.
                            for d, oid in vec_within(cell, qx, qy, kd):
                                if d <= kd:
                                    if n_cur < k:
                                        insort(entries, (d, oid))
                                        dists[oid] = d
                                        n_cur += 1
                                        if n_cur == k:
                                            kd = entries[-1][0]
                                    else:
                                        entry = (d, oid)
                                        last = entries[-1]
                                        if entry < last:
                                            entries.pop()
                                            del dists[last[1]]
                                            insort(entries, entry)
                                            dists[oid] = d
                                            kd = entries[-1][0]
                            # (fall through to the mark bookkeeping)
                        else:
                            # Fused scan-and-merge over the coordinate
                            # columns; ties resolve by (dist, oid) entry
                            # order exactly as NeighborList.add.
                            for oid, x, y in zip(coids, cell.xs, cell.ys):
                                d = hypot(x - qx, y - qy)
                                if d <= kd:
                                    if n_cur < k:
                                        insort(entries, (d, oid))
                                        dists[oid] = d
                                        n_cur += 1
                                        if n_cur == k:
                                            kd = entries[-1][0]
                                    else:
                                        entry = (d, oid)
                                        last = entries[-1]
                                        if entry < last:
                                            entries.pop()
                                            del dists[last[1]]
                                            insort(entries, entry)
                                            dists[oid] = d
                                            kd = entries[-1][0]
                    else:
                        for oid, x, y in zip(coids, cell.xs, cell.ys):
                            if strategy.accepts(x, y, oid):
                                nn.add(strategy.dist(x, y), oid)
                        n_cur = len(entries)
                        kd = entries[k - 1][0] if n_cur >= k else _INF
                # Inlined Grid.add_mark_id (idempotent influence mark).
                ms = marks_store[cid]
                if ms is None:
                    marks_store[cid] = {qid}
                    n_marks += 1
                elif qid not in ms:
                    ms.add(qid)
                    n_marks += 1
                visit_cids.append(cid)
                visit_keys.append(key)
            elif is_point:
                # Rectangle expansion, point path: the strip ranges (the
                # pinwheel arms of ConceptualPartition.strip_cell_range),
                # the per-cell mindist (exact float ops of
                # Grid.mindist_xy) and the heap pushes all run inline —
                # this is where most heap entries are born.
                direction, level = a, b
                seq = heap._seq
                if direction == 0:  # UP: row cj+level+1, columns vary
                    jj = cj + level + 1
                    lo = ci - level
                    if lo < 0:
                        lo = 0
                    hi = ci + level + 1
                    if hi > cols_1:
                        hi = cols_1
                    horizontal = True
                    nxt = rows_1 - 1 - cj >= level + 1
                elif direction == 1:  # RIGHT: column ci+level+1, rows vary
                    ii = ci + level + 1
                    lo = cj - level - 1
                    if lo < 0:
                        lo = 0
                    hi = cj + level
                    if hi > rows_1:
                        hi = rows_1
                    horizontal = False
                    nxt = cols_1 - 1 - ci >= level + 1
                elif direction == 2:  # DOWN: row cj-level-1, columns vary
                    jj = cj - level - 1
                    lo = ci - level - 1
                    if lo < 0:
                        lo = 0
                    hi = ci + level
                    if hi > cols_1:
                        hi = cols_1
                    horizontal = True
                    nxt = cj - 1 >= level + 1
                else:  # LEFT: column ci-level-1, rows vary
                    ii = ci - level - 1
                    lo = cj - level
                    if lo < 0:
                        lo = 0
                    hi = cj + level + 1
                    if hi > rows_1:
                        hi = rows_1
                    horizontal = False
                    nxt = ci - 1 >= level + 1
                if horizontal:
                    # Fixed-row arm: dy is constant (same branch structure
                    # as mindist_xy, computed once), dx varies per column.
                    y0 = by0 + jj * delta
                    if qy < y0:
                        dy = y0 - qy
                    else:
                        y1 = y0 + delta
                        if jj == rows_1 and y1 < by1:
                            y1 = by1
                        dy = qy - y1 if qy > y1 else 0.0
                    for i in range(lo, hi + 1):
                        x0 = bx0 + i * delta
                        if qx < x0:
                            dx = x0 - qx
                        else:
                            x1 = x0 + delta
                            if i == cols_1 and x1 < bx1:
                                x1 = bx1
                            dx = qx - x1 if qx > x1 else 0.0
                        if dx == 0.0:
                            md = dy
                        elif dy == 0.0:
                            md = dx
                        else:
                            md = hypot(dx, dy)
                        seq += 1
                        heappush(heap_list, (md, seq, CELL, i, jj))
                else:
                    # Fixed-column arm: dx constant, dy varies per row.
                    x0 = bx0 + ii * delta
                    if qx < x0:
                        dx = x0 - qx
                    else:
                        x1 = x0 + delta
                        if ii == cols_1 and x1 < bx1:
                            x1 = bx1
                        dx = qx - x1 if qx > x1 else 0.0
                    for j in range(lo, hi + 1):
                        y0 = by0 + j * delta
                        if qy < y0:
                            dy = y0 - qy
                        else:
                            y1 = y0 + delta
                            if j == rows_1 and y1 < by1:
                                y1 = by1
                            dy = qy - y1 if qy > y1 else 0.0
                        if dx == 0.0:
                            md = dy
                        elif dy == 0.0:
                            md = dx
                        else:
                            md = hypot(dx, dy)
                        seq += 1
                        heappush(heap_list, (md, seq, CELL, ii, j))
                if nxt:
                    # Inlined SearchHeap.push_rect (Lemma 3.1 key step).
                    seq += 1
                    heappush(heap_list, (key + step, seq, RECT, direction, level + 1))
                heap._seq = seq
            else:
                direction, level = a, b
                for i, j in partition.strip_cells(direction, level):
                    if strategy.cell_allowed(grid, i, j):
                        heap.push_cell(strategy.cell_key(grid, i, j), i, j)
                if partition.exists(direction, level + 1):
                    heap.push_rect(key + step, direction, level + 1)
        if n_scans:
            stats.cell_scans += n_scans
            stats.objects_scanned += n_objs
        if n_marks:
            stats.mark_ops += n_marks
            grid._mark_count += n_marks
        # Every de-heaped cell was marked and appended above, so the
        # marked prefix always extends exactly to the visit-list end.
        if state.marked_upto < len(visit_cids):
            state.marked_upto = len(visit_cids)

    def _recompute(self, state: QueryState) -> None:
        """NN re-computation (Figure 3.6): rescan the visit list first, then
        resume the residual heap."""
        grid = self._grid
        nn = state.nn
        nn.clear()
        visit_cids = state.visit_cids
        visit_keys = state.visit_keys
        cells_store = grid._cells
        stats = grid.stats
        vec_within = grid._vec_within
        vec_min = grid._vec_min
        qid = state.qid
        is_point = state.is_point
        qx = state.qx
        qy = state.qy
        strategy = state.strategy
        pos = 0
        total = len(visit_cids)
        entries = nn._entries
        dists = nn._dists
        k = nn.k
        n_cur = 0
        n_scans = 0
        n_objs = 0
        kd = _INF  # the list was just cleared; under-full never stops a scan
        while pos < total:
            if visit_keys[pos] >= kd:
                break
            cid = visit_cids[pos]
            # Inlined Grid.scan_within / scan_all_flat over the cell
            # columns + inline best-NN insertion (same semantics as
            # NeighborList.add, see _run_search); counters flush once
            # after the loop, as in _run_search.
            cell = cells_store[cid]
            n_scans += 1
            if cell is not None and (coids := cell.oids):
                n_objs += len(coids)
                if is_point:
                    if vec_within is not None and len(coids) >= vec_min:
                        # Vectorized prefilter by the loop-entry kd (a
                        # superset of the scalar accepts — kd only
                        # shrinks); the merge re-applies the live kd,
                        # so the outcome is identical (see _run_search).
                        for d, oid in vec_within(cell, qx, qy, kd):
                            if d <= kd:
                                if n_cur < k:
                                    insort(entries, (d, oid))
                                    dists[oid] = d
                                    n_cur += 1
                                    if n_cur == k:
                                        kd = entries[-1][0]
                                else:
                                    entry = (d, oid)
                                    last = entries[-1]
                                    if entry < last:
                                        entries.pop()
                                        del dists[last[1]]
                                        insort(entries, entry)
                                        dists[oid] = d
                                        kd = entries[-1][0]
                    else:
                        for oid, x, y in zip(coids, cell.xs, cell.ys):
                            d = hypot(x - qx, y - qy)
                            if d <= kd:
                                if n_cur < k:
                                    insort(entries, (d, oid))
                                    dists[oid] = d
                                    n_cur += 1
                                    if n_cur == k:
                                        kd = entries[-1][0]
                                else:
                                    entry = (d, oid)
                                    last = entries[-1]
                                    if entry < last:
                                        entries.pop()
                                        del dists[last[1]]
                                        insort(entries, entry)
                                        dists[oid] = d
                                        kd = entries[-1][0]
                else:
                    for oid, x, y in zip(coids, cell.xs, cell.ys):
                        if strategy.accepts(x, y, oid):
                            nn.add(strategy.dist(x, y), oid)
                    kd = nn.kth_dist
            if pos >= state.marked_upto:
                grid.add_mark_id(cid, qid)
                state.marked_upto = pos + 1
            pos += 1
        if n_scans:
            stats.cell_scans += n_scans
            stats.objects_scanned += n_objs
        if pos == total:
            # The whole visit list was consumed; the residual heap holds the
            # frontier (its minimum key is >= every visit-list key).
            self._run_search(state)
            pos = state.visit_length
        state.best_dist = nn.kth_dist
        state.reconcile_marks(grid, processed_upto=pos)

    def _recompute_from_scratch(self, state: QueryState) -> None:
        """Low-memory / ablation path: forget the book-keeping and run the
        full NN computation again (Section 3.3, last paragraph)."""
        state.unmark_all(self._grid)
        state.drop_bookkeeping()
        state.nn.clear()
        state.best_dist = float("inf")
        self._seed_heap(state)
        self._run_search(state)
        state.best_dist = state.nn.kth_dist
        state.reconcile_marks(self._grid, processed_upto=state.visit_length)

    def drop_bookkeeping(self, qid: int) -> None:
        """Manually shed a query's visit list and heap to free memory; the
        query keeps being monitored, falling back to computation from
        scratch on its next re-computation."""
        state = self._queries[qid]
        marked = state.influence_cells()
        state.unmark_all(self._grid)
        state.drop_bookkeeping()
        # The influence marks must survive — update filtering depends on
        # them — so re-mark the same cells through a synthetic visit list
        # (sorted by key, preserving the ascending-key invariant).
        keyed = sorted(
            (state.strategy.cell_key(self._grid, i, j), (i, j)) for i, j in marked
        )
        for key, coord in keyed:
            state.append_visit(key, coord)
            self._grid.add_mark(coord, qid)
        state.marked_upto = state.visit_length

    # ------------------------------------------------------------------
    # Update handling (Figures 3.8 and 3.9)
    # ------------------------------------------------------------------

    def _acquire_scratch(self, state: QueryState) -> CycleScratch:
        """Pooled CycleScratch (recycled across cycles, see Figure 3.8).

        Scratch acquisition is the first touch of a query within a cycle
        and always precedes the first mutation of its NN list, so this is
        where the pre-cycle result is captured — the exact reference for
        change detection (``CycleScratch.before``) and delta reporting.
        """
        pool = self._scratch_pool
        if pool:
            sc = pool.pop()
            sc.reset(state.k)
        else:
            sc = CycleScratch(state.k)
        before = state.nn.entries()
        sc.before = before
        log = self._delta_log
        if log is not None and state.qid not in log:
            log[state.qid] = before
        return sc

    def process_deltas(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ):
        """Targeted-capture delta reporting: only touched queries pay."""
        return self._process_deltas_captured(object_updates, query_updates)

    def process_deltas_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ):
        """Columnar delta reporting: :meth:`process_flat` with capture.

        The capture hook lives in :meth:`_acquire_scratch`, which the
        flat loop shares with :meth:`process`, so streaming deployments
        keep the columnar apply — no fallback through
        ``to_object_updates``.  Deltas are byte-identical to
        :meth:`process_deltas` over the translated batch (pinned by
        tests/test_flat_delta_capture.py).
        """
        if query_updates is None:
            query_updates = batch.query_updates
        return self._captured_deltas(
            query_updates, lambda: self.process_flat(batch, query_updates)
        )

    def process(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> set[int]:
        grid = self._grid
        # "Queries that receive updates are ignored when handling object
        # updates in order to avoid waste of computations" (Section 3.3).
        updated_qids = {qu.qid for qu in query_updates}
        scratch: dict[int, CycleScratch] = {}
        cell_id = grid.cell_id
        scratch_get = scratch.get
        # Inlined cell addressing (same float ops as Grid.cell_id), the
        # live mark/cell stores and the counters: one multiply-add + one
        # index per influence probe, zero function frames per columnar
        # mutation (the storage-mirror contract of the grid module).
        marks_store = grid._marks
        cells_store = grid._cells
        stats = grid.stats
        object_cells = self._object_cells
        probes = self._query_probes
        cell_cls = grid.cell_factory
        bounds = grid.bounds
        bx0 = bounds.x0
        by0 = bounds.y0
        delta = grid.delta
        cols = grid.cols
        rows = grid.rows
        cols_1 = cols - 1
        rows_1 = rows - 1

        n_del = 0
        n_ins = 0
        for upd in object_updates:
            oid = upd.oid
            old = upd.old
            new = upd.new
            if old is not None and new is not None:
                # The old cell comes from the object->cell map (identical
                # to re-deriving it from the old coordinates for any
                # consistent stream); the new cell is inlined Grid.cell_id
                # (same float ops).
                old_cid = object_cells[oid]
                nx = new[0]
                ny = new[1]
                i = int((nx - bx0) / delta)
                if i < 0:
                    i = 0
                elif i > cols_1:
                    i = cols_1
                j = int((ny - by0) / delta)
                if j < 0:
                    j = 0
                elif j > rows_1:
                    j = rows_1
                new_cid = i * rows + j
                if old_cid == new_cid:
                    # Same-cell move (the common case at coarse grids): two
                    # in-place column stores and one influence probe
                    # instead of a delete/insert pair touching the mark set
                    # twice.  The combined loop below is exactly the
                    # delete-phase followed by the insert-phase of Figure
                    # 3.8 for a cell whose mark set is probed once.
                    # (Inlined Grid.relocate_at.)
                    cell = cells_store[old_cid]
                    idx = None if cell is None else cell.slot.get(oid)
                    if idx is None:
                        raise KeyError(
                            f"object {oid} not found in cell "
                            f"{grid.unpack(old_cid)}"
                        )
                    cell.xs[idx] = nx
                    cell.ys[idx] = ny
                    n_del += 1
                    n_ins += 1
                    ms = marks_store[old_cid]
                    if ms:
                        for qid in ms:
                            if qid in updated_qids:
                                continue
                            state, nn, pqx, pqy, ispt = probes[qid]
                            sc = scratch_get(qid)
                            if ispt:
                                d = hypot(nx - pqx, ny - pqy)
                                ok = True
                            else:
                                ok = state.strategy.accepts(nx, ny, oid)
                                d = state.strategy.dist(nx, ny) if ok else 0.0
                            if oid in nn._dists:
                                if sc is None:
                                    sc = scratch[qid] = self._acquire_scratch(state)
                                if ok and d <= state.best_dist:
                                    # p remains in the NN set; update order.
                                    nn.update_dist(oid, d)
                                    sc.note_reorder()
                                else:
                                    nn.remove(oid)
                                    sc.note_outgoing()
                            else:
                                if sc is not None and oid in sc.in_list._dists:
                                    # Pending incomer moved again in-cycle.
                                    sc.in_list.remove(oid)
                                if ok and d <= state.best_dist:
                                    if sc is None:
                                        sc = scratch[qid] = self._acquire_scratch(
                                            state
                                        )
                                    sc.note_incomer(d, oid)
                    continue
                # Cross-cell move: delete phase on the old cell...
                # (Inlined Grid.delete_at: delete-by-swap on the columns.)
                cell = cells_store[old_cid]
                idx = None if cell is None else cell.slot.pop(oid, None)
                if idx is None:
                    raise KeyError(
                        f"object {oid} not found in cell {grid.unpack(old_cid)}"
                    )
                coids = cell.oids
                last_oid = coids.pop()
                lx = cell.xs.pop()
                ly = cell.ys.pop()
                if last_oid != oid:
                    coids[idx] = last_oid
                    cell.xs[idx] = lx
                    cell.ys[idx] = ly
                    cell.slot[last_oid] = idx
                elif not coids:
                    grid._occupied -= 1
                grid._n_objects -= 1
                n_del += 1
                ms = marks_store[old_cid]
                if ms:
                    for qid in ms:
                        if qid in updated_qids:
                            continue
                        state, nn, pqx, pqy, ispt = probes[qid]
                        sc = scratch_get(qid)
                        if oid in nn._dists:
                            if sc is None:
                                sc = scratch[qid] = self._acquire_scratch(state)
                            if ispt:
                                d = hypot(nx - pqx, ny - pqy)
                                ok = True
                            else:
                                ok = state.strategy.accepts(nx, ny, oid)
                                d = state.strategy.dist(nx, ny) if ok else 0.0
                            if ok and d <= state.best_dist:
                                # p remains in the NN set; update the order.
                                nn.update_dist(oid, d)
                                sc.note_reorder()
                            else:
                                # p is an outgoing NN (moved beyond
                                # best_dist or left the constraint region).
                                nn.remove(oid)
                                sc.note_outgoing()
                        elif sc is not None and oid in sc.in_list._dists:
                            # A pending incomer moved again within this cycle.
                            sc.in_list.remove(oid)
                # ... then insert phase on the new cell.
                # (Inlined Grid.insert_at: append a row to the columns.)
                cell = cells_store[new_cid]
                if cell is None:
                    cell = cell_cls()
                    cells_store[new_cid] = cell
                slot = cell.slot
                if oid in slot:
                    raise KeyError(
                        f"object {oid} already present in cell "
                        f"{grid.unpack(new_cid)}"
                    )
                coids = cell.oids
                if not coids:
                    grid._occupied += 1
                slot[oid] = len(coids)
                coids.append(oid)
                cell.xs.append(nx)
                cell.ys.append(ny)
                grid._n_objects += 1
                n_ins += 1
                object_cells[oid] = new_cid
                ms = marks_store[new_cid]
                if ms:
                    for qid in ms:
                        if qid in updated_qids:
                            continue
                        state, nn, pqx, pqy, ispt = probes[qid]
                        if oid in nn._dists:
                            continue
                        if ispt:
                            d = hypot(nx - pqx, ny - pqy)
                        else:
                            if not state.strategy.accepts(nx, ny, oid):
                                continue
                            d = state.strategy.dist(nx, ny)
                        if d <= state.best_dist:
                            sc = scratch_get(qid)
                            if sc is None:
                                sc = scratch[qid] = self._acquire_scratch(state)
                            sc.note_incomer(d, oid)
                continue
            if old is not None:
                # Disappearance: off-line NNs are outgoing ones (Section 4.2).
                # (Inlined Grid.delete_at, as in the move path above.)
                old_cid = object_cells.pop(oid)
                cell = cells_store[old_cid]
                idx = None if cell is None else cell.slot.pop(oid, None)
                if idx is None:
                    raise KeyError(
                        f"object {oid} not found in cell {grid.unpack(old_cid)}"
                    )
                coids = cell.oids
                last_oid = coids.pop()
                lx = cell.xs.pop()
                ly = cell.ys.pop()
                if last_oid != oid:
                    coids[idx] = last_oid
                    cell.xs[idx] = lx
                    cell.ys[idx] = ly
                    cell.slot[last_oid] = idx
                elif not coids:
                    grid._occupied -= 1
                grid._n_objects -= 1
                n_del += 1
                ms = marks_store[old_cid]
                if ms:
                    for qid in ms:
                        if qid in updated_qids:
                            continue
                        state, nn, _pqx, _pqy, _ispt = probes[qid]
                        sc = scratch_get(qid)
                        if oid in nn._dists:
                            if sc is None:
                                sc = scratch[qid] = self._acquire_scratch(state)
                            nn.remove(oid)
                            sc.note_outgoing()
                        elif sc is not None and oid in sc.in_list._dists:
                            sc.in_list.remove(oid)
                continue
            # Appearance (old is None; both None is rejected by ObjectUpdate).
            assert new is not None
            new_cid = cell_id(new[0], new[1])
            # (Inlined Grid.insert_at, as in the move path above.)
            cell = cells_store[new_cid]
            if cell is None:
                cell = cell_cls()
                cells_store[new_cid] = cell
            slot = cell.slot
            if oid in slot:
                raise KeyError(
                    f"object {oid} already present in cell {grid.unpack(new_cid)}"
                )
            coids = cell.oids
            if not coids:
                grid._occupied += 1
            slot[oid] = len(coids)
            coids.append(oid)
            cell.xs.append(new[0])
            cell.ys.append(new[1])
            grid._n_objects += 1
            n_ins += 1
            object_cells[oid] = new_cid
            ms = marks_store[new_cid]
            if ms:
                nx = new[0]
                ny = new[1]
                for qid in ms:
                    if qid in updated_qids:
                        continue
                    state, nn, pqx, pqy, ispt = probes[qid]
                    if oid in nn._dists:
                        continue
                    if ispt:
                        d = hypot(nx - pqx, ny - pqy)
                    else:
                        if not state.strategy.accepts(nx, ny, oid):
                            continue
                        d = state.strategy.dist(nx, ny)
                    if d <= state.best_dist:
                        sc = scratch_get(qid)
                        if sc is None:
                            sc = scratch[qid] = self._acquire_scratch(state)
                        sc.note_incomer(d, oid)

        if n_del or n_ins:
            stats.deletes += n_del
            stats.inserts += n_ins

        return self._finish_cycle(scratch, query_updates)

    def process_flat(
        self,
        batch: FlatUpdateBatch,
        query_updates: Sequence[QueryUpdate] | None = None,
    ) -> set[int]:
        """Columnar fast path: one cycle straight off a
        :class:`FlatUpdateBatch`.

        Byte-identical to :meth:`process` over ``batch.to_object_updates()``
        (same changed sets, results and deterministic counters — the
        equivalence suite pins this): the loop below is the update handling
        of Figure 3.8 with every per-update value read from the parallel
        columns by one ``zip`` unpack instead of dataclass attribute reads
        plus position-tuple indexing.

        The zip stays four columns wide on purpose — each extra zip column
        costs measurably at this trip count (``python -m repro.perf
        micro``).  The old coordinates are never read (the authoritative
        old cell comes from the object->cell map, exactly as in
        :meth:`process`) and the appearance mask is not consulted either:
        for any consistent stream an appearing object is exactly one the
        map does not know.  Consequence for *invalid* streams: a movement
        row for an unknown object is treated as an appearance here, where
        :meth:`process` would raise — the validity checks that matter
        (double insert, delete of a missing object) still raise in both.
        """
        if query_updates is None:
            query_updates = batch.query_updates
        updated_qids = {qu.qid for qu in query_updates}
        scratch: dict[int, CycleScratch] = {}
        self._apply_flat_rows(batch, scratch, updated_qids)
        return self._finish_cycle(scratch, query_updates)

    def _apply_flat_rows(
        self,
        batch: FlatUpdateBatch,
        scratch: dict[int, CycleScratch],
        updated_qids: set[int],
    ) -> None:
        """Apply a flat batch's object maintenance + influence probes.

        The per-row loop of :meth:`process_flat`, factored out so cycle
        assembly (scratch, query updates, :meth:`_finish_cycle`) and row
        application are separable: the partitioned shard engine
        (:mod:`repro.service.partition`) overrides this method to splice
        boundary-crossing "leave" rows into the stream and to apply one
        cycle's rows across several commands.
        """
        grid = self._grid
        scratch_get = scratch.get
        # Inlined cell addressing, live stores and counters — the same
        # storage-mirror locals as `process` (see the comments there).
        marks_store = grid._marks
        cells_store = grid._cells
        stats = grid.stats
        object_cells = self._object_cells
        probes = self._query_probes
        cell_cls = grid.cell_factory
        bounds = grid.bounds
        bx0 = bounds.x0
        by0 = bounds.y0
        delta = grid.delta
        rows = grid.rows
        cols_1 = grid.cols - 1
        rows_1 = rows - 1

        object_cells_get = object_cells.get
        # Batch addressing kernel (numpy backend): the new cell of every
        # row precomputed in one vectorized pass and zipped in as a fifth
        # column (full-row alignment — a disappear row's cid is simply
        # never read, which is cheaper than compressing rows out and
        # pulling from an iterator).  The scalar backends zip a stream of
        # ``None`` instead and keep the inlined per-row arithmetic.
        vec_cells = grid._vec_cell_ids
        if vec_cells is not None and len(batch.oids) >= _VEC_MIN_BATCH:
            new_cids: Iterable[int | None] = vec_cells(
                batch.new_xs,
                batch.new_ys,
                bx0,
                by0,
                delta,
                cols_1,
                rows_1,
                rows,
                None,
            )
        else:
            new_cids = repeat(None)
        n_del = 0
        n_ins = 0
        for oid, nx, ny, dis, new_cid in zip(
            batch.oids, batch.new_xs, batch.new_ys, batch.disappear, new_cids
        ):
            if not dis:
                # Movement or appearance: the new cell is needed either
                # way (inlined Grid.cell_id, or the precomputed batch
                # column); one map probe then decides which — a known
                # object moves, an unknown one appears.
                if new_cid is None:
                    i = int((nx - bx0) / delta)
                    if i < 0:
                        i = 0
                    elif i > cols_1:
                        i = cols_1
                    j = int((ny - by0) / delta)
                    if j < 0:
                        j = 0
                    elif j > rows_1:
                        j = rows_1
                    new_cid = i * rows + j
                old_cid = object_cells_get(oid)
                if old_cid is None:
                    # Appearance (inlined Grid.insert_at).
                    cell = cells_store[new_cid]
                    if cell is None:
                        cell = cell_cls()
                        cells_store[new_cid] = cell
                    slot = cell.slot
                    if oid in slot:
                        raise KeyError(
                            f"object {oid} already present in cell "
                            f"{grid.unpack(new_cid)}"
                        )
                    coids = cell.oids
                    if not coids:
                        grid._occupied += 1
                    slot[oid] = len(coids)
                    coids.append(oid)
                    cell.xs.append(nx)
                    cell.ys.append(ny)
                    grid._n_objects += 1
                    n_ins += 1
                    object_cells[oid] = new_cid
                    ms = marks_store[new_cid]
                    if ms:
                        for qid in ms:
                            if qid in updated_qids:
                                continue
                            state, nn, pqx, pqy, ispt = probes[qid]
                            if oid in nn._dists:
                                continue
                            if ispt:
                                d = hypot(nx - pqx, ny - pqy)
                            else:
                                if not state.strategy.accepts(nx, ny, oid):
                                    continue
                                d = state.strategy.dist(nx, ny)
                            if d <= state.best_dist:
                                sc = scratch_get(qid)
                                if sc is None:
                                    sc = scratch[qid] = self._acquire_scratch(
                                        state
                                    )
                                sc.note_incomer(d, oid)
                    continue
                if old_cid == new_cid:
                    # Same-cell move (inlined Grid.relocate_at + one
                    # influence probe; see `process`).
                    cell = cells_store[old_cid]
                    idx = None if cell is None else cell.slot.get(oid)
                    if idx is None:
                        raise KeyError(
                            f"object {oid} not found in cell "
                            f"{grid.unpack(old_cid)}"
                        )
                    cell.xs[idx] = nx
                    cell.ys[idx] = ny
                    n_del += 1
                    n_ins += 1
                    ms = marks_store[old_cid]
                    if ms:
                        for qid in ms:
                            if qid in updated_qids:
                                continue
                            state, nn, pqx, pqy, ispt = probes[qid]
                            sc = scratch_get(qid)
                            if ispt:
                                d = hypot(nx - pqx, ny - pqy)
                                ok = True
                            else:
                                ok = state.strategy.accepts(nx, ny, oid)
                                d = state.strategy.dist(nx, ny) if ok else 0.0
                            if oid in nn._dists:
                                if sc is None:
                                    sc = scratch[qid] = self._acquire_scratch(
                                        state
                                    )
                                if ok and d <= state.best_dist:
                                    # p remains in the NN set; update order.
                                    nn.update_dist(oid, d)
                                    sc.note_reorder()
                                else:
                                    nn.remove(oid)
                                    sc.note_outgoing()
                            else:
                                if sc is not None and oid in sc.in_list._dists:
                                    # Pending incomer moved again in-cycle.
                                    sc.in_list.remove(oid)
                                if ok and d <= state.best_dist:
                                    if sc is None:
                                        sc = scratch[qid] = (
                                            self._acquire_scratch(state)
                                        )
                                    sc.note_incomer(d, oid)
                    continue
                # Cross-cell move: delete phase on the old cell...
                # (Inlined Grid.delete_at: delete-by-swap on the columns.)
                cell = cells_store[old_cid]
                idx = None if cell is None else cell.slot.pop(oid, None)
                if idx is None:
                    raise KeyError(
                        f"object {oid} not found in cell {grid.unpack(old_cid)}"
                    )
                coids = cell.oids
                last_oid = coids.pop()
                lx = cell.xs.pop()
                ly = cell.ys.pop()
                if last_oid != oid:
                    coids[idx] = last_oid
                    cell.xs[idx] = lx
                    cell.ys[idx] = ly
                    cell.slot[last_oid] = idx
                elif not coids:
                    grid._occupied -= 1
                grid._n_objects -= 1
                n_del += 1
                ms = marks_store[old_cid]
                if ms:
                    for qid in ms:
                        if qid in updated_qids:
                            continue
                        state, nn, pqx, pqy, ispt = probes[qid]
                        sc = scratch_get(qid)
                        if oid in nn._dists:
                            if sc is None:
                                sc = scratch[qid] = self._acquire_scratch(state)
                            if ispt:
                                d = hypot(nx - pqx, ny - pqy)
                                ok = True
                            else:
                                ok = state.strategy.accepts(nx, ny, oid)
                                d = state.strategy.dist(nx, ny) if ok else 0.0
                            if ok and d <= state.best_dist:
                                # p remains in the NN set; update the order.
                                nn.update_dist(oid, d)
                                sc.note_reorder()
                            else:
                                # p is an outgoing NN.
                                nn.remove(oid)
                                sc.note_outgoing()
                        elif sc is not None and oid in sc.in_list._dists:
                            sc.in_list.remove(oid)
                # ... then insert phase on the new cell.
                # (Inlined Grid.insert_at: append a row to the columns.)
                cell = cells_store[new_cid]
                if cell is None:
                    cell = cell_cls()
                    cells_store[new_cid] = cell
                slot = cell.slot
                if oid in slot:
                    raise KeyError(
                        f"object {oid} already present in cell "
                        f"{grid.unpack(new_cid)}"
                    )
                coids = cell.oids
                if not coids:
                    grid._occupied += 1
                slot[oid] = len(coids)
                coids.append(oid)
                cell.xs.append(nx)
                cell.ys.append(ny)
                grid._n_objects += 1
                n_ins += 1
                object_cells[oid] = new_cid
                ms = marks_store[new_cid]
                if ms:
                    for qid in ms:
                        if qid in updated_qids:
                            continue
                        state, nn, pqx, pqy, ispt = probes[qid]
                        if oid in nn._dists:
                            continue
                        if ispt:
                            d = hypot(nx - pqx, ny - pqy)
                        else:
                            if not state.strategy.accepts(nx, ny, oid):
                                continue
                            d = state.strategy.dist(nx, ny)
                        if d <= state.best_dist:
                            sc = scratch_get(qid)
                            if sc is None:
                                sc = scratch[qid] = self._acquire_scratch(state)
                            sc.note_incomer(d, oid)
                continue
            # Disappearance: off-line NNs are outgoing ones (Section
            # 4.2).  (Inlined Grid.delete_at, as in the move path.)
            old_cid = object_cells.pop(oid)
            cell = cells_store[old_cid]
            idx = None if cell is None else cell.slot.pop(oid, None)
            if idx is None:
                raise KeyError(
                    f"object {oid} not found in cell {grid.unpack(old_cid)}"
                )
            coids = cell.oids
            last_oid = coids.pop()
            lx = cell.xs.pop()
            ly = cell.ys.pop()
            if last_oid != oid:
                coids[idx] = last_oid
                cell.xs[idx] = lx
                cell.ys[idx] = ly
                cell.slot[last_oid] = idx
            elif not coids:
                grid._occupied -= 1
            grid._n_objects -= 1
            n_del += 1
            ms = marks_store[old_cid]
            if ms:
                for qid in ms:
                    if qid in updated_qids:
                        continue
                    state, nn, _pqx, _pqy, _ispt = probes[qid]
                    sc = scratch_get(qid)
                    if oid in nn._dists:
                        if sc is None:
                            sc = scratch[qid] = self._acquire_scratch(state)
                        nn.remove(oid)
                        sc.note_outgoing()
                    elif sc is not None and oid in sc.in_list._dists:
                        sc.in_list.remove(oid)

        if n_del or n_ins:
            stats.deletes += n_del
            stats.inserts += n_ins

    def _finish_cycle(
        self,
        scratch: dict[int, CycleScratch],
        query_updates: Sequence[QueryUpdate],
    ) -> set[int]:
        """The cycle tail shared by :meth:`process` and :meth:`process_flat`:
        finalize the touched queries (Figure 3.8 lines 17-24), then run the
        query-update phase of Figure 3.9."""
        queries = self._queries
        changed: set[int] = set()
        for qid, sc in scratch.items():
            if sc.touched:
                state = queries[qid]
                self._finalize_query(state, sc)
                # Exact change detection against the pre-cycle result: a
                # NN that leaves and returns (or re-keys back) to the same
                # distance within one cycle is correctly a no-op.
                if state.nn.entries() != sc.before:
                    changed.add(qid)
        self._scratch_pool.extend(scratch.values())

        # Figure 3.9 lines 5-9: terminations first within each update, then
        # (re-)insertions.
        for qu in query_updates:
            if qu.kind is QueryUpdateKind.TERMINATE:
                self.remove_query(qu.qid)
                changed.discard(qu.qid)
                continue
            if qu.kind is QueryUpdateKind.MOVE:
                self.remove_query(qu.qid)
            assert qu.point is not None
            self.install_query(qu.qid, qu.point, qu.k or 1)
            changed.add(qu.qid)
        return changed

    def _finalize_query(self, state: QueryState, sc: CycleScratch) -> None:
        """Lines 17-24 of Figure 3.8: merge when the incomers can replace
        the outgoing NNs, otherwise re-compute."""
        if self.merge_optimization:
            can_merge = len(sc.in_list) >= sc.out_count
        else:
            # Ablation: Section 3.2 single-update semantics — any outgoing
            # NN forces a re-computation.
            can_merge = sc.out_count == 0
        if can_merge:
            merged = state.nn.entries() + sc.in_list.entries()
            state.nn.replace(merged)
            new_best = state.nn.kth_dist
            assert new_best <= state.best_dist or state.best_dist == float("inf")
            state.best_dist = new_best
            # The influence region can only shrink here (Section 3.3).
            state.reconcile_marks(self._grid, processed_upto=state.marked_upto)
        elif self.reuse_bookkeeping:
            self._recompute(state)
        else:
            self._recompute_from_scratch(state)
