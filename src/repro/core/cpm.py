"""The CPM continuous monitoring algorithm (Section 3).

The monitor owns the grid ``G``, the query table ``QT`` and the full
processing pipeline:

* **NN computation** (Figure 3.4) — best-first search over the conceptual
  partitioning; processes the minimal set of cells (those intersecting the
  circle with radius ``best_dist``) and leaves behind the visit list, the
  residual search heap and the influence-list marks.
* **NN re-computation** (Figure 3.6) — re-runs an affected query by
  re-scanning the visit list sequentially (O(1) "get next" instead of heap
  operations) and only then resuming the residual heap.
* **Update handling** (Figure 3.8) — batch processing of a cycle's object
  updates.  Only queries whose influence region intersects an updated cell
  are touched; if the k best incomers (``in_list``) outnumber the outgoing
  NNs (``out_count``) the new result is assembled *without accessing the
  grid*, otherwise re-computation runs.
* **NN monitoring** (Figure 3.9) — the per-cycle driver: object updates
  first (ignoring queries that received updates), then query terminations,
  movements (termination + re-insertion) and insertions.

Query generality (Section 5): any :class:`repro.core.strategies.QueryStrategy`
can be installed, so the same engine monitors point NN, aggregate NN
(sum/min/max) and constrained queries.

Ablation/robustness switches (see DESIGN.md):

* ``reuse_bookkeeping=False`` — the paper's low-memory fallback: drop the
  visit list/heap and recompute affected queries from scratch.
* ``merge_optimization=False`` — disable the Section 3.3 batch enhancement;
  any outgoing NN triggers re-computation as in the single-update
  processing of Section 3.2.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.bookkeeping import CycleScratch, QueryState
from repro.core.heap import CELL
from repro.core.partition import DIRECTIONS
from repro.core.strategies import (
    AggregateNNStrategy,
    ConstrainedStrategy,
    PointNNStrategy,
    QueryStrategy,
)
from repro.geometry.aggregates import AggregateFunction
from repro.geometry.points import Point
from repro.geometry.rects import Rect
from repro.grid.grid import Grid
from repro.grid.stats import GridStats
from repro.monitor import ContinuousMonitor, ResultEntry
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind


class CPMMonitor(ContinuousMonitor):
    """Conceptual Partitioning Monitoring over a main-memory grid."""

    name = "CPM"

    def __init__(
        self,
        cells_per_axis: int = 128,
        *,
        bounds: Rect | tuple[float, float, float, float] = (0.0, 0.0, 1.0, 1.0),
        delta: float | None = None,
        reuse_bookkeeping: bool = True,
        merge_optimization: bool = True,
    ) -> None:
        if delta is not None:
            self._grid = Grid(delta=delta, bounds=bounds)
        else:
            self._grid = Grid(cells_per_axis, bounds=bounds)
        self._positions: dict[int, Point] = {}
        self._queries: dict[int, QueryState] = {}
        self.reuse_bookkeeping = reuse_bookkeeping
        self.merge_optimization = merge_optimization

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def grid(self) -> Grid:
        """The underlying object grid ``G`` (read-only use by callers)."""
        return self._grid

    @property
    def stats(self) -> GridStats:
        return self._grid.stats

    @property
    def object_count(self) -> int:
        return len(self._positions)

    def object_position(self, oid: int) -> Point | None:
        return self._positions.get(oid)

    def query_ids(self) -> list[int]:
        return list(self._queries)

    def query_state(self, qid: int) -> QueryState:
        """Book-keeping of a query (tests, diagnostics, space accounting)."""
        return self._queries[qid]

    def best_dist(self, qid: int) -> float:
        """Distance of the query's k-th neighbor (``inf`` when under-full)."""
        return self._queries[qid].best_dist

    def influence_cells(self, qid: int) -> list[tuple[int, int]]:
        """Cells currently in the query's influence region (marked cells)."""
        return self._queries[qid].influence_cells()

    # ------------------------------------------------------------------
    # Object population
    # ------------------------------------------------------------------

    def load_objects(self, objects: Iterable[tuple[int, Point]]) -> None:
        """Bulk-load the initial object set.

        Only valid before any query is installed — afterwards objects must
        arrive as appearance updates so that results stay consistent.
        """
        if self._queries:
            raise RuntimeError(
                "bulk loading after query installation would corrupt results; "
                "send appearance updates instead"
            )
        for oid, (x, y) in objects:
            self._grid.insert(oid, x, y)
            self._positions[oid] = (x, y)

    # ------------------------------------------------------------------
    # Query installation (Figure 3.4)
    # ------------------------------------------------------------------

    def install_query(self, qid: int, point: Point, k: int = 1) -> list[ResultEntry]:
        """Register a plain point k-NN query."""
        return self.install_strategy_query(qid, PointNNStrategy(point[0], point[1]), k)

    def install_ann_query(
        self,
        qid: int,
        points: Sequence[Point],
        k: int = 1,
        fn: str | AggregateFunction = "sum",
    ) -> list[ResultEntry]:
        """Register an aggregate NN query over ``points`` (Section 5)."""
        return self.install_strategy_query(qid, AggregateNNStrategy(points, fn), k)

    def install_constrained_query(
        self, qid: int, point: Point, region: Rect, k: int = 1
    ) -> list[ResultEntry]:
        """Register a constrained NN query (Figure 5.3)."""
        strategy = ConstrainedStrategy(PointNNStrategy(point[0], point[1]), region)
        return self.install_strategy_query(qid, strategy, k)

    def install_strategy_query(
        self, qid: int, strategy: QueryStrategy, k: int = 1
    ) -> list[ResultEntry]:
        """Register a query with an arbitrary geometry strategy."""
        if qid in self._queries:
            raise KeyError(f"query {qid} is already installed")
        state = QueryState(qid, strategy, k, strategy.partition(self._grid))
        self._seed_heap(state)
        self._run_search(state)
        state.best_dist = state.nn.kth_dist
        state.reconcile_marks(self._grid, processed_upto=state.visit_length)
        self._queries[qid] = state
        return state.result_entries()

    def remove_query(self, qid: int) -> None:
        """Terminate a query: drop its QT entry and influence marks."""
        state = self._queries.pop(qid)
        state.unmark_all(self._grid)

    def result(self, qid: int) -> list[ResultEntry]:
        return self._queries[qid].result_entries()

    # ------------------------------------------------------------------
    # Search internals
    # ------------------------------------------------------------------

    def _seed_heap(self, state: QueryState) -> None:
        """Lines 3-5 of Figure 3.4: en-heap the core cells and the level-0
        rectangle of each direction."""
        grid = self._grid
        strategy = state.strategy
        for i, j in state.partition.core_cells():
            if strategy.cell_allowed(grid, i, j):
                state.heap.push_cell(strategy.cell_key(grid, i, j), i, j)
        for direction in DIRECTIONS:
            if state.partition.exists(direction, 0):
                state.heap.push_rect(
                    strategy.strip_key0(grid, state.partition, direction), direction, 0
                )

    def _run_search(self, state: QueryState) -> None:
        """The de-heaping loop of Figure 3.4 (also the heap continuation of
        Figure 3.6): process entries in ascending key order until the next
        key is ``>= best_dist``."""
        grid = self._grid
        strategy = state.strategy
        heap = state.heap
        nn = state.nn
        partition = state.partition
        step = strategy.level_step(grid)
        while heap:
            if nn.is_full and heap.peek_key() >= nn.kth_dist:
                break
            key, _seq, kind, a, b = heap.pop()
            if kind == CELL:
                self._process_cell(state, key, a, b)
            else:
                direction, level = a, b
                for i, j in partition.strip_cells(direction, level):
                    if strategy.cell_allowed(grid, i, j):
                        heap.push_cell(strategy.cell_key(grid, i, j), i, j)
                if partition.exists(direction, level + 1):
                    heap.push_rect(key + step, direction, level + 1)

    def _process_cell(self, state: QueryState, key: float, i: int, j: int) -> None:
        """Lines 10-12 of Figure 3.4: scan the cell, update ``best_NN``,
        insert the query into the cell's influence list, extend the visit
        list."""
        strategy = state.strategy
        nn = state.nn
        for oid, (x, y) in self._grid.scan(i, j).items():
            if strategy.accepts(x, y):
                nn.add(strategy.dist(x, y), oid)
        self._grid.add_mark((i, j), state.qid)
        state.append_visit(key, (i, j))
        state.marked_upto = state.visit_length

    def _recompute(self, state: QueryState) -> None:
        """NN re-computation (Figure 3.6): rescan the visit list first, then
        resume the residual heap."""
        grid = self._grid
        strategy = state.strategy
        nn = state.nn
        nn.clear()
        visit_cells = state.visit_cells
        visit_keys = state.visit_keys
        pos = 0
        total = len(visit_cells)
        while pos < total:
            if nn.is_full and visit_keys[pos] >= nn.kth_dist:
                break
            i, j = visit_cells[pos]
            for oid, (x, y) in grid.scan(i, j).items():
                if strategy.accepts(x, y):
                    nn.add(strategy.dist(x, y), oid)
            if pos >= state.marked_upto:
                grid.add_mark((i, j), state.qid)
                state.marked_upto = pos + 1
            pos += 1
        if pos == total:
            # The whole visit list was consumed; the residual heap holds the
            # frontier (its minimum key is >= every visit-list key).
            self._run_search(state)
            pos = state.visit_length
        state.best_dist = nn.kth_dist
        state.reconcile_marks(grid, processed_upto=pos)

    def _recompute_from_scratch(self, state: QueryState) -> None:
        """Low-memory / ablation path: forget the book-keeping and run the
        full NN computation again (Section 3.3, last paragraph)."""
        state.unmark_all(self._grid)
        state.drop_bookkeeping()
        state.nn.clear()
        state.best_dist = float("inf")
        self._seed_heap(state)
        self._run_search(state)
        state.best_dist = state.nn.kth_dist
        state.reconcile_marks(self._grid, processed_upto=state.visit_length)

    def drop_bookkeeping(self, qid: int) -> None:
        """Manually shed a query's visit list and heap to free memory; the
        query keeps being monitored, falling back to computation from
        scratch on its next re-computation."""
        state = self._queries[qid]
        marked = state.influence_cells()
        state.unmark_all(self._grid)
        state.drop_bookkeeping()
        # The influence marks must survive — update filtering depends on
        # them — so re-mark the same cells through a synthetic visit list
        # (sorted by key, preserving the ascending-key invariant).
        keyed = sorted(
            (state.strategy.cell_key(self._grid, i, j), (i, j)) for i, j in marked
        )
        for key, coord in keyed:
            state.append_visit(key, coord)
            self._grid.add_mark(coord, qid)
        state.marked_upto = state.visit_length

    # ------------------------------------------------------------------
    # Update handling (Figures 3.8 and 3.9)
    # ------------------------------------------------------------------

    def process(
        self,
        object_updates: Sequence[ObjectUpdate],
        query_updates: Sequence[QueryUpdate] = (),
    ) -> set[int]:
        grid = self._grid
        queries = self._queries
        positions = self._positions
        # "Queries that receive updates are ignored when handling object
        # updates in order to avoid waste of computations" (Section 3.3).
        updated_qids = {qu.qid for qu in query_updates}
        scratch: dict[int, CycleScratch] = {}

        for upd in object_updates:
            oid = upd.oid
            old = upd.old
            new = upd.new
            if old is not None:
                old_cell = grid.delete(oid, old[0], old[1])
                for qid in grid.marks(old_cell):
                    if qid in updated_qids:
                        continue
                    state = queries[qid]
                    sc = scratch.get(qid)
                    if oid in state.nn:
                        if sc is None:
                            sc = scratch[qid] = CycleScratch(state.k)
                        if new is not None and state.strategy.accepts(new[0], new[1]):
                            d = state.strategy.dist(new[0], new[1])
                            if d <= state.best_dist:
                                # p remains in the NN set; update the order.
                                state.nn.update_dist(oid, d)
                                sc.note_reorder()
                                continue
                        # p is an outgoing NN (moved beyond best_dist, left
                        # the constraint region, or went off-line).
                        state.nn.remove(oid)
                        sc.note_outgoing()
                    elif sc is not None:
                        # A pending incomer moved again within this cycle.
                        sc.drop_incomer(oid)
            if new is not None:
                new_cell = grid.insert(oid, new[0], new[1])
                positions[oid] = new
                for qid in grid.marks(new_cell):
                    if qid in updated_qids:
                        continue
                    state = queries[qid]
                    if oid in state.nn:
                        continue
                    if not state.strategy.accepts(new[0], new[1]):
                        continue
                    d = state.strategy.dist(new[0], new[1])
                    if d <= state.best_dist:
                        sc = scratch.get(qid)
                        if sc is None:
                            sc = scratch[qid] = CycleScratch(state.k)
                        sc.note_incomer(d, oid)
            else:
                positions.pop(oid, None)

        changed: set[int] = set()
        for qid, sc in scratch.items():
            if not sc.touched:
                continue
            state = queries[qid]
            before = state.nn.entries() if sc.out_count == 0 else None
            self._finalize_query(state, sc)
            if before is None or state.nn.entries() != before:
                changed.add(qid)

        # Figure 3.9 lines 5-9: terminations first within each update, then
        # (re-)insertions.
        for qu in query_updates:
            if qu.kind is QueryUpdateKind.TERMINATE:
                self.remove_query(qu.qid)
                changed.discard(qu.qid)
                continue
            if qu.kind is QueryUpdateKind.MOVE:
                self.remove_query(qu.qid)
            assert qu.point is not None
            self.install_query(qu.qid, qu.point, qu.k or 1)
            changed.add(qu.qid)
        return changed

    def _finalize_query(self, state: QueryState, sc: CycleScratch) -> None:
        """Lines 17-24 of Figure 3.8: merge when the incomers can replace
        the outgoing NNs, otherwise re-compute."""
        if self.merge_optimization:
            can_merge = len(sc.in_list) >= sc.out_count
        else:
            # Ablation: Section 3.2 single-update semantics — any outgoing
            # NN forces a re-computation.
            can_merge = sc.out_count == 0
        if can_merge:
            merged = state.nn.entries() + sc.in_list.entries()
            state.nn.replace(merged)
            new_best = state.nn.kth_dist
            assert new_best <= state.best_dist or state.best_dist == float("inf")
            state.best_dist = new_best
            # The influence region can only shrink here (Section 3.3).
            state.reconcile_marks(self._grid, processed_upto=state.marked_upto)
        elif self.reuse_bookkeeping:
            self._recompute(state)
        else:
            self._recompute_from_scratch(state)
