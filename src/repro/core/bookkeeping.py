"""Per-query book-keeping: the query-table entry of Figure 3.3a.

For every installed query CPM stores (Section 3.1):

* the current result ``best_NN`` and its ``best_dist``,
* the **visit list** — every cell processed during NN search, in ascending
  ``mindist`` order ("each cell entry de-heaped from H is inserted at the
  end of the list"),
* the **search heap** ``H`` — entries en-heaped but not de-heaped,
* the influence-region information.

The influence region is the set of cells that intersect the circle (for
aggregate queries: the iso-distance contour) with radius ``best_dist``; the
cells of the grid carrying this query's mark are always a *prefix* of the
visit list, tracked by ``marked_upto``.  Shrinking ``best_dist`` therefore
unmarks a suffix slice of the prefix; re-computation extends it.  This is
the "scan the cells c in the visit list with ``mindist(c,q)`` between the
new and the old value of ``best_dist``" of Section 3.3, made explicit.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.heap import SearchHeap
from repro.core.neighbors import NeighborList, ResultEntry
from repro.core.partition import ConceptualPartition
from repro.core.strategies import PointNNStrategy, QueryStrategy
from repro.grid.cell import CellCoord
from repro.grid.grid import Grid


class QueryState:
    """Book-keeping for one installed query (a row of the query table QT).

    ``is_point`` / ``qx`` / ``qy`` cache the plain point-NN geometry so the
    engine's inner loops (cell scans, update filtering) can compute the
    Euclidean distance inline instead of dispatching through the strategy —
    the overwhelmingly common query type pays no virtual-call tax.
    """

    __slots__ = (
        "best_dist",
        "heap",
        "is_point",
        "k",
        "marked_upto",
        "nn",
        "partition",
        "qid",
        "qx",
        "qy",
        "rows",
        "strategy",
        "visit_cids",
        "visit_keys",
    )

    def __init__(
        self, qid: int, strategy: QueryStrategy, k: int, partition: ConceptualPartition
    ) -> None:
        self.qid = qid
        self.k = k
        self.strategy = strategy
        self.partition = partition
        #: grid row count — the packing factor of the visit-list cids.
        self.rows = partition.rows
        self.heap = SearchHeap()
        # The visit list stores *packed* cell ids (cid = i * rows + j):
        # the hot consumers (re-computation rescans, influence-mark
        # reconciliation) index the grid's flat stores directly, and no
        # coordinate tuple is allocated per processed cell.  The
        # coordinate view is exposed by :attr:`visit_cells`.
        self.visit_cids: list[int] = []
        self.visit_keys: list[float] = []
        self.nn = NeighborList(k)
        self.best_dist = float("inf")
        self.marked_upto = 0
        if type(strategy) is PointNNStrategy:
            self.is_point = True
            self.qx = strategy.x
            self.qy = strategy.y
        else:
            self.is_point = False
            self.qx = 0.0
            self.qy = 0.0

    # ------------------------------------------------------------------
    # Visit list
    # ------------------------------------------------------------------

    def append_visit(self, key: float, cell: CellCoord) -> None:
        """Record a processed cell at the end of the visit list.

        De-heap order is ascending, so the parallel key list stays sorted —
        the precondition for the bisect-based influence reconciliation.
        """
        self.visit_cids.append(cell[0] * self.rows + cell[1])
        self.visit_keys.append(key)

    @property
    def visit_cells(self) -> list[CellCoord]:
        """The visit list as coordinate pairs (diagnostics/tests view)."""
        rows = self.rows
        return [divmod(cid, rows) for cid in self.visit_cids]

    @property
    def visit_length(self) -> int:
        return len(self.visit_cids)

    def influence_cells(self) -> list[CellCoord]:
        """Cells currently carrying this query's influence mark."""
        rows = self.rows
        return [divmod(cid, rows) for cid in self.visit_cids[: self.marked_upto]]

    def csh(self) -> int:
        """``C_SH``: cells stored in the visit list or the search heap
        (the space quantity analyzed in Section 4.1)."""
        return len(self.visit_cids) + self.heap.cell_entry_count()

    # ------------------------------------------------------------------
    # Influence-list reconciliation
    # ------------------------------------------------------------------

    def reconcile_marks(self, grid: Grid, processed_upto: int) -> None:
        """Restore the marked-prefix invariant after ``best_dist`` changed.

        Args:
            processed_upto: number of leading visit entries whose cells were
                scanned for the *current* result (cells beyond it may only
                stay marked if they still fall within ``best_dist`` — they
                cannot, since scanning stopped at the first key >=
                ``best_dist``).

        The target prefix covers every visit cell with key <= ``best_dist``
        (closed-circle intersection, so the cell housing the k-th NN always
        stays marked) but never cells that were not scanned for the current
        result.  A few ulps of slack guard the closed-circle rule against
        floating-point jitter in the cell keys: the k-th NN's own cell may
        compute a key a hair *above* the NN's distance (e.g. boundary cells
        after clamping), and unmarking it would make that NN's departure
        invisible.
        """
        target = bisect_right(
            self.visit_keys, self.best_dist + grid.boundary_epsilon
        )
        if target > processed_upto:
            target = processed_upto
        current = self.marked_upto if self.marked_upto > processed_upto else processed_upto
        if target < current:
            qid = self.qid
            cids = self.visit_cids
            # Inlined Grid.remove_mark over the live mark store (visit
            # cells are always in bounds; same counter semantics).
            marks_store = grid._marks
            removed = 0
            for idx in range(target, current):
                ms = marks_store[cids[idx]]
                if ms and qid in ms:
                    ms.remove(qid)
                    removed += 1
            if removed:
                grid._mark_count -= removed
                grid.stats.mark_ops += removed
        self.marked_upto = target

    def unmark_all(self, grid: Grid) -> None:
        """Remove every influence mark (query termination, Figure 3.9)."""
        qid = self.qid
        cids = self.visit_cids
        # Inlined Grid.remove_mark (see reconcile_marks).
        marks_store = grid._marks
        removed = 0
        for idx in range(self.marked_upto):
            ms = marks_store[cids[idx]]
            if ms and qid in ms:
                ms.remove(qid)
                removed += 1
        if removed:
            grid._mark_count -= removed
            grid.stats.mark_ops += removed
        self.marked_upto = 0

    # ------------------------------------------------------------------
    # Low-memory fallback
    # ------------------------------------------------------------------

    def drop_bookkeeping(self) -> None:
        """Discard the search heap and the visit list (Section 3.3): "in
        case that the physical memory of the system is exhausted, we can
        directly discard the search heap and the visit list of q to free
        space".  The influence marks must be re-derivable, so callers must
        have unmarked the grid first; monitoring continues with NN
        computation from scratch instead of re-computation."""
        if self.marked_upto:
            raise RuntimeError("unmark the grid before dropping book-keeping")
        self.heap.clear()
        self.visit_cids.clear()
        self.visit_keys.clear()

    def result_entries(self) -> list[tuple[float, int]]:
        """Current result as ascending ``(dist, oid)`` pairs."""
        return self.nn.entries()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryState(qid={self.qid}, k={self.k}, |NN|={len(self.nn)}, "
            f"best_dist={self.best_dist:.6g}, visit={len(self.visit_cids)}, "
            f"marked={self.marked_upto}, heap={len(self.heap)})"
        )


class CycleScratch:
    """Per-cycle counters of the update-handling module (Figure 3.8).

    The paper resets ``out_count`` and ``in_list`` for every query at the
    start of each cycle; we allocate them lazily on first touch, which is
    observationally equivalent and O(touched queries) instead of O(n).
    Instances are pooled by the monitor and recycled across cycles via
    :meth:`reset`, so steady-state update handling allocates no scratch
    objects at all.
    """

    __slots__ = ("before", "in_list", "out_count", "touched")

    def __init__(self, k: int) -> None:
        self.out_count = 0
        # "we do not need more than the k best incomers in any case"
        self.in_list = NeighborList(k)
        self.touched = False
        #: the query's result at the start of the cycle, captured at
        #: scratch acquisition (before the first NN-list mutation); the
        #: exact reference for change detection and delta reporting.
        self.before: list[ResultEntry] | None = None

    def reset(self, k: int) -> None:
        """Recycle this scratch for a (possibly different) query."""
        self.out_count = 0
        self.touched = False
        self.before = None
        self.in_list.reconfigure(k)

    def note_incomer(self, dist: float, oid: int) -> None:
        self.touched = True
        if oid in self.in_list:
            # The object issued several updates this cycle; keep the latest.
            self.in_list.remove(oid)
        self.in_list.add(dist, oid)

    def drop_incomer(self, oid: int) -> None:
        """Forget a pending incomer that moved again within the same cycle."""
        self.in_list.discard(oid)

    def note_outgoing(self) -> None:
        self.touched = True
        self.out_count += 1

    def note_reorder(self) -> None:
        """A NN moved within ``best_dist`` (its distance was re-keyed)."""
        self.touched = True
