"""Per-query geometry strategies.

Section 5 argues that "CPM provides a general methodology that can be
applied to several types of spatial queries".  This module is that claim
made concrete: the CPM engine (:mod:`repro.core.cpm`) is written once
against the :class:`QueryStrategy` interface, and each query type plugs in
its own geometry:

* :class:`PointNNStrategy` — classic k-NN around a single point
  (Section 3); keys are plain ``mindist`` and the per-level increment is
  ``δ`` (Lemma 3.1).
* :class:`AggregateNNStrategy` — aggregate NN over a set of query points
  (Section 5); keys are ``amindist`` under ``sum``/``min``/``max`` and the
  per-level increment is ``m·δ`` for ``sum`` (Corollary 5.1) or ``δ`` for
  ``min``/``max`` (Corollary 5.2).  The core block is the set of cells
  covered by the MBR ``M`` of the query points (Figure 5.1a).
* :class:`ConstrainedStrategy` — constrained (A)NN (Figure 5.3): wraps
  another strategy and filters both the candidate objects and the visited
  cells by a constraint rectangle.
* :class:`FilteredStrategy` — attribute-filtered NN (the location-aware
  pub/sub extension): wraps another strategy and additionally requires
  every result object to carry a set of attribute tags.  The geometry is
  untouched (all keys delegate to the inner strategy and stay valid lower
  bounds); only :meth:`QueryStrategy.accepts` narrows, exactly like the
  constrained filter — which is why the whole CPM machinery (influence
  regions, visit lists, incremental repair) applies verbatim.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.core.partition import DOWN, LEFT, RIGHT, UP, ConceptualPartition
from repro.geometry.aggregates import AggregateFunction, get_aggregate
from repro.geometry.points import Point
from repro.geometry.rects import Rect, rects_intersect
from repro.grid.grid import Grid


class QueryStrategy(ABC):
    """Geometry of one continuous query, as seen by the CPM engine.

    All keys returned by :meth:`cell_key` / :meth:`strip_key0` must be
    *lower bounds* on :meth:`dist` of any accepted object inside the
    corresponding region, and the level-``l`` strip key must equal
    ``strip_key0 + l * level_step`` — these two facts are exactly what the
    correctness proof of Section 3.1 needs.
    """

    __slots__ = ()

    #: human-readable strategy kind for diagnostics.
    kind: str = "abstract"

    @abstractmethod
    def dist(self, x: float, y: float) -> float:
        """Distance of an object at ``(x, y)`` from the query."""

    def accepts(self, x: float, y: float, oid: int = -1) -> bool:
        """Whether object ``oid`` at ``(x, y)`` may appear in the result.

        ``oid`` lets attribute predicates (:class:`FilteredStrategy`)
        consult per-object state; pure-geometry strategies ignore it.
        """
        return True

    @abstractmethod
    def core_range(self, grid: Grid) -> tuple[int, int, int, int]:
        """Inclusive cell block ``(i_lo, i_hi, j_lo, j_hi)`` seeding the search."""

    @abstractmethod
    def cell_key(self, grid: Grid, i: int, j: int) -> float:
        """Search key of cell ``c_{i,j}`` (``mindist`` / ``amindist``)."""

    @abstractmethod
    def strip_key0(self, grid: Grid, partition: ConceptualPartition, direction: int) -> float:
        """Search key of the level-0 rectangle of ``direction``."""

    @abstractmethod
    def level_step(self, grid: Grid) -> float:
        """Key increment between consecutive same-direction rectangles."""

    def cell_allowed(self, grid: Grid, i: int, j: int) -> bool:
        """Whether cell ``c_{i,j}`` may be en-heaped (constraint filter)."""
        return True

    @abstractmethod
    def reference_point(self) -> Point:
        """A representative location of the query (diagnostics, QT entry)."""

    def partition(self, grid: Grid) -> ConceptualPartition:
        """Conceptual partition around this query's core block."""
        i_lo, i_hi, j_lo, j_hi = self.core_range(grid)
        return ConceptualPartition(i_lo, i_hi, j_lo, j_hi, grid.cols, grid.rows)


class PointNNStrategy(QueryStrategy):
    """Plain k-NN around a single query point ``q`` (Section 3)."""

    __slots__ = ("x", "y")

    kind = "nn"

    def __init__(self, x: float, y: float) -> None:
        self.x = float(x)
        self.y = float(y)

    def dist(self, x: float, y: float) -> float:
        return math.hypot(x - self.x, y - self.y)

    def core_range(self, grid: Grid) -> tuple[int, int, int, int]:
        i, j = grid.cell_of(self.x, self.y)
        return (i, i, j, j)

    def cell_key(self, grid: Grid, i: int, j: int) -> float:
        return grid.mindist_xy(i, j, self.x, self.y)

    def strip_key0(
        self, grid: Grid, partition: ConceptualPartition, direction: int
    ) -> float:
        """Perpendicular distance from ``q`` to the inner edge of ``DIR_0``.

        Valid because every arm spans the query's projection on its axis
        (see :mod:`repro.core.partition`), hence ``mindist`` degenerates to
        the perpendicular component.  Clamped at zero against floating-point
        jitter when ``q`` sits exactly on a cell edge.
        """
        return max(0.0, _perpendicular_gap(grid, partition, direction, self.x, self.y))

    def level_step(self, grid: Grid) -> float:
        return grid.delta

    def reference_point(self) -> Point:
        return (self.x, self.y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PointNNStrategy({self.x:.6g}, {self.y:.6g})"


class AggregateNNStrategy(QueryStrategy):
    """Aggregate NN over query points ``Q = {q1..qm}`` (Section 5)."""

    __slots__ = ("fn", "points")

    kind = "ann"

    def __init__(self, points: Sequence[Point], fn: str | AggregateFunction = "sum") -> None:
        if not points:
            raise ValueError("an aggregate query needs at least one point")
        self.points: tuple[Point, ...] = tuple((float(x), float(y)) for x, y in points)
        self.fn = get_aggregate(fn)

    @property
    def mbr(self) -> Rect:
        """The minimum bounding rectangle ``M`` of the query points."""
        return Rect.bounding(list(self.points))

    def dist(self, x: float, y: float) -> float:
        return self.fn(math.hypot(x - qx, y - qy) for qx, qy in self.points)

    def core_range(self, grid: Grid) -> tuple[int, int, int, int]:
        m = self.mbr
        i_lo, j_lo = grid.cell_of(m.x0, m.y0)
        i_hi, j_hi = grid.cell_of(m.x1, m.y1)
        return (i_lo, i_hi, j_lo, j_hi)

    def cell_key(self, grid: Grid, i: int, j: int) -> float:
        """``amindist(c, Q) = f over mindist(c, q_i)`` — a lower bound for
        ``adist(p, Q)`` of any object ``p`` in the cell."""
        return self.fn(grid.mindist_xy(i, j, qx, qy) for qx, qy in self.points)

    def strip_key0(
        self, grid: Grid, partition: ConceptualPartition, direction: int
    ) -> float:
        """``amindist(DIR_0, Q)`` as the aggregate of perpendicular gaps.

        Every arm spans the projection of the whole MBR (hence of every
        ``q_i``), so each individual ``mindist(DIR_0, q_i)`` is the
        perpendicular gap of ``q_i``.  For ``min``/``max`` this realizes the
        paper's O(1) observation — the aggregate reduces to the gap of the
        closest/farthest MBR edge — computed here uniformly in O(m).
        """
        return self.fn(
            max(0.0, _perpendicular_gap(grid, partition, direction, qx, qy))
            for qx, qy in self.points
        )

    def level_step(self, grid: Grid) -> float:
        """``m·δ`` for sum (Corollary 5.1); ``δ`` for min/max (Corollary 5.2)."""
        return self.fn.level_step(len(self.points), grid.delta)

    def reference_point(self) -> Point:
        return self.mbr.center

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AggregateNNStrategy({self.fn.name}, m={len(self.points)})"


class ConstrainedStrategy(QueryStrategy):
    """Constrained (A)NN: results restricted to a rectangle (Figure 5.3).

    "The adaptation of CPM to this problem inserts into the search heap only
    cells and conceptual rectangles that intersect the constraint region."
    We filter cells on insertion and objects on evaluation; rectangle
    entries keep their unconstrained keys, which remain valid lower bounds.
    """

    __slots__ = ("inner", "region")

    kind = "constrained"

    def __init__(self, inner: QueryStrategy, region: Rect) -> None:
        if isinstance(inner, ConstrainedStrategy):
            raise TypeError("constrained strategies do not nest")
        self.inner = inner
        self.region = region

    def dist(self, x: float, y: float) -> float:
        return self.inner.dist(x, y)

    def accepts(self, x: float, y: float, oid: int = -1) -> bool:
        return self.region.contains_point(x, y) and self.inner.accepts(x, y, oid)

    def core_range(self, grid: Grid) -> tuple[int, int, int, int]:
        return self.inner.core_range(grid)

    def cell_key(self, grid: Grid, i: int, j: int) -> float:
        return self.inner.cell_key(grid, i, j)

    def strip_key0(
        self, grid: Grid, partition: ConceptualPartition, direction: int
    ) -> float:
        return self.inner.strip_key0(grid, partition, direction)

    def level_step(self, grid: Grid) -> float:
        return self.inner.level_step(grid)

    def cell_allowed(self, grid: Grid, i: int, j: int) -> bool:
        x0, y0, x1, y1 = grid.cell_rect(i, j)
        return rects_intersect(
            self.region.x0, self.region.y0, self.region.x1, self.region.y1,
            x0, y0, x1, y1,
        )

    def reference_point(self) -> Point:
        return self.inner.reference_point()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstrainedStrategy({self.inner!r}, region={self.region})"


class FilteredStrategy(QueryStrategy):
    """Attribute-filtered NN: results restricted to tagged objects.

    Wraps an inner strategy and accepts an object only when the engine's
    tag table says the object carries **every** tag in ``tags`` (subset
    semantics, like a pub/sub topic filter over attributes).  Geometry
    delegates to the inner strategy wholesale: search keys are unchanged
    lower bounds, so CPM's correctness argument (Section 3.1) holds with
    the filter exactly as it does for the constrained variant.

    The tag table is **bound by the engine at installation**
    (:meth:`bind_tags` — CPM hands over its own per-monitor table), not
    at construction: the strategy object travels through specs, the wire
    protocol and process-shard pickling without dragging object state
    along.  An unbound strategy accepts nothing, and an object absent
    from the table has no tags — both reject, never crash.
    """

    __slots__ = ("inner", "tags", "_table")

    kind = "filtered"

    def __init__(
        self,
        inner: QueryStrategy,
        tags,
        table: dict[int, frozenset[str]] | None = None,
    ) -> None:
        if isinstance(inner, FilteredStrategy):
            raise TypeError("filtered strategies do not nest")
        required = frozenset(str(tag) for tag in tags)
        if not required:
            raise ValueError("a filtered query needs at least one tag")
        self.inner = inner
        self.tags = required
        self._table = table

    def bind_tags(self, table: dict[int, frozenset[str]]) -> None:
        """Attach the engine's live ``oid -> tags`` table (install time)."""
        self._table = table

    def accepts(self, x: float, y: float, oid: int = -1) -> bool:
        table = self._table
        if table is None:
            return False
        tags = table.get(oid)
        if tags is None or not self.tags <= tags:
            return False
        return self.inner.accepts(x, y, oid)

    def dist(self, x: float, y: float) -> float:
        return self.inner.dist(x, y)

    def core_range(self, grid: Grid) -> tuple[int, int, int, int]:
        return self.inner.core_range(grid)

    def cell_key(self, grid: Grid, i: int, j: int) -> float:
        return self.inner.cell_key(grid, i, j)

    def strip_key0(
        self, grid: Grid, partition: ConceptualPartition, direction: int
    ) -> float:
        return self.inner.strip_key0(grid, partition, direction)

    def level_step(self, grid: Grid) -> float:
        return self.inner.level_step(grid)

    def cell_allowed(self, grid: Grid, i: int, j: int) -> bool:
        return self.inner.cell_allowed(grid, i, j)

    def reference_point(self) -> Point:
        return self.inner.reference_point()

    def __getstate__(self):
        # The bound tag table is engine-local state: process shards
        # rebind their own replica at installation.
        return (self.inner, self.tags)

    def __setstate__(self, state) -> None:
        self.inner, self.tags = state
        self._table = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FilteredStrategy({self.inner!r}, tags={sorted(self.tags)})"


def _perpendicular_gap(
    grid: Grid, partition: ConceptualPartition, direction: int, x: float, y: float
) -> float:
    """Distance from ``(x, y)`` to the inner edge of the level-0 strip of
    ``direction`` around the partition's core block."""
    if direction == UP:
        return grid.bounds.y0 + (partition.j_hi + 1) * grid.delta - y
    if direction == DOWN:
        return y - (grid.bounds.y0 + partition.j_lo * grid.delta)
    if direction == RIGHT:
        return grid.bounds.x0 + (partition.i_hi + 1) * grid.delta - x
    if direction == LEFT:
        return x - (grid.bounds.x0 + partition.i_lo * grid.delta)
    raise ValueError(f"unknown direction {direction}")
