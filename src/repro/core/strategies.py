"""Per-query geometry strategies.

Section 5 argues that "CPM provides a general methodology that can be
applied to several types of spatial queries".  This module is that claim
made concrete: the CPM engine (:mod:`repro.core.cpm`) is written once
against the :class:`QueryStrategy` interface, and each query type plugs in
its own geometry:

* :class:`PointNNStrategy` — classic k-NN around a single point
  (Section 3); keys are plain ``mindist`` and the per-level increment is
  ``δ`` (Lemma 3.1).
* :class:`AggregateNNStrategy` — aggregate NN over a set of query points
  (Section 5); keys are ``amindist`` under ``sum``/``min``/``max`` and the
  per-level increment is ``m·δ`` for ``sum`` (Corollary 5.1) or ``δ`` for
  ``min``/``max`` (Corollary 5.2).  The core block is the set of cells
  covered by the MBR ``M`` of the query points (Figure 5.1a).
* :class:`ConstrainedStrategy` — constrained (A)NN (Figure 5.3): wraps
  another strategy and filters both the candidate objects and the visited
  cells by a constraint rectangle.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.core.partition import DOWN, LEFT, RIGHT, UP, ConceptualPartition
from repro.geometry.aggregates import AggregateFunction, get_aggregate
from repro.geometry.points import Point
from repro.geometry.rects import Rect, rects_intersect
from repro.grid.grid import Grid


class QueryStrategy(ABC):
    """Geometry of one continuous query, as seen by the CPM engine.

    All keys returned by :meth:`cell_key` / :meth:`strip_key0` must be
    *lower bounds* on :meth:`dist` of any accepted object inside the
    corresponding region, and the level-``l`` strip key must equal
    ``strip_key0 + l * level_step`` — these two facts are exactly what the
    correctness proof of Section 3.1 needs.
    """

    __slots__ = ()

    #: human-readable strategy kind for diagnostics.
    kind: str = "abstract"

    @abstractmethod
    def dist(self, x: float, y: float) -> float:
        """Distance of an object at ``(x, y)`` from the query."""

    def accepts(self, x: float, y: float) -> bool:
        """Whether an object at ``(x, y)`` may appear in the result."""
        return True

    @abstractmethod
    def core_range(self, grid: Grid) -> tuple[int, int, int, int]:
        """Inclusive cell block ``(i_lo, i_hi, j_lo, j_hi)`` seeding the search."""

    @abstractmethod
    def cell_key(self, grid: Grid, i: int, j: int) -> float:
        """Search key of cell ``c_{i,j}`` (``mindist`` / ``amindist``)."""

    @abstractmethod
    def strip_key0(self, grid: Grid, partition: ConceptualPartition, direction: int) -> float:
        """Search key of the level-0 rectangle of ``direction``."""

    @abstractmethod
    def level_step(self, grid: Grid) -> float:
        """Key increment between consecutive same-direction rectangles."""

    def cell_allowed(self, grid: Grid, i: int, j: int) -> bool:
        """Whether cell ``c_{i,j}`` may be en-heaped (constraint filter)."""
        return True

    @abstractmethod
    def reference_point(self) -> Point:
        """A representative location of the query (diagnostics, QT entry)."""

    def partition(self, grid: Grid) -> ConceptualPartition:
        """Conceptual partition around this query's core block."""
        i_lo, i_hi, j_lo, j_hi = self.core_range(grid)
        return ConceptualPartition(i_lo, i_hi, j_lo, j_hi, grid.cols, grid.rows)


class PointNNStrategy(QueryStrategy):
    """Plain k-NN around a single query point ``q`` (Section 3)."""

    __slots__ = ("x", "y")

    kind = "nn"

    def __init__(self, x: float, y: float) -> None:
        self.x = float(x)
        self.y = float(y)

    def dist(self, x: float, y: float) -> float:
        return math.hypot(x - self.x, y - self.y)

    def core_range(self, grid: Grid) -> tuple[int, int, int, int]:
        i, j = grid.cell_of(self.x, self.y)
        return (i, i, j, j)

    def cell_key(self, grid: Grid, i: int, j: int) -> float:
        return grid.mindist_xy(i, j, self.x, self.y)

    def strip_key0(
        self, grid: Grid, partition: ConceptualPartition, direction: int
    ) -> float:
        """Perpendicular distance from ``q`` to the inner edge of ``DIR_0``.

        Valid because every arm spans the query's projection on its axis
        (see :mod:`repro.core.partition`), hence ``mindist`` degenerates to
        the perpendicular component.  Clamped at zero against floating-point
        jitter when ``q`` sits exactly on a cell edge.
        """
        return max(0.0, _perpendicular_gap(grid, partition, direction, self.x, self.y))

    def level_step(self, grid: Grid) -> float:
        return grid.delta

    def reference_point(self) -> Point:
        return (self.x, self.y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PointNNStrategy({self.x:.6g}, {self.y:.6g})"


class AggregateNNStrategy(QueryStrategy):
    """Aggregate NN over query points ``Q = {q1..qm}`` (Section 5)."""

    __slots__ = ("fn", "points")

    kind = "ann"

    def __init__(self, points: Sequence[Point], fn: str | AggregateFunction = "sum") -> None:
        if not points:
            raise ValueError("an aggregate query needs at least one point")
        self.points: tuple[Point, ...] = tuple((float(x), float(y)) for x, y in points)
        self.fn = get_aggregate(fn)

    @property
    def mbr(self) -> Rect:
        """The minimum bounding rectangle ``M`` of the query points."""
        return Rect.bounding(list(self.points))

    def dist(self, x: float, y: float) -> float:
        return self.fn(math.hypot(x - qx, y - qy) for qx, qy in self.points)

    def core_range(self, grid: Grid) -> tuple[int, int, int, int]:
        m = self.mbr
        i_lo, j_lo = grid.cell_of(m.x0, m.y0)
        i_hi, j_hi = grid.cell_of(m.x1, m.y1)
        return (i_lo, i_hi, j_lo, j_hi)

    def cell_key(self, grid: Grid, i: int, j: int) -> float:
        """``amindist(c, Q) = f over mindist(c, q_i)`` — a lower bound for
        ``adist(p, Q)`` of any object ``p`` in the cell."""
        return self.fn(grid.mindist_xy(i, j, qx, qy) for qx, qy in self.points)

    def strip_key0(
        self, grid: Grid, partition: ConceptualPartition, direction: int
    ) -> float:
        """``amindist(DIR_0, Q)`` as the aggregate of perpendicular gaps.

        Every arm spans the projection of the whole MBR (hence of every
        ``q_i``), so each individual ``mindist(DIR_0, q_i)`` is the
        perpendicular gap of ``q_i``.  For ``min``/``max`` this realizes the
        paper's O(1) observation — the aggregate reduces to the gap of the
        closest/farthest MBR edge — computed here uniformly in O(m).
        """
        return self.fn(
            max(0.0, _perpendicular_gap(grid, partition, direction, qx, qy))
            for qx, qy in self.points
        )

    def level_step(self, grid: Grid) -> float:
        """``m·δ`` for sum (Corollary 5.1); ``δ`` for min/max (Corollary 5.2)."""
        return self.fn.level_step(len(self.points), grid.delta)

    def reference_point(self) -> Point:
        return self.mbr.center

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AggregateNNStrategy({self.fn.name}, m={len(self.points)})"


class ConstrainedStrategy(QueryStrategy):
    """Constrained (A)NN: results restricted to a rectangle (Figure 5.3).

    "The adaptation of CPM to this problem inserts into the search heap only
    cells and conceptual rectangles that intersect the constraint region."
    We filter cells on insertion and objects on evaluation; rectangle
    entries keep their unconstrained keys, which remain valid lower bounds.
    """

    __slots__ = ("inner", "region")

    kind = "constrained"

    def __init__(self, inner: QueryStrategy, region: Rect) -> None:
        if isinstance(inner, ConstrainedStrategy):
            raise TypeError("constrained strategies do not nest")
        self.inner = inner
        self.region = region

    def dist(self, x: float, y: float) -> float:
        return self.inner.dist(x, y)

    def accepts(self, x: float, y: float) -> bool:
        return self.region.contains_point(x, y) and self.inner.accepts(x, y)

    def core_range(self, grid: Grid) -> tuple[int, int, int, int]:
        return self.inner.core_range(grid)

    def cell_key(self, grid: Grid, i: int, j: int) -> float:
        return self.inner.cell_key(grid, i, j)

    def strip_key0(
        self, grid: Grid, partition: ConceptualPartition, direction: int
    ) -> float:
        return self.inner.strip_key0(grid, partition, direction)

    def level_step(self, grid: Grid) -> float:
        return self.inner.level_step(grid)

    def cell_allowed(self, grid: Grid, i: int, j: int) -> bool:
        x0, y0, x1, y1 = grid.cell_rect(i, j)
        return rects_intersect(
            self.region.x0, self.region.y0, self.region.x1, self.region.y1,
            x0, y0, x1, y1,
        )

    def reference_point(self) -> Point:
        return self.inner.reference_point()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstrainedStrategy({self.inner!r}, region={self.region})"


def _perpendicular_gap(
    grid: Grid, partition: ConceptualPartition, direction: int, x: float, y: float
) -> float:
    """Distance from ``(x, y)`` to the inner edge of the level-0 strip of
    ``direction`` around the partition's core block."""
    if direction == UP:
        return grid.bounds.y0 + (partition.j_hi + 1) * grid.delta - y
    if direction == DOWN:
        return y - (grid.bounds.y0 + partition.j_lo * grid.delta)
    if direction == RIGHT:
        return grid.bounds.x0 + (partition.i_hi + 1) * grid.delta - x
    if direction == LEFT:
        return x - (grid.bounds.x0 + partition.i_lo * grid.delta)
    raise ValueError(f"unknown direction {direction}")
