"""The search heap ``H`` of the CPM NN-computation module (Figure 3.4).

The heap holds two entry kinds sorted by their ``mindist`` key:

* *cell* entries ``<c, mindist(c, q)>``;
* *rectangle* entries ``<DIR_lvl, mindist(DIR_lvl, q)>``.

"At any point, the heap H contains exactly four rectangle entries, one for
each direction" (boundary boxes) — fewer once a direction's rectangles are
exhausted at the grid border.

The heap survives the initial search inside the query's book-keeping
(Section 3.1): entries that were en-heaped but never de-heaped seed the NN
*re-computation* module (Figure 3.6), which is what lets CPM resume a search
instead of restarting it.
"""

from __future__ import annotations

import heapq

CELL = 0
RECT = 1

# Entry layout: (key, seq, kind, a, b)
#   kind == CELL: a = column, b = row
#   kind == RECT: a = direction, b = level
Entry = tuple[float, int, int, int, int]


class SearchHeap:
    """Min-heap over mixed cell / rectangle entries keyed by mindist.

    A monotonically increasing sequence number breaks key ties so tuple
    comparison never reaches the payload (deterministic pop order, no
    accidental cross-kind comparisons).
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[Entry] = []
        self._seq = 0

    def push_cell(self, key: float, i: int, j: int) -> None:
        """En-heap cell ``c_{i,j}`` with key ``mindist(c, q)``."""
        self._seq += 1
        heapq.heappush(self._heap, (key, self._seq, CELL, i, j))

    def push_rect(self, key: float, direction: int, level: int) -> None:
        """En-heap rectangle ``DIR_level`` with key ``mindist(DIR, q)``."""
        self._seq += 1
        heapq.heappush(self._heap, (key, self._seq, RECT, direction, level))

    def peek_key(self) -> float:
        """Key of the next entry (``inf`` when the heap is empty)."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def pop(self) -> Entry:
        """De-heap the entry with the minimum key."""
        return heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop all entries (the paper's low-memory fallback, Section 3.3)."""
        self._heap.clear()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def cell_entry_count(self) -> int:
        """Number of *cell* entries currently en-heaped.

        Together with the visit list this is the ``C_SH`` quantity of the
        Section 4.1 space analysis ("the total number of cells stored either
        in the visit list or in the search heap").
        """
        return sum(1 for entry in self._heap if entry[2] == CELL)

    def rect_entry_count(self) -> int:
        """Number of rectangle entries (the boundary boxes; at most four)."""
        return sum(1 for entry in self._heap if entry[2] == RECT)

    def entries(self) -> list[Entry]:
        """Snapshot of the raw entries (diagnostics/tests only)."""
        return list(self._heap)
