"""Alternative distance metrics (footnote 3 of the paper).

"We focus on two-dimensional Euclidean spaces, but the proposed techniques
can be applied to higher dimensionality and other distance metrics."

This module instantiates the *other distance metrics* half of that claim
for the Minkowski family: :class:`MinkowskiNNStrategy` monitors k-NN under
``L1`` (Manhattan), ``L2`` (Euclidean — equivalent to
:class:`~repro.core.strategies.PointNNStrategy`) and ``Linf`` (Chebyshev).

Why the CPM machinery carries over unchanged:

* ``mindist_p(c, q)`` under any Minkowski norm is still computed from the
  per-axis gaps ``(dx, dy)`` to the rectangle, and is still a lower bound
  on the distance of any object in the cell;
* every conceptual rectangle spans the query's axis projection, so its
  minimum distance is the pure perpendicular gap — *identical* under all
  Minkowski norms — and Lemma 3.1's ``+δ`` recurrence holds verbatim.
"""

from __future__ import annotations

import math

from repro.core.partition import ConceptualPartition
from repro.core.strategies import QueryStrategy, _perpendicular_gap
from repro.geometry.points import Point
from repro.grid.grid import Grid

#: accepted metric names and their Minkowski exponents (None = infinity).
METRICS: dict[str, float | None] = {"l1": 1.0, "l2": 2.0, "linf": None}


def minkowski_dist(ax: float, ay: float, bx: float, by: float, p: float | None) -> float:
    """Minkowski distance between two points (``p=None`` means infinity)."""
    dx = abs(ax - bx)
    dy = abs(ay - by)
    if p is None:
        return dx if dx > dy else dy
    if p == 1.0:
        return dx + dy
    if p == 2.0:
        return math.hypot(dx, dy)
    return (dx**p + dy**p) ** (1.0 / p)


class MinkowskiNNStrategy(QueryStrategy):
    """Point k-NN under a Minkowski norm (L1 / L2 / Linf).

    Args:
        x, y: the query point.
        metric: ``"l1"``, ``"l2"`` or ``"linf"`` (case-insensitive), or a
            numeric exponent ``p >= 1``.
    """

    __slots__ = ("metric_name", "p", "x", "y")

    kind = "minkowski-nn"

    def __init__(self, x: float, y: float, metric: str | float = "l2") -> None:
        self.x = float(x)
        self.y = float(y)
        if isinstance(metric, str):
            try:
                self.p = METRICS[metric.lower()]
            except KeyError:
                known = ", ".join(sorted(METRICS))
                raise ValueError(
                    f"unknown metric {metric!r}; expected one of {known} "
                    f"or a numeric exponent"
                ) from None
            self.metric_name = metric.lower()
        else:
            if metric < 1.0:
                raise ValueError("Minkowski exponent must be >= 1")
            self.p = float(metric)
            self.metric_name = f"l{metric:g}"

    def dist(self, x: float, y: float) -> float:
        return minkowski_dist(x, y, self.x, self.y, self.p)

    def core_range(self, grid: Grid) -> tuple[int, int, int, int]:
        i, j = grid.cell_of(self.x, self.y)
        return (i, i, j, j)

    def cell_key(self, grid: Grid, i: int, j: int) -> float:
        """Minkowski mindist to the cell, from the per-axis gaps."""
        x0, y0, x1, y1 = grid.cell_rect(i, j)
        if self.x < x0:
            dx = x0 - self.x
        elif self.x > x1:
            dx = self.x - x1
        else:
            dx = 0.0
        if self.y < y0:
            dy = y0 - self.y
        elif self.y > y1:
            dy = self.y - y1
        else:
            dy = 0.0
        p = self.p
        if p is None:
            return dx if dx > dy else dy
        if p == 1.0:
            return dx + dy
        if p == 2.0:
            return math.hypot(dx, dy)
        return (dx**p + dy**p) ** (1.0 / p)

    def strip_key0(
        self, grid: Grid, partition: ConceptualPartition, direction: int
    ) -> float:
        """The perpendicular gap — metric-independent, since the arm spans
        the query's projection (one axis gap is zero)."""
        return max(0.0, _perpendicular_gap(grid, partition, direction, self.x, self.y))

    def level_step(self, grid: Grid) -> float:
        return grid.delta

    def reference_point(self) -> Point:
        return (self.x, self.y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MinkowskiNNStrategy({self.x:.6g}, {self.y:.6g}, {self.metric_name})"
