"""Tests for the naive sorted-cell search (Section 3.1 opening)."""

import pytest

from repro.baselines.naive_grid import naive_nn_search, naive_strategy_search
from repro.core.strategies import AggregateNNStrategy, ConstrainedStrategy, PointNNStrategy
from repro.geometry.aggregates import adist
from repro.geometry.rects import Rect
from repro.grid.grid import Grid
from tests.conftest import brute_knn, scatter


def loaded_grid(n=80, cells=8, seed=9):
    grid = Grid(cells)
    objs = scatter(n, seed=seed)
    grid.bulk_load(objs)
    return grid, dict(objs)


class TestNaivePointSearch:
    @pytest.mark.parametrize("k", [1, 4, 10])
    def test_matches_brute_force(self, k):
        grid, positions = loaded_grid()
        for q in [(0.5, 0.5), (0.03, 0.03), (0.98, 0.44)]:
            entries, _cells = naive_nn_search(grid, q, k)
            assert entries == brute_knn(positions, q, k)

    def test_processed_cells_are_minimal_set(self):
        """Only cells with mindist < best_dist are processed (plus possibly
        boundary ties) — the optimality claim of Section 3.1."""
        grid, _ = loaded_grid()
        q = (0.5, 0.5)
        entries, cells = naive_nn_search(grid, q, 3)
        best = entries[-1][0]
        for i, j in cells:
            assert grid.mindist(i, j, q) <= best
        # Every strictly-inside cell must be present.
        for i in range(grid.cols):
            for j in range(grid.rows):
                if grid.mindist(i, j, q) < best:
                    assert (i, j) in cells

    def test_processed_cells_sorted_by_mindist(self):
        grid, _ = loaded_grid()
        q = (0.3, 0.7)
        _entries, cells = naive_nn_search(grid, q, 2)
        keys = [grid.mindist(i, j, q) for i, j in cells]
        assert keys == sorted(keys)

    def test_empty_grid_scans_everything(self):
        grid = Grid(4)
        entries, cells = naive_nn_search(grid, (0.5, 0.5), 1)
        assert entries == []
        assert len(cells) == 16

    def test_invalid_k(self):
        grid = Grid(4)
        with pytest.raises(ValueError):
            naive_nn_search(grid, (0.5, 0.5), 0)


class TestNaiveStrategySearch:
    def test_aggregate_strategy(self):
        grid, positions = loaded_grid()
        points = [(0.3, 0.3), (0.7, 0.6)]
        for fn in ("sum", "min", "max"):
            entries, _cells = naive_strategy_search(
                grid, AggregateNNStrategy(points, fn), 3
            )
            expected = sorted(
                (adist(p, points, fn), oid) for oid, p in positions.items()
            )[:3]
            assert entries == expected

    def test_constrained_strategy(self):
        grid, positions = loaded_grid()
        region = Rect(0.5, 0.0, 1.0, 1.0)
        strategy = ConstrainedStrategy(PointNNStrategy(0.5, 0.5), region)
        entries, cells = naive_strategy_search(grid, strategy, 2)
        import math

        expected = sorted(
            (math.hypot(x - 0.5, y - 0.5), oid)
            for oid, (x, y) in positions.items()
            if region.contains_point(x, y)
        )[:2]
        assert entries == expected
        # Only cells intersecting the region are processed.
        for i, j in cells:
            x0, y0, x1, y1 = grid.cell_rect(i, j)
            assert region.intersects_bounds(x0, y0, x1, y1)
