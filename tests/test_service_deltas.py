"""Delta layer: diff semantics and monitor capture equivalence.

Every monitor's ``process_deltas`` must report exactly the difference
between its result tables before and after the cycle — verified here by
replaying workloads and cross-checking each delta against a snapshot
diff (the base-class fallback implementation is the reference).
"""

import pytest

from repro.baselines.brute import BruteForceMonitor
from repro.baselines.sea import SeaCnnMonitor
from repro.baselines.ypk import YpkCnnMonitor
from repro.core.cpm import CPMMonitor
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.deltas import ResultDelta, diff_results
from repro.updates import QueryUpdate, QueryUpdateKind, appear_update, move_update


class TestDiffResults:
    def test_no_change(self):
        entries = [(0.1, 1), (0.2, 2)]
        delta = diff_results(7, entries, list(entries))
        assert delta.qid == 7
        assert not delta.changed
        assert delta.incoming == () and delta.outgoing == ()
        assert not delta.reordered and not delta.terminated
        assert delta.result == tuple(entries)

    def test_incoming_and_outgoing(self):
        old = [(0.1, 1), (0.2, 2)]
        new = [(0.1, 1), (0.15, 3)]
        delta = diff_results(0, old, new)
        assert delta.incoming == ((0.15, 3),)
        assert delta.outgoing == ((0.2, 2),)
        assert not delta.reordered
        assert delta.changed

    def test_reorder_of_survivors(self):
        old = [(0.1, 1), (0.2, 2)]
        new = [(0.05, 2), (0.1, 1)]
        delta = diff_results(0, old, new)
        assert delta.incoming == () and delta.outgoing == ()
        assert delta.reordered and delta.changed

    def test_incomer_shift_is_not_a_reorder(self):
        # The surviving neighbor keeps its distance; only its list
        # position changes because an incomer lands ahead of it.
        old = [(0.2, 2)]
        new = [(0.1, 3), (0.2, 2)]
        delta = diff_results(0, old, new)
        assert delta.incoming == ((0.1, 3),)
        assert not delta.reordered

    def test_terminated_drains(self):
        old = [(0.1, 1)]
        delta = diff_results(0, old, [], terminated=True)
        assert delta.terminated and delta.changed
        assert delta.outgoing == ((0.1, 1),)
        assert delta.result == ()

    def test_apply_to_reconstructs(self):
        old = [(0.1, 1), (0.2, 2)]
        new = [(0.05, 3), (0.1, 1)]
        delta = diff_results(0, old, new)
        assert delta.apply_to(old) == new

    def test_apply_to_rejects_wrong_base(self):
        delta = diff_results(0, [(0.1, 1)], [(0.05, 3), (0.1, 1)])
        with pytest.raises(ValueError):
            delta.apply_to([])


MONITOR_FACTORIES = [
    pytest.param(lambda: CPMMonitor(cells_per_axis=16), id="CPM"),
    pytest.param(lambda: YpkCnnMonitor(cells_per_axis=16), id="YPK-CNN"),
    pytest.param(lambda: SeaCnnMonitor(cells_per_axis=16), id="SEA-CNN"),
    pytest.param(BruteForceMonitor, id="BruteForce"),
]


@pytest.mark.parametrize("factory", MONITOR_FACTORIES)
class TestCaptureMatchesSnapshots:
    """Replay-level theorem: targeted capture == snapshot diff."""

    def replay_and_check(self, factory, workload, k):
        monitor = factory()
        monitor.load_objects(workload.initial_objects.items())
        for qid, point in workload.initial_queries.items():
            monitor.install_query(qid, point, k)
        previous = monitor.result_table()
        saw_delta = False
        for batch in workload.batches:
            deltas = monitor.process_deltas(
                batch.object_updates, batch.query_updates
            )
            current = monitor.result_table()
            changed_qids = {
                qid
                for qid in set(previous) & set(current)
                if previous[qid] != current[qid]
            }
            new_qids = set(current) - set(previous)
            gone_qids = set(previous) - set(current)
            # Every result change is covered by a delta...
            for qid in changed_qids | new_qids:
                assert qid in deltas, (batch.timestamp, qid)
            # ... and every delta matches the snapshot diff exactly.
            for qid, delta in deltas.items():
                assert isinstance(delta, ResultDelta)
                if delta.terminated:
                    assert qid in gone_qids
                    assert delta == diff_results(
                        qid, previous[qid], [], terminated=True
                    )
                else:
                    reference = diff_results(
                        qid, previous.get(qid, []), current[qid]
                    )
                    assert delta == reference, (batch.timestamp, qid)
                    if delta.changed:
                        saw_delta = True
                        assert delta.apply_to(previous.get(qid, [])) == current[qid]
            previous = current
        assert saw_delta, "workload produced no deltas — test is vacuous"

    def test_default_workload(self, factory):
        spec = WorkloadSpec(n_objects=140, n_queries=6, k=4, timestamps=8, seed=11)
        self.replay_and_check(factory, BrinkhoffGenerator(spec).generate(), spec.k)

    def test_churn_and_moving_queries(self, factory):
        spec = WorkloadSpec(
            n_objects=100,
            n_queries=5,
            k=3,
            timestamps=10,
            object_speed="fast",
            query_agility=0.8,
            seed=12,
        )
        workload = BrinkhoffGenerator(spec).generate()
        assert any(
            u.new is None for b in workload.batches for u in b.object_updates
        )
        self.replay_and_check(factory, workload, spec.k)


class TestExplicitQueryEvents:
    def test_insert_move_terminate_deltas(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects([(i, (i / 10.0, 0.5)) for i in range(1, 8)])
        deltas = monitor.process_deltas(
            [], [QueryUpdate(1, QueryUpdateKind.INSERT, (0.35, 0.5), 2)]
        )
        assert set(deltas) == {1}
        assert len(deltas[1].incoming) == 2 and not deltas[1].terminated

        deltas = monitor.process_deltas(
            [], [QueryUpdate(1, QueryUpdateKind.MOVE, (0.65, 0.5), 2)]
        )
        assert set(deltas) == {1}
        # The move is reported against the previous result, not from scratch.
        assert deltas[1].result == tuple(monitor.result(1))
        assert deltas[1].outgoing  # the old-side neighbors left

        deltas = monitor.process_deltas(
            [], [QueryUpdate(1, QueryUpdateKind.TERMINATE)]
        )
        assert deltas[1].terminated and deltas[1].outgoing
        assert monitor.query_ids() == []

    def test_object_churn_deltas(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects([(1, (0.2, 0.5)), (2, (0.8, 0.5))])
        monitor.install_query(9, (0.5, 0.5), 1)
        assert monitor.result(9)[0][1] == 1

        # A new object appears right on the query point.
        deltas = monitor.process_deltas([appear_update(3, (0.5, 0.5))])
        assert deltas[9].incoming == ((0.0, 3),)
        assert deltas[9].outgoing == ((pytest.approx(0.3), 1),)

        # It moves within the result: pure reorder.
        deltas = monitor.process_deltas([move_update(3, (0.5, 0.5), (0.45, 0.5))])
        assert deltas[9].reordered and not deltas[9].incoming

    def test_unchanged_cycle_reports_nothing(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects([(1, (0.2, 0.5)), (2, (0.8, 0.5))])
        monitor.install_query(9, (0.1, 0.5), 1)
        # An update far outside the influence region.
        deltas = monitor.process_deltas([move_update(2, (0.8, 0.5), (0.9, 0.5))])
        assert deltas == {}

    def test_leave_and_return_same_cycle_is_no_change(self):
        # An NN that moves and returns to its original distance within one
        # batch must not be reported as changed — exactness pinned against
        # the brute-force oracle.
        def build(factory):
            monitor = factory()
            monitor.load_objects([(1, (0.4, 0.5)), (2, (0.8, 0.5))])
            monitor.install_query(9, (0.5, 0.5), 1)
            return monitor

        batch = [
            move_update(1, (0.4, 0.5), (0.45, 0.5)),
            move_update(1, (0.45, 0.5), (0.4, 0.5)),
        ]
        brute = build(BruteForceMonitor)
        cpm = build(lambda: CPMMonitor(cells_per_axis=8))
        assert brute.process(batch) == set()
        assert cpm.process(batch) == set()
        assert cpm.process_deltas(batch) == {}

    def test_reorder_only_cycle_is_reported(self):
        # The converse: a genuine distance change of a surviving NN is a
        # result change (CPM under-reported these before the service PR).
        cpm = CPMMonitor(cells_per_axis=8)
        cpm.load_objects([(1, (0.4, 0.5)), (2, (0.3, 0.5)), (3, (0.8, 0.5))])
        cpm.install_query(9, (0.5, 0.5), 2)
        batch = [move_update(1, (0.4, 0.5), (0.42, 0.5))]
        assert cpm.process(batch) == {9}

    def test_not_reentrant(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor._delta_log = {}
        with pytest.raises(RuntimeError):
            monitor.process_deltas([])
