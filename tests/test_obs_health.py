"""Tiered health policy: rule units plus driver integration.

The contract under test: hard rules (overrun streaks, dead feeds) stop
the driver with a typed :class:`HealthError` that surfaces exactly like
any pipeline failure (``IngestReport.failed`` + ``stop()`` re-raise),
while soft rules only emit :class:`AlertEvent` records — debounced,
counted in the registry, and collected on ``IngestReport.alerts``.
"""

import itertools
import time

import pytest

from repro.core.cpm import CPMMonitor
from repro.ingest.buffer import BackPressurePolicy, IngestBuffer
from repro.ingest.driver import IngestDriver
from repro.ingest.feeds import WorkloadFeed
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec
from repro.obs.health import (
    HARD,
    SOFT,
    BufferOccupancy,
    CallableAlertSink,
    DeadFeed,
    DropRateSpike,
    FileAlertSink,
    HealthError,
    HealthMonitor,
    HealthPolicy,
    HealthSample,
    OverrunStreak,
    QueueDepthGrowth,
    ReconnectStorm,
)
from repro.obs.metrics import MetricsRegistry
from repro.service.service import MonitoringService
from repro.testing.faults import FaultPlan


def sample(cycle: int, **kwargs) -> HealthSample:
    kwargs.setdefault("trigger", "mark")
    return HealthSample(cycle=cycle, timestamp=float(cycle), **kwargs)


class TestRules:
    def test_overrun_streak_requires_consecutive_overruns(self):
        rule = OverrunStreak(limit=3)
        assert rule.observe(sample(0, deadline_overrun=True)) is None
        assert rule.observe(sample(1, deadline_overrun=True)) is None
        # A clean cycle resets the streak.
        assert rule.observe(sample(2, deadline_overrun=False)) is None
        assert rule.observe(sample(3, deadline_overrun=True)) is None
        assert rule.observe(sample(4, deadline_overrun=True)) is None
        event = rule.observe(sample(5, deadline_overrun=True))
        assert event is not None
        assert event.level == HARD
        assert event.rule == "overrun_streak"
        assert event.value == 3.0

    def test_dead_feed_counts_only_empty_deadline_cycles(self):
        rule = DeadFeed(max_idle_cycles=2)
        assert rule.observe(sample(0, applied=0, trigger="deadline")) is None
        # An empty *mark* cycle is a quiet timestamp, not a dead feed.
        assert rule.observe(sample(1, applied=0, trigger="mark")) is None
        assert rule.observe(sample(2, applied=0, trigger="deadline")) is None
        event = rule.observe(sample(3, applied=0, trigger="deadline"))
        assert event is not None and event.rule == "dead_feed"
        assert event.level == HARD

    def test_dead_feed_resets_on_any_application(self):
        rule = DeadFeed(max_idle_cycles=2)
        assert rule.observe(sample(0, applied=0, trigger="deadline")) is None
        assert rule.observe(sample(1, applied=5, trigger="deadline")) is None
        assert rule.observe(sample(2, applied=0, trigger="deadline")) is None

    def test_drop_rate_spike_needs_minimum_volume(self):
        rule = DropRateSpike(max_rate=0.1, min_offered=20)
        # 90% loss on a tiny cycle: not enough signal.
        assert rule.observe(sample(0, offered=10, dropped=9)) is None
        event = rule.observe(sample(1, offered=100, dropped=15))
        assert event is not None and event.level == SOFT
        assert event.rule == "drop_rate_spike"
        assert event.value == pytest.approx(0.15)
        assert rule.observe(sample(2, offered=100, dropped=5)) is None

    def test_buffer_occupancy_fraction(self):
        rule = BufferOccupancy(max_fraction=0.8)
        assert rule.observe(sample(0, buffer_pending=90, buffer_capacity=0)) is None
        assert (
            rule.observe(sample(1, buffer_pending=50, buffer_capacity=100)) is None
        )
        event = rule.observe(sample(2, buffer_pending=90, buffer_capacity=100))
        assert event is not None and event.rule == "buffer_occupancy"
        assert event.value == pytest.approx(0.9)

    def test_queue_depth_growth(self):
        rule = QueueDepthGrowth(limit=256)
        assert rule.observe(sample(0, queue_depth=100)) is None
        event = rule.observe(sample(1, queue_depth=300))
        assert event is not None and event.rule == "queue_depth_growth"

    def test_reconnect_storm_windows_cumulative_counts(self):
        rule = ReconnectStorm(limit=2, window=10)
        # ``reconnects`` is cumulative; the rule diffs it per cycle.
        assert rule.observe(sample(0, reconnects=1)) is None
        event = rule.observe(sample(1, reconnects=3))
        assert event is not None and event.rule == "reconnect_storm"
        assert event.value == 3.0
        # Far outside the window with no new reconnects: quiet again.
        assert rule.observe(sample(20, reconnects=3)) is None


class TestHealthMonitor:
    def test_soft_alerts_are_debounced_per_rule(self):
        policy = HealthPolicy(rules=(QueueDepthGrowth(limit=0),))
        monitor = HealthMonitor(policy, realert_every=5)
        emitted = []
        for cycle in range(10):
            emitted.extend(monitor.observe(sample(cycle, queue_depth=1)))
        assert [event.cycle for event in emitted] == [0, 5]
        assert monitor.alerts == emitted

    def test_hard_violation_raises_after_counting(self):
        registry = MetricsRegistry()
        policy = HealthPolicy(rules=(OverrunStreak(limit=1),))
        monitor = HealthMonitor(policy, registry=registry)
        with pytest.raises(HealthError) as err:
            monitor.observe(sample(0, deadline_overrun=True))
        assert err.value.event.rule == "overrun_streak"
        assert (
            registry.snapshot()['repro_health_alerts_total{level="hard"}'] == 1
        )

    def test_soft_alerts_bump_registry_and_survive_bad_callbacks(self):
        registry = MetricsRegistry()
        policy = HealthPolicy(rules=(QueueDepthGrowth(limit=0),))

        def exploding(_event):
            raise RuntimeError("observer bug")

        monitor = HealthMonitor(policy, registry=registry, on_alert=exploding)
        emitted = monitor.observe(sample(0, queue_depth=1))
        assert len(emitted) == 1
        assert (
            registry.snapshot()['repro_health_alerts_total{level="soft"}'] == 1
        )

    def test_file_sink_writes_jsonl_and_opens_lazily(self, tmp_path):
        import json

        path = tmp_path / "alerts.jsonl"
        sink = FileAlertSink(path)
        policy = HealthPolicy(rules=(QueueDepthGrowth(limit=0),), sinks=(sink,))
        monitor = HealthMonitor(policy, realert_every=5)
        # No alerts yet: a healthy run leaves no empty artifact.
        assert not path.exists()
        for cycle in range(10):
            monitor.observe(sample(cycle, queue_depth=1))
        sink.close()
        lines = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        # The sink sees alerts after de-bounce: two firings, not ten.
        assert [line["cycle"] for line in lines] == [0, 5]
        assert lines[0] == monitor.alerts[0].as_dict()

    def test_hard_violation_routes_to_sinks_before_raising(self, tmp_path):
        import json

        seen = []
        path = tmp_path / "alerts.jsonl"
        policy = HealthPolicy(
            rules=(OverrunStreak(limit=1),),
            sinks=(CallableAlertSink(seen.append), FileAlertSink(path)),
        )
        monitor = HealthMonitor(policy)
        with pytest.raises(HealthError):
            monitor.observe(sample(0, deadline_overrun=True))
        assert [event.rule for event in seen] == ["overrun_streak"]
        record = json.loads(path.read_text().splitlines()[0])
        assert record["level"] == HARD
        assert record["rule"] == "overrun_streak"

    def test_broken_sink_does_not_block_the_others(self):
        seen = []

        def exploding(_event):
            raise RuntimeError("sink bug")

        policy = HealthPolicy(
            rules=(QueueDepthGrowth(limit=0),),
            sinks=(CallableAlertSink(exploding), CallableAlertSink(seen.append)),
        )
        monitor = HealthMonitor(policy)
        emitted = monitor.observe(sample(0, queue_depth=1))
        assert len(emitted) == 1
        assert len(seen) == 1

    def test_default_policy_accepts_sinks(self):
        sink = CallableAlertSink(lambda event: None)
        policy = HealthPolicy.default(sinks=(sink,))
        assert policy.sinks == (sink,)

    def test_default_policy_builds_fresh_rule_state(self):
        first = HealthPolicy.default()
        second = HealthPolicy.default()
        assert {rule.name for rule in first.rules} == {
            "overrun_streak",
            "dead_feed",
            "drop_rate_spike",
            "buffer_occupancy",
            "queue_depth_growth",
            "reconnect_storm",
        }
        assert all(a is not b for a, b in zip(first.rules, second.rules))


def _workload(timestamps: int = 8, n_objects: int = 40):
    spec = WorkloadSpec(
        n_objects=n_objects,
        n_queries=2,
        k=2,
        timestamps=timestamps,
        seed=11,
        query_agility=0.0,
    )
    return UniformGenerator(spec).generate()


def _counting_clock():
    """A clock advancing one full second per read: every cycle's elapsed
    time dwarfs any sub-second deadline, deterministically."""
    ticks = itertools.count()
    return lambda: float(next(ticks))


class TestDriverIntegration:
    def test_overrun_streak_stops_a_synchronous_run(self):
        workload = _workload()
        service = MonitoringService(CPMMonitor(cells_per_axis=8))
        driver = IngestDriver(
            WorkloadFeed(workload),
            service,
            cycle_deadline=0.5,
            clock=_counting_clock(),
            health=HealthPolicy(rules=(OverrunStreak(limit=3),)),
        )
        driver.prime(k=2)
        with pytest.raises(HealthError) as err:
            driver.run()
        assert err.value.event.rule == "overrun_streak"
        # The violating cycle was recorded before the raise propagated.
        assert driver.report.n_cycles == 3
        assert driver.report.cycles[-1].deadline_overrun

    def test_background_run_surfaces_health_error_via_report_and_stop(self):
        workload = _workload()
        service = MonitoringService(CPMMonitor(cells_per_axis=8))
        driver = IngestDriver(
            WorkloadFeed(workload),
            service,
            cycle_deadline=0.5,
            clock=_counting_clock(),
            health=HealthPolicy(rules=(OverrunStreak(limit=3),)),
        )
        driver.prime(k=2)
        driver.start()
        deadline = time.monotonic() + 5.0
        while not driver.report.failed and time.monotonic() < deadline:
            time.sleep(0.01)
        assert driver.report.failed
        assert "overrun_streak" in (driver.report.error or "")
        with pytest.raises(HealthError):
            driver.stop()

    def test_fault_plan_stall_forces_the_hard_violation(self):
        """The seeded fault path of the acceptance criterion: stalls
        injected through ``repro.testing.faults`` overrun real-clock
        deadlines until the hard threshold stops the driver."""
        workload = _workload()
        plan = FaultPlan()
        for cycle in range(3):
            plan.stall_ingest(cycle, 0.05)
        service = MonitoringService(CPMMonitor(cells_per_axis=8))
        driver = IngestDriver(
            WorkloadFeed(workload),
            service,
            max_batch=1,
            cycle_deadline=0.01,
            health=HealthPolicy(rules=(OverrunStreak(limit=3),)),
            fault_hook=plan.ingest_hook(),
        )
        driver.prime(k=2)
        with pytest.raises(HealthError) as err:
            driver.run()
        assert err.value.event.rule == "overrun_streak"
        assert [fault.kind for fault in plan.fired] == ["stall_ingest"] * 3
        assert driver.report.n_cycles == 3

    def test_soft_drop_rate_alerts_do_not_stop_the_run(self):
        workload = _workload(timestamps=5, n_objects=120)
        registry = MetricsRegistry()
        service = MonitoringService(CPMMonitor(cells_per_axis=8))
        driver = IngestDriver(
            WorkloadFeed(workload),
            service,
            buffer=IngestBuffer(
                capacity=16, policy=BackPressurePolicy.DROP_OLDEST
            ),
            metrics=registry,
            health=HealthPolicy(rules=(DropRateSpike(max_rate=0.05),)),
        )
        driver.prime(k=2)
        report = driver.run()
        assert not report.failed
        assert report.alerts, "lossy buffer produced no drop-rate alert"
        assert all(event.level == SOFT for event in report.alerts)
        assert all(
            event.rule == "drop_rate_spike" for event in report.alerts
        )
        snap = registry.snapshot()
        assert snap['repro_health_alerts_total{level="soft"}'] == len(
            report.alerts
        )
        assert snap["repro_ingest_dropped_total"] == report.total_dropped > 0

    def test_driver_metrics_match_report_totals(self):
        workload = _workload()
        registry = MetricsRegistry()
        service = MonitoringService(
            CPMMonitor(cells_per_axis=8), metrics=registry
        )
        driver = IngestDriver(
            WorkloadFeed(workload), service, metrics=registry
        )
        driver.prime(k=2)
        report = driver.run()
        snap = registry.snapshot()
        assert snap["repro_ingest_cycles_total"] == report.n_cycles
        assert snap["repro_ingest_offered_total"] == report.total_offered
        assert snap["repro_ingest_applied_total"] == report.total_applied
        assert snap["repro_ingest_changed_total"] == report.total_changed
        assert snap["repro_service_ticks_total"] == report.n_cycles
        # Every cycle timed all four phases.
        assert (
            snap['repro_tick_phase_seconds_count{phase="process"}']
            == report.n_cycles
        )
        # The tick report carries the service health snapshot.
        assert service.health_snapshot()["ticks"] == report.n_cycles
