"""Tests for the ``repro.perf`` subsystem and monitoring-server edges.

Covers the three satellite requirements of the perf-gate PR: BENCH JSON
schema round-trips, ``compare`` threshold semantics with their exit codes,
and workload-replay (`Session.replay`) edge cases (empty
workloads, zero queries).
"""

import copy
import json

import pytest

from repro.core.cpm import CPMMonitor
from repro.api.session import replay_workload
from repro.mobility.workload import Workload, WorkloadSpec
from repro.perf.compare import compare_reports, render_comparison
from repro.perf.runner import run_case, run_suite
from repro.perf.schema import (
    SCHEMA_VERSION,
    BenchCase,
    BenchReport,
    SchemaError,
    dump_report,
    load_report,
)
from repro.perf.suite import SuiteCase, build_suite
from repro.perf.__main__ import main as perf_main
from repro.updates import UpdateBatch


def make_case(case_id="scalability_n/N=100/CPM", **metric_overrides) -> BenchCase:
    metrics = {
        "wall_sec": 0.5,
        "process_sec": 0.4,
        "install_sec": 0.1,
        "cell_scans": 1000,
        "cell_accesses_per_query_per_ts": 2.5,
        "objects_scanned": 5000,
        "results_changed": 42,
        "peak_rss_kb": 30000,
    }
    metrics.update(metric_overrides)
    return BenchCase(
        case_id=case_id,
        workload="network",
        algorithm="CPM",
        params={"n_objects": 100, "n_queries": 5, "k": 4, "grid": 8,
                "timestamps": 5, "seed": 1},
        metrics=metrics,
    )


def make_report(cases=None, scale=0.01) -> BenchReport:
    return BenchReport(scale=scale, suite="smoke", cases=cases or [make_case()])


class TestSchema:
    def test_round_trip_through_dict(self):
        report = make_report()
        clone = BenchReport.from_dict(report.to_dict())
        assert clone.scale == report.scale
        assert clone.suite == report.suite
        assert clone.schema_version == SCHEMA_VERSION
        assert clone.case_ids() == report.case_ids()
        assert clone.case(report.cases[0].case_id).metrics == report.cases[0].metrics

    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "bench.json"
        report = make_report()
        dump_report(report, path)
        clone = load_report(path)
        assert clone.to_dict() == report.to_dict()

    def test_unsupported_version_rejected(self):
        raw = make_report().to_dict()
        raw["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError):
            BenchReport.from_dict(raw)

    def test_missing_required_metric_rejected(self):
        raw = make_report().to_dict()
        del raw["cases"][0]["metrics"]["cell_scans"]
        with pytest.raises(SchemaError):
            BenchReport.from_dict(raw)

    def test_non_numeric_metric_rejected(self):
        raw = make_report().to_dict()
        raw["cases"][0]["metrics"]["wall_sec"] = "fast"
        with pytest.raises(SchemaError):
            BenchReport.from_dict(raw)

    def test_duplicate_case_ids_rejected(self):
        raw = make_report(cases=[make_case(), make_case()]).to_dict()
        with pytest.raises(SchemaError):
            BenchReport.from_dict(raw)

    def test_missing_file_raises_schema_error(self, tmp_path):
        with pytest.raises(SchemaError):
            load_report(tmp_path / "nope.json")

    def test_invalid_json_raises_schema_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SchemaError):
            load_report(path)


class TestCompare:
    def test_identical_reports_pass(self):
        old = make_report()
        new = copy.deepcopy(old)
        comparison = compare_reports(old, new)
        assert comparison.ok
        assert not comparison.regressions

    def test_deterministic_counter_regression_fails(self):
        old = make_report()
        new = make_report(cases=[make_case(cell_scans=1100)])  # +10% > 2%
        comparison = compare_reports(old, new)
        assert not comparison.ok
        assert any(d.metric == "cell_scans" for d in comparison.regressions)

    def test_wall_clock_noise_within_threshold_passes(self):
        old = make_report()
        new = make_report(cases=[make_case(wall_sec=0.6)])  # +20% < 30%
        assert compare_reports(old, new).ok

    def test_threshold_override(self):
        old = make_report()
        new = make_report(cases=[make_case(wall_sec=0.6)])
        comparison = compare_reports(old, new, {"wall_sec": 0.1})
        assert not comparison.ok

    def test_improvement_is_not_a_regression(self):
        old = make_report()
        new = make_report(cases=[make_case(wall_sec=0.25, cell_scans=800)])
        assert compare_reports(old, new).ok

    def test_missing_case_fails(self):
        old = make_report(cases=[make_case(), make_case(case_id="uniform/default/CPM")])
        new = make_report()
        comparison = compare_reports(old, new)
        assert not comparison.ok
        assert comparison.missing_cases == ["uniform/default/CPM"]

    def test_scale_mismatch_raises(self):
        with pytest.raises(SchemaError):
            compare_reports(make_report(scale=0.01), make_report(scale=0.02))

    def test_render_mentions_regressions(self):
        old = make_report()
        new = make_report(cases=[make_case(cell_scans=2000)])
        text = render_comparison(compare_reports(old, new))
        assert "REGRESSION" in text
        assert "cell_scans" in text


class TestWarnMetrics:
    """Advisory metrics: reported, never failing the gate."""

    def test_warn_metric_demotes_regression(self):
        old = make_report()
        new = make_report(cases=[make_case(wall_sec=5.0)])  # way past +30%
        comparison = compare_reports(old, new, warn_metrics={"wall_sec"})
        assert comparison.ok
        assert not comparison.regressions
        assert [d.metric for d in comparison.warnings] == ["wall_sec"]

    def test_enforced_metric_still_fails_alongside_warnings(self):
        old = make_report()
        new = make_report(cases=[make_case(wall_sec=5.0, cell_scans=2000)])
        comparison = compare_reports(old, new, warn_metrics={"wall_sec"})
        assert not comparison.ok
        assert [d.metric for d in comparison.regressions] == ["cell_scans"]
        assert [d.metric for d in comparison.warnings] == ["wall_sec"]

    def test_render_labels_warnings(self):
        old = make_report()
        new = make_report(cases=[make_case(wall_sec=5.0)])
        comparison = compare_reports(old, new, warn_metrics={"wall_sec"})
        text = render_comparison(comparison)
        assert "WARNING" in text and "advisory" in text
        assert "REGRESSION" not in text


class TestCli:
    """Exit-code contract of ``python -m repro.perf``."""

    def _write(self, path, report):
        dump_report(report, path)
        return str(path)

    def test_compare_ok_exits_zero(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", make_report())
        new = self._write(tmp_path / "new.json", make_report())
        assert perf_main(["compare", old, new]) == 0
        assert "perf gate: OK" in capsys.readouterr().out

    def test_compare_regression_exits_one(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", make_report())
        new = self._write(
            tmp_path / "new.json", make_report(cases=[make_case(cell_scans=2000)])
        )
        assert perf_main(["compare", old, new]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_warn_only_exits_zero(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", make_report())
        new = self._write(
            tmp_path / "new.json", make_report(cases=[make_case(cell_scans=2000)])
        )
        assert perf_main(["compare", old, new, "--warn-only"]) == 0
        assert "warn-only" in capsys.readouterr().out

    def test_compare_warn_metric_exits_zero(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", make_report())
        new = self._write(
            tmp_path / "new.json", make_report(cases=[make_case(wall_sec=5.0)])
        )
        assert perf_main(["compare", old, new]) == 1
        assert (
            perf_main(["compare", old, new, "--warn-metric", "wall_sec"]) == 0
        )
        out = capsys.readouterr().out
        assert "WARNING" in out and "perf gate: OK" in out

    def test_compare_warn_noisy_keeps_counters_enforcing(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", make_report())
        noisy = self._write(
            tmp_path / "noisy.json",
            make_report(cases=[make_case(wall_sec=5.0, peak_rss_kb=90000)]),
        )
        assert perf_main(["compare", old, noisy, "--warn-noisy"]) == 0
        counter = self._write(
            tmp_path / "counter.json",
            make_report(cases=[make_case(cell_scans=2000)]),
        )
        assert perf_main(["compare", old, counter, "--warn-noisy"]) == 1

    def test_compare_schema_error_exits_two(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", make_report(scale=0.01))
        new = self._write(tmp_path / "new.json", make_report(scale=0.05))
        assert perf_main(["compare", old, new]) == 2

    def test_compare_bad_threshold_exits_two(self, tmp_path):
        old = self._write(tmp_path / "old.json", make_report())
        with pytest.raises(SystemExit) as exc:
            perf_main(["compare", old, old, "--threshold", "wall_sec"])
        assert exc.value.code == 2

    def test_run_writes_valid_bench_file(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert (
            perf_main(
                ["run", "--scale", "0.002", "--suite", "smoke", "--quiet",
                 "--out", str(out), "--annotate", "origin=test"]
            )
            == 0
        )
        report = load_report(out)
        assert report.annotations["origin"] == "test"
        assert report.cases  # every case has validated required metrics
        # A file produced by run always passes a self-comparison.
        assert perf_main(["compare", str(out), str(out)]) == 0


class TestSuiteAndRunner:
    def test_suite_case_ids_unique_and_stable(self):
        cases = build_suite(0.01)
        keys = [c.key for c in cases]
        assert len(keys) == len(set(keys))
        assert build_suite(0.01) == cases  # deterministic construction

    def test_smoke_suite_is_subset(self):
        smoke = {c.key for c in build_suite(0.01, suite="smoke")}
        full = {c.key for c in build_suite(0.01)}
        assert smoke <= full
        assert len(smoke) < len(full)

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            build_suite(0.01, suite="nightly")

    def test_unknown_workload_kind_rejected(self):
        case = SuiteCase(key="x", workload="teleporting", spec=WorkloadSpec(), grid=8)
        with pytest.raises(ValueError):
            case.materialize()

    def test_run_case_metrics_are_deterministic_counters(self):
        case = build_suite(0.002, suite="smoke")[0]
        workload = case.materialize()
        first = run_case(case, workload, "CPM")
        second = run_case(case, workload, "CPM")
        for metric in ("cell_scans", "cell_accesses_per_query_per_ts",
                       "objects_scanned", "results_changed"):
            assert first.metrics[metric] == second.metrics[metric]

    def test_shard_scaling_cases_present(self):
        full = build_suite(0.01)
        smoke = build_suite(0.01, suite="smoke")

        def shards_of(cases, executor, *, partitioned=False):
            return sorted(
                c.shards
                for c in cases
                if c.shards
                and c.executor == executor
                and c.partitioned == partitioned
            )

        assert shards_of(full, "serial") == [1, 2, 4, 8]
        assert shards_of(full, "process") == [1, 2, 4, 8]
        # fault_recovery mirrors the wallclock sweep on the supervised
        # executor (supervision overhead, no faults firing).
        assert shards_of(full, "supervised") == [1, 2, 4, 8]
        # The partitioned tier repeats both sweeps (serial counters,
        # process wall-clock).
        assert shards_of(full, "serial", partitioned=True) == [1, 2, 4, 8]
        assert shards_of(full, "process", partitioned=True) == [1, 2, 4, 8]
        assert shards_of(smoke, "serial") == [1, 4]
        assert shards_of(smoke, "serial", partitioned=True) == [1, 4]
        for case in smoke:
            assert case.executor == "serial"  # smoke stays deterministic
        key_prefix = {
            (False, "serial"): "shard_scaling",
            (False, "process"): "shard_scaling_wallclock",
            (False, "supervised"): "fault_recovery",
            (True, "serial"): "partition_scaling",
            (True, "process"): "partition_scaling_wallclock",
        }
        for case in full:
            if case.shards:
                prefix = key_prefix[(case.partitioned, case.executor)]
                assert case.key == f"{prefix}/S={case.shards}"
                assert case.workload == "network"

    def test_high_density_cases_one_arm_per_backend(self):
        from repro.grid.kernels import available_backends

        expected = {b for b in available_backends() if b != "array"}
        cases = {
            c.key: c for c in build_suite(0.01) if c.key.startswith("high_density/")
        }
        assert set(cases) == {f"high_density/{b}" for b in expected}
        for case in cases.values():
            assert case.backend in expected
            assert not case.shards
            # The point of the family: occupancy well above the scalar
            # grid, so the vector arm's fast path actually engages.
            assert case.grid < build_suite(0.01)[0].grid

    def test_run_case_backend_arm_is_cpm_only_and_records_backend(self):
        case = next(
            c for c in build_suite(0.002) if c.key == "high_density/list"
        )
        workload = case.materialize()
        row = run_case(case, workload, "CPM")
        assert row.params["backend"] == "list"
        assert row.metrics["cell_scans"] > 0

    def test_run_case_partitioned_counter_exact_with_traffic_metrics(self):
        cases = {c.key: c for c in build_suite(0.002, suite="smoke")}
        part = cases["partition_scaling/S=4"]
        single = SuiteCase(
            key="single", workload=part.workload, spec=part.spec, grid=part.grid
        )
        workload = part.materialize()
        single_row = run_case(single, workload, "CPM")
        part_row = run_case(part, workload, "CPM")
        # Counter-exact against the single engine: the partitioned tier
        # reproduces the paper metrics byte-for-byte.
        for metric in ("cell_scans", "cell_accesses_per_query_per_ts",
                       "objects_scanned", "results_changed"):
            assert part_row.metrics[metric] == single_row.metrics[metric]
        # ...plus the partition traffic counters, which gate at 2%.
        for key in ("partition_fanout_rows", "partition_sync_rows",
                    "partition_pulls", "partition_pull_objects",
                    "partition_migrations"):
            assert key in part_row.metrics
        assert part_row.metrics["partition_sync_rows"] > 0
        assert part_row.params["partitioned"] is True
        assert "partition_fanout_rows" not in single_row.metrics

    def test_micro_bench_rows(self):
        from repro.perf.micro import render_micro, run_micro

        rows = run_micro((4, 8), repeats=1)
        assert [row["n_objects"] for row in rows] == [4, 8]
        for row in rows:
            assert row["dict_ns_per_object"] > 0
            assert row["columnar_ns_per_object"] > 0
            assert row["fused_ns_per_object"] > 0
            assert row["speedup"] > 0
        rendered = render_micro(rows)
        assert "objects/cell" in rendered and "fused" in rendered

    def test_wallclock_case_records_only_wall_metrics(self):
        case = next(
            c for c in build_suite(0.002) if c.shards and c.executor == "process"
        )
        workload = case.materialize()
        row = run_case(case, workload, "CPM")
        assert row.params["executor"] == "process"
        assert sorted(row.metrics) == sorted(
            ("wall_sec", "process_sec", "install_sec")
        )
        # The reduced metric set round-trips through the schema validator.
        report = BenchReport(scale=0.002, suite="full", repeats=1)
        report.cases.append(row)
        restored = BenchReport.from_dict(report.to_dict())
        assert restored.cases[0].metrics == row.metrics

    def test_shard_case_runs_sharded_monitor(self):
        case = next(c for c in build_suite(0.002, suite="smoke") if c.shards)
        workload = case.materialize()
        row = run_case(case, workload, "CPM")
        assert row.case_id == f"{case.key}/CPM"
        assert row.params["shards"] == case.shards
        # Deterministic counters match the plain-CPM replay of the same
        # workload: the service layer partitions the search work, it does
        # not duplicate it.
        plain = SuiteCase(
            key="plain", workload=case.workload, spec=case.spec, grid=case.grid
        )
        ref = run_case(plain, workload, "CPM")
        assert row.metrics["cell_scans"] == ref.metrics["cell_scans"]
        assert row.metrics["results_changed"] == ref.metrics["results_changed"]

    def test_subscription_routing_case_matches_plain_counters(self):
        """The delta-streaming replay must not change a single grid
        counter, and its delivered-delta count must be deterministic."""
        case = next(
            c for c in build_suite(0.002, suite="smoke") if c.subscribed
        )
        workload = case.materialize()
        row = run_case(case, workload, "CPM")
        assert row.params["subscribed"] is True
        assert row.params["watched_queries"] >= 1
        assert row.metrics["deltas_delivered"] > 0
        again = run_case(case, workload, "CPM")
        assert row.metrics["deltas_delivered"] == again.metrics["deltas_delivered"]
        plain = SuiteCase(
            key="plain", workload=case.workload, spec=case.spec, grid=case.grid
        )
        ref = run_case(plain, workload, "CPM")
        for metric in ("cell_scans", "cell_accesses_per_query_per_ts",
                       "objects_scanned", "results_changed"):
            assert row.metrics[metric] == ref.metrics[metric], metric

    def test_subscription_routing_in_both_suites(self):
        for suite in ("smoke", "full"):
            keys = [c.key for c in build_suite(0.01, suite=suite)]
            assert "subscription_routing/default" in keys

    def test_shard_cases_run_only_cpm(self):
        report = run_suite(0.002, suite="smoke")
        shard_rows = [c for c in report.cases if c.params.get("shards")]
        assert shard_rows
        assert {c.algorithm for c in shard_rows} == {"CPM"}

    def test_run_suite_covers_all_algorithms(self):
        report = run_suite(0.002, suite="smoke", algorithms=("CPM",))
        assert report.cases
        assert {c.algorithm for c in report.cases} == {"CPM"}
        # Serializes cleanly through the schema layer.
        assert BenchReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        ).case_ids() == report.case_ids()


def bare_workload(n_objects=5, n_queries=0, timestamps=0):
    spec = WorkloadSpec(
        n_objects=n_objects, n_queries=n_queries, timestamps=timestamps, seed=3
    )
    return Workload(
        spec=spec,
        initial_objects={oid: (0.15 * (oid + 1), 0.4) for oid in range(n_objects)},
        initial_queries={10**9 + i: (0.5, 0.5) for i in range(n_queries)},
        batches=[UpdateBatch(timestamp=t) for t in range(timestamps)],
    )


class TestReplayEdges:
    def test_zero_queries_zero_timestamps(self):
        """The truly empty workload: nothing to install, nothing to replay."""
        report = replay_workload(CPMMonitor(cells_per_axis=8), bare_workload())
        assert report.n_queries == 0
        assert report.timestamps == 0
        assert report.total_cell_scans == 0
        assert report.cell_accesses_per_query_per_timestamp == 0.0
        assert report.mean_cycle_sec == 0.0

    def test_zero_queries_with_batches(self):
        report = replay_workload(
            CPMMonitor(cells_per_axis=8), bare_workload(timestamps=4)
        )
        assert report.timestamps == 4
        assert report.total_results_changed == 0
        assert report.cell_accesses_per_query_per_timestamp == 0.0

    def test_zero_queries_result_log_is_empty_tables(self):
        log: list = []
        replay_workload(
            CPMMonitor(cells_per_axis=8),
            bare_workload(timestamps=2),
            collect_results=True,
            result_log=log,
        )
        assert log == [{}, {}, {}]

    def test_empty_workload_summary_keys(self):
        report = replay_workload(CPMMonitor(cells_per_axis=8), bare_workload())
        summary = report.summary()
        assert summary["cell_scans"] == 0.0
        assert summary["cpu_sec"] == 0.0
        assert set(summary) >= {"cpu_sec", "cell_scans", "install_sec"}
