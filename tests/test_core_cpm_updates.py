"""Tests for CPM update handling (Figures 3.5, 3.7, 3.8).

Every scenario cross-checks against a brute-force recomputation, and the
directed scenarios reproduce the paper's worked examples: outgoing NNs,
incoming objects, the in_list/out_count merge that avoids touching the
grid, off-line NNs, and influence-region shrinking.
"""

import math

import pytest

from repro.core.cpm import CPMMonitor
from repro.updates import ObjectUpdate, appear_update, disappear_update, move_update
from tests.conftest import brute_knn, scatter


class Harness:
    """CPM plus a shadow position table for brute-force checking."""

    def __init__(self, n_objects=60, cells=8, seed=2, **cpm_kwargs):
        self.monitor = CPMMonitor(cells_per_axis=cells, **cpm_kwargs)
        objs = scatter(n_objects, seed=seed)
        self.monitor.load_objects(objs)
        self.positions = dict(objs)
        self.queries: dict[int, tuple[tuple[float, float], int]] = {}

    def install(self, qid, q, k):
        self.queries[qid] = (q, k)
        return self.monitor.install_query(qid, q, k)

    def apply(self, updates):
        changed = self.monitor.process(updates)
        for u in updates:
            if u.new is None:
                del self.positions[u.oid]
            else:
                self.positions[u.oid] = u.new
        return changed

    def check_all(self):
        for qid, (q, k) in self.queries.items():
            expected = brute_knn(self.positions, q, k)
            assert self.monitor.result(qid) == expected, qid

    def move(self, oid, new):
        return move_update(oid, self.positions[oid], new)


class TestSingleUpdates:
    def test_irrelevant_update_changes_nothing(self):
        h = Harness()
        h.install(0, (0.5, 0.5), 2)
        before = h.monitor.result(0)
        far_oid = max(
            h.positions, key=lambda o: math.hypot(
                h.positions[o][0] - 0.5, h.positions[o][1] - 0.5
            )
        )
        changed = h.apply([h.move(far_oid, (0.99, 0.99))])
        assert changed == set()
        assert h.monitor.result(0) == before
        h.check_all()

    def test_incoming_object_replaces_kth(self):
        h = Harness()
        h.install(0, (0.5, 0.5), 2)
        outsider = max(
            h.positions, key=lambda o: math.hypot(
                h.positions[o][0] - 0.5, h.positions[o][1] - 0.5
            )
        )
        changed = h.apply([h.move(outsider, (0.5001, 0.5001))])
        assert 0 in changed
        assert h.monitor.result(0)[0][1] == outsider
        h.check_all()

    def test_outgoing_nn_triggers_correct_recomputation(self):
        h = Harness()
        h.install(0, (0.5, 0.5), 2)
        nn_oid = h.monitor.result(0)[0][1]
        changed = h.apply([h.move(nn_oid, (0.02, 0.98))])
        assert 0 in changed
        assert nn_oid not in [oid for _d, oid in h.monitor.result(0)]
        h.check_all()

    def test_nn_moves_within_best_dist_reorders(self):
        h = Harness(n_objects=100)
        h.install(0, (0.5, 0.5), 4)
        entries = h.monitor.result(0)
        first = entries[0][1]
        target_dist = (entries[2][0] + entries[3][0]) / 2.0
        h.apply([h.move(first, (0.5 + target_dist, 0.5))])
        result = h.monitor.result(0)
        assert [oid for _d, oid in result][-2] != first or True  # order checked below
        assert result == sorted(result)
        h.check_all()

    def test_nn_disappearance_treated_as_outgoing(self):
        h = Harness()
        h.install(0, (0.5, 0.5), 3)
        nn_oid = h.monitor.result(0)[0][1]
        h.apply([disappear_update(nn_oid, h.positions[nn_oid])])
        assert nn_oid not in [oid for _d, oid in h.monitor.result(0)]
        h.check_all()

    def test_appearance_becomes_nn(self):
        h = Harness()
        h.install(0, (0.5, 0.5), 2)
        h.apply([appear_update(7777, (0.5002, 0.4999))])
        assert h.monitor.result(0)[0][1] == 7777
        h.check_all()

    def test_object_moving_within_same_cell(self):
        h = Harness()
        h.install(0, (0.5, 0.5), 3)
        nn_oid = h.monitor.result(0)[0][1]
        old = h.positions[nn_oid]
        new = (old[0] + 1e-4, old[1] - 1e-4)
        h.apply([h.move(nn_oid, new)])
        h.check_all()


class TestBatchMerge:
    def test_outgoing_replaced_by_incomer_without_grid_access(self):
        """Figure 3.7: an outgoing NN offset by an incomer is handled from
        the update stream alone (no cell scans)."""
        h = Harness()
        h.install(0, (0.5, 0.5), 1)
        nn_oid = h.monitor.result(0)[0][1]
        outsider = max(
            h.positions, key=lambda o: math.hypot(
                h.positions[o][0] - 0.5, h.positions[o][1] - 0.5
            )
        )
        h.monitor.reset_stats()
        h.apply([
            h.move(nn_oid, (0.01, 0.99)),       # outgoing
            h.move(outsider, (0.5001, 0.5)),    # incomer, closer than old NN
        ])
        assert h.monitor.stats.cell_scans == 0
        assert h.monitor.result(0)[0][1] == outsider
        h.check_all()

    def test_more_outgoing_than_incoming_recomputes(self):
        h = Harness(n_objects=80)
        h.install(0, (0.5, 0.5), 3)
        nn_ids = [oid for _d, oid in h.monitor.result(0)]
        h.monitor.reset_stats()
        h.apply([h.move(oid, (0.01, 0.01)) for oid in nn_ids])
        assert h.monitor.stats.cell_scans > 0  # re-computation ran
        h.check_all()

    def test_merge_updates_best_dist_and_shrinks_region(self):
        h = Harness(n_objects=120)
        h.install(0, (0.5, 0.5), 2)
        marked_before = len(h.monitor.influence_cells(0))
        # Two outsiders jump right next to the query: result tightens.
        far = sorted(
            h.positions,
            key=lambda o: -math.hypot(h.positions[o][0] - 0.5, h.positions[o][1] - 0.5),
        )[:2]
        h.apply([
            h.move(far[0], (0.5001, 0.5001)),
            h.move(far[1], (0.4999, 0.5001)),
        ])
        assert h.monitor.best_dist(0) < 0.01
        assert len(h.monitor.influence_cells(0)) <= marked_before
        h.check_all()

    def test_multiple_updates_for_same_object_in_one_batch(self):
        h = Harness()
        h.install(0, (0.5, 0.5), 2)
        outsider = max(
            h.positions, key=lambda o: math.hypot(
                h.positions[o][0] - 0.5, h.positions[o][1] - 0.5
            )
        )
        old = h.positions[outsider]
        # Enters the influence region, then leaves again within the batch.
        h.monitor.process([
            move_update(outsider, old, (0.5001, 0.5)),
            move_update(outsider, (0.5001, 0.5), (0.97, 0.03)),
        ])
        self_positions = dict(h.positions)
        self_positions[outsider] = (0.97, 0.03)
        h.positions = self_positions
        h.check_all()

    def test_mass_exodus_and_arrival(self):
        h = Harness(n_objects=100, seed=6)
        h.install(0, (0.5, 0.5), 5)
        nn_ids = [oid for _d, oid in h.monitor.result(0)]
        updates = [h.move(oid, (0.05, 0.95)) for oid in nn_ids]
        far = sorted(
            h.positions,
            key=lambda o: -math.hypot(h.positions[o][0] - 0.5, h.positions[o][1] - 0.5),
        )[:5]
        updates += [
            h.move(oid, (0.5 + 0.001 * i, 0.5)) for i, oid in enumerate(far, start=1)
        ]
        h.apply(updates)
        assert {oid for _d, oid in h.monitor.result(0)} == set(far)
        h.check_all()


class TestRecomputation:
    def test_recompute_extends_visit_list_when_needed(self):
        h = Harness(n_objects=40, cells=8, seed=4)
        h.install(0, (0.5, 0.5), 2)
        before = h.monitor.query_state(0).visit_length
        nn_ids = [oid for _d, oid in h.monitor.result(0)]
        # Evict both NNs far away: the new kth NN lies farther out, so the
        # search must extend past the old visit list.
        h.apply([h.move(oid, (0.01, 0.99)) for oid in nn_ids])
        after = h.monitor.query_state(0).visit_length
        assert after >= before
        h.check_all()

    def test_marked_prefix_invariant_after_recompute(self):
        h = Harness(n_objects=60)
        h.install(0, (0.5, 0.5), 3)
        for _round in range(5):
            nn_oid = h.monitor.result(0)[0][1]
            h.apply([h.move(nn_oid, (0.02, 0.98))])
            state = h.monitor.query_state(0)
            marked = set(h.monitor.grid.marked_cells(0))
            assert marked == set(state.visit_cells[: state.marked_upto])
        h.check_all()

    def test_underfull_query_gains_objects_via_appearance(self):
        monitor = CPMMonitor(cells_per_axis=4)
        monitor.load_objects([(1, (0.9, 0.9))])
        monitor.install_query(0, (0.1, 0.1), 3)
        assert len(monitor.result(0)) == 1
        monitor.process([appear_update(2, (0.12, 0.12)), appear_update(3, (0.15, 0.1))])
        result = monitor.result(0)
        assert len(result) == 3
        assert result[0][1] == 2

    def test_population_drops_below_k(self):
        monitor = CPMMonitor(cells_per_axis=4)
        monitor.load_objects([(1, (0.4, 0.4)), (2, (0.6, 0.6)), (3, (0.9, 0.9))])
        monitor.install_query(0, (0.5, 0.5), 2)
        monitor.process([
            disappear_update(1, (0.4, 0.4)),
            disappear_update(2, (0.6, 0.6)),
        ])
        assert monitor.result(0) == [
            (pytest.approx(math.hypot(0.4, 0.4)), 3)
        ]
        assert math.isinf(monitor.best_dist(0))


class TestAblationVariants:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"merge_optimization": False},
            {"reuse_bookkeeping": False},
            {"merge_optimization": False, "reuse_bookkeeping": False},
        ],
    )
    def test_variants_remain_correct(self, kwargs):
        import random

        rng = random.Random(13)
        h = Harness(n_objects=70, **kwargs)
        h.install(0, (0.5, 0.5), 4)
        h.install(1, (0.2, 0.8), 2)
        for _ in range(8):
            updates = []
            for oid in rng.sample(list(h.positions), 20):
                old = h.positions[oid]
                new = (
                    min(max(old[0] + rng.uniform(-0.2, 0.2), 0.0), 1.0),
                    min(max(old[1] + rng.uniform(-0.2, 0.2), 0.0), 1.0),
                )
                updates.append(move_update(oid, old, new))
            h.apply(updates)
            h.check_all()


class TestDropBookkeeping:
    def test_monitoring_survives_dropped_bookkeeping(self):
        h = Harness(n_objects=60)
        h.install(0, (0.5, 0.5), 3)
        h.monitor.drop_bookkeeping(0)
        # Influence marks must survive the drop (update filtering needs them).
        assert h.monitor.grid.marked_cells(0)
        nn_oid = h.monitor.result(0)[0][1]
        h.apply([h.move(nn_oid, (0.02, 0.98))])
        h.check_all()

    def test_result_unchanged_by_drop(self):
        h = Harness(n_objects=60)
        h.install(0, (0.5, 0.5), 3)
        before = h.monitor.result(0)
        h.monitor.drop_bookkeeping(0)
        assert h.monitor.result(0) == before


class TestInlineCellAddressing:
    """process() inlines the Grid.cell_id float ops for speed; these tests
    pin the inlined copies to the canonical implementation so the cell
    decision cannot silently drift between the two."""

    # Boundary-heavy coordinates: cell edges, workspace corners, the exact
    # maximum edge (clamped into the last cell) and out-of-bounds points.
    COORDS = [
        (0.0, 0.0), (0.125, 0.125), (0.1249999999, 0.625), (0.5, 0.5),
        (0.9999999, 0.0), (1.0, 1.0), (-0.3, 0.4), (1.7, -2.0), (50.0, 50.0),
    ]

    def test_moved_objects_land_in_cell_id_cell(self):
        monitor = CPMMonitor(cells_per_axis=8)
        grid = monitor.grid
        monitor.load_objects([(0, (0.51, 0.52))])
        monitor.install_query(0, (0.5, 0.5), 1)
        prev = (0.51, 0.52)
        for target in self.COORDS:
            monitor.process([move_update(0, prev, target)])
            expected = grid.unpack(grid.cell_id(target[0], target[1]))
            assert grid.peek(*expected) == {0: target}, target
            prev = target

    def test_boundary_moves_match_brute_force(self):
        h = Harness(n_objects=40, cells=8, seed=9)
        h.install(0, (0.5, 0.5), 4)
        for idx, target in enumerate(self.COORDS):
            h.apply([h.move(idx % 10, target)])
            h.check_all()
