"""Unit tests for repro.updates (the update-stream vocabulary)."""

from array import array

import pytest

from repro.updates import (
    FlatUpdateBatch,
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
    UpdateBatch,
    appear_update,
    disappear_update,
    move_update,
)


class TestObjectUpdate:
    def test_move(self):
        u = move_update(1, (0.1, 0.2), (0.3, 0.4))
        assert not u.is_appearance
        assert not u.is_disappearance

    def test_appearance(self):
        u = appear_update(1, (0.3, 0.4))
        assert u.is_appearance
        assert not u.is_disappearance
        assert u.old is None

    def test_disappearance(self):
        u = disappear_update(1, (0.1, 0.2))
        assert u.is_disappearance
        assert u.new is None

    def test_both_none_invalid(self):
        with pytest.raises(ValueError):
            ObjectUpdate(1, None, None)

    def test_frozen(self):
        u = move_update(1, (0.1, 0.2), (0.3, 0.4))
        with pytest.raises(AttributeError):
            u.oid = 2


class TestQueryUpdate:
    def test_insert_requires_point(self):
        with pytest.raises(ValueError):
            QueryUpdate(1, QueryUpdateKind.INSERT)

    def test_move_requires_point(self):
        with pytest.raises(ValueError):
            QueryUpdate(1, QueryUpdateKind.MOVE)

    def test_terminate_needs_no_point(self):
        u = QueryUpdate(1, QueryUpdateKind.TERMINATE)
        assert u.point is None

    def test_kinds(self):
        assert {k.value for k in QueryUpdateKind} == {"insert", "move", "terminate"}


class TestUpdateBatch:
    def test_size(self):
        batch = UpdateBatch(
            timestamp=3,
            object_updates=(move_update(1, (0, 0), (1, 1)),),
            query_updates=(QueryUpdate(9, QueryUpdateKind.TERMINATE),),
        )
        assert batch.size == 2
        assert batch.timestamp == 3

    def test_empty_batch(self):
        batch = UpdateBatch(timestamp=0)
        assert batch.size == 0
        assert batch.object_updates == ()
        assert batch.query_updates == ()


class TestFlatUpdateBatch:
    def _mixed_updates(self):
        return (
            move_update(1, (0.1, 0.2), (0.3, 0.4)),
            appear_update(2, (0.5, 0.6)),
            disappear_update(3, (0.7, 0.8)),
            move_update(4, (0.0, 0.0), (1.0, 1.0)),
        )

    def test_round_trip_is_lossless_and_order_preserving(self):
        updates = self._mixed_updates()
        qus = (QueryUpdate(9, QueryUpdateKind.TERMINATE),)
        flat = FlatUpdateBatch.from_updates(updates, qus, timestamp=7)
        assert flat.to_object_updates() == updates
        assert flat.timestamp == 7
        assert flat.query_updates == qus
        assert len(flat) == 4
        assert flat.size == 5

    def test_batch_round_trip(self):
        batch = UpdateBatch(
            timestamp=3,
            object_updates=self._mixed_updates(),
            query_updates=(QueryUpdate(9, QueryUpdateKind.INSERT, (0.5, 0.5), 2),),
        )
        assert FlatUpdateBatch.from_batch(batch).to_batch() == batch

    def test_masks_pack_as_bytes(self):
        flat = FlatUpdateBatch.from_updates(self._mixed_updates())
        assert flat.appear == bytearray([False, True, False, False])
        assert flat.disappear == bytearray([False, False, True, False])
        assert flat.oids == array("q", [1, 2, 3, 4])
        assert flat.new_xs == array("d", [0.3, 0.5, 0.0, 1.0])
        assert flat.old_xs == array("d", [0.1, 0.0, 0.7, 0.0])

    def test_list_columns_are_coerced_to_buffers(self):
        flat = FlatUpdateBatch(
            timestamp=0,
            oids=[1],
            old_xs=[0.1],
            old_ys=[0.2],
            new_xs=[0.3],
            new_ys=[0.4],
            appear=[False],
            disappear=[False],
        )
        assert type(flat.oids) is array and flat.oids.typecode == "q"
        assert type(flat.new_xs) is array and flat.new_xs.typecode == "d"
        assert type(flat.appear) is bytearray
        assert flat.to_object_updates() == (move_update(1, (0.1, 0.2), (0.3, 0.4)),)

    def test_column_bytes_round_trip(self):
        qus = (QueryUpdate(9, QueryUpdateKind.TERMINATE),)
        flat = FlatUpdateBatch.from_updates(self._mixed_updates(), qus, timestamp=5)
        packed = b"".join(flat.column_buffers())
        assert len(packed) == 42 * len(flat)
        back = FlatUpdateBatch.from_column_bytes(
            len(flat), packed, timestamp=5, query_updates=qus
        )
        assert back == flat

    def test_append_helpers(self):
        flat = FlatUpdateBatch(timestamp=0)
        flat.append_move(1, 0.1, 0.2, 0.3, 0.4)
        flat.append_appear(2, 0.5, 0.6)
        flat.append_disappear(3, 0.7, 0.8)
        assert flat.to_object_updates() == (
            move_update(1, (0.1, 0.2), (0.3, 0.4)),
            appear_update(2, (0.5, 0.6)),
            disappear_update(3, (0.7, 0.8)),
        )

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FlatUpdateBatch(timestamp=0, oids=[1], new_xs=[0.1])
