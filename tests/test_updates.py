"""Unit tests for repro.updates (the update-stream vocabulary)."""

import pytest

from repro.updates import (
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
    UpdateBatch,
    appear_update,
    disappear_update,
    move_update,
)


class TestObjectUpdate:
    def test_move(self):
        u = move_update(1, (0.1, 0.2), (0.3, 0.4))
        assert not u.is_appearance
        assert not u.is_disappearance

    def test_appearance(self):
        u = appear_update(1, (0.3, 0.4))
        assert u.is_appearance
        assert not u.is_disappearance
        assert u.old is None

    def test_disappearance(self):
        u = disappear_update(1, (0.1, 0.2))
        assert u.is_disappearance
        assert u.new is None

    def test_both_none_invalid(self):
        with pytest.raises(ValueError):
            ObjectUpdate(1, None, None)

    def test_frozen(self):
        u = move_update(1, (0.1, 0.2), (0.3, 0.4))
        with pytest.raises(AttributeError):
            u.oid = 2


class TestQueryUpdate:
    def test_insert_requires_point(self):
        with pytest.raises(ValueError):
            QueryUpdate(1, QueryUpdateKind.INSERT)

    def test_move_requires_point(self):
        with pytest.raises(ValueError):
            QueryUpdate(1, QueryUpdateKind.MOVE)

    def test_terminate_needs_no_point(self):
        u = QueryUpdate(1, QueryUpdateKind.TERMINATE)
        assert u.point is None

    def test_kinds(self):
        assert {k.value for k in QueryUpdateKind} == {"insert", "move", "terminate"}


class TestUpdateBatch:
    def test_size(self):
        batch = UpdateBatch(
            timestamp=3,
            object_updates=(move_update(1, (0, 0), (1, 1)),),
            query_updates=(QueryUpdate(9, QueryUpdateKind.TERMINATE),),
        )
        assert batch.size == 2
        assert batch.timestamp == 3

    def test_empty_batch(self):
        batch = UpdateBatch(timestamp=0)
        assert batch.size == 0
        assert batch.object_updates == ()
        assert batch.query_updates == ()
