"""Unit tests for repro.grid.cell addressing and repro.grid.stats counters."""

import pytest

from repro.grid.cell import cell_bounds, cell_index
from repro.grid.stats import GridStats


class TestCellIndex:
    def test_basic(self):
        assert cell_index(0.0, 0.0, 0.25, 4) == 0
        assert cell_index(0.26, 0.0, 0.25, 4) == 1
        assert cell_index(0.99, 0.0, 0.25, 4) == 3

    def test_half_open_convention(self):
        # Exactly on an internal boundary belongs to the upper cell.
        assert cell_index(0.25, 0.0, 0.25, 4) == 1
        assert cell_index(0.5, 0.0, 0.25, 4) == 2

    def test_max_edge_clamped(self):
        assert cell_index(1.0, 0.0, 0.25, 4) == 3

    def test_below_origin_clamped(self):
        assert cell_index(-0.7, 0.0, 0.25, 4) == 0

    def test_origin_offset(self):
        assert cell_index(2.6, 2.0, 0.25, 4) == 2


class TestCellBounds:
    def test_basic(self):
        assert cell_bounds(0, 0, 0.0, 0.0, 0.25) == pytest.approx(
            (0.0, 0.0, 0.25, 0.25)
        )

    def test_offset_origin(self):
        assert cell_bounds(2, 1, 10.0, 20.0, 0.5) == pytest.approx(
            (11.0, 20.5, 11.5, 21.0)
        )

    def test_roundtrip_with_index(self):
        # The midpoint of a cell's bounds maps back to the same cell.
        for i in range(4):
            x0, _y0, x1, _y1 = cell_bounds(i, 0, 0.0, 0.0, 0.25)
            assert cell_index((x0 + x1) / 2, 0.0, 0.25, 4) == i


class TestGridStats:
    def test_initial_zero(self):
        stats = GridStats()
        assert stats.cell_scans == 0
        assert stats.objects_scanned == 0
        assert stats.inserts == 0
        assert stats.deletes == 0
        assert stats.mark_ops == 0

    def test_reset(self):
        stats = GridStats(cell_scans=5, objects_scanned=9, inserts=1, deletes=2, mark_ops=3)
        stats.reset()
        assert stats == GridStats()

    def test_snapshot_is_independent(self):
        stats = GridStats(cell_scans=5)
        snap = stats.snapshot()
        stats.cell_scans = 50
        assert snap.cell_scans == 5

    def test_diff(self):
        earlier = GridStats(cell_scans=5, objects_scanned=10)
        later = GridStats(cell_scans=12, objects_scanned=40)
        d = later.diff(earlier)
        assert d.cell_scans == 7
        assert d.objects_scanned == 30

    def test_merged(self):
        a = GridStats(cell_scans=2, inserts=1)
        b = GridStats(cell_scans=3, deletes=4)
        m = a.merged(b)
        assert m.cell_scans == 5
        assert m.inserts == 1
        assert m.deletes == 4
