"""Unit tests for the async fan-out tier (:class:`FanoutQueue`).

The contract under test: ``put`` never blocks the producer, the writer
thread delivers in FIFO order, and a stalled consumer triggers an
explicit slow-consumer policy — DISCONNECT (break the queue, fire the
close hook once) or DROP_AND_SNAPSHOT (shed droppable items, deliver a
single coalesced lag marker, keep control frames intact and ordered).
"""

import threading
import time

import pytest

from repro.service.subscriptions import FanoutQueue, SlowConsumerPolicy


class Gate:
    """A deliver callable that can be blocked and records everything."""

    def __init__(self):
        self.items = []
        self._open = threading.Event()
        self._open.set()
        self.entered = threading.Event()

    def __call__(self, item):
        self.entered.set()
        self._open.wait(timeout=10.0)
        self.items.append(item)

    def block(self):
        self._open.clear()

    def unblock(self):
        self._open.set()


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestBasics:
    def test_delivers_in_fifo_order(self):
        gate = Gate()
        q = FanoutQueue(gate, limit=64)
        for i in range(20):
            assert q.put(i)
        assert q.join(timeout=5.0)
        assert gate.items == list(range(20))
        assert q.delivered == 20
        q.close()

    def test_put_after_close_returns_false(self):
        gate = Gate()
        q = FanoutQueue(gate, limit=4)
        q.close()
        assert q.put("late") is False

    def test_close_with_flush_delivers_the_backlog(self):
        gate = Gate()
        gate.block()
        q = FanoutQueue(gate, limit=64)
        for i in range(5):
            q.put(i)
        gate.unblock()
        q.close(flush=True)
        assert gate.items == list(range(5))

    def test_limit_validation(self):
        with pytest.raises(ValueError, match="limit"):
            FanoutQueue(lambda item: None, limit=0)

    def test_drop_policy_requires_lag_factory(self):
        with pytest.raises(ValueError, match="lag_factory"):
            FanoutQueue(
                lambda item: None,
                policy=SlowConsumerPolicy.DROP_AND_SNAPSHOT,
            )

    def test_join_waits_for_the_inflight_item(self):
        """join must not report drained while an item sits inside
        deliver (popped from the queue but not yet on the wire)."""
        gate = Gate()
        q = FanoutQueue(gate, limit=8)
        gate.block()
        q.put("slow")
        assert gate.entered.wait(timeout=5.0)

        def release():
            time.sleep(0.05)
            gate.unblock()

        threading.Thread(target=release, daemon=True).start()
        assert q.join(timeout=5.0)
        assert gate.items == ["slow"]
        q.close()


class TestDisconnectPolicy:
    def test_overflow_breaks_queue_and_fires_hook_once(self):
        gate = Gate()
        gate.block()
        hooks = []
        q = FanoutQueue(
            gate,
            limit=4,
            policy=SlowConsumerPolicy.DISCONNECT,
            on_overflow=lambda: hooks.append(1),
        )
        # One item enters deliver and blocks; the limit then applies to
        # what queues up behind it.
        q.put("head")
        assert gate.entered.wait(timeout=5.0)
        accepted = sum(1 for i in range(10) if q.put(i))
        assert accepted < 10
        assert q.broken
        assert hooks == [1]
        assert q.overflows == 1
        # Broken queue refuses everything, without re-firing the hook.
        assert q.put("after") is False
        assert hooks == [1]
        gate.unblock()
        q.close(flush=False)

    def test_producer_is_never_blocked_by_a_stalled_consumer(self):
        gate = Gate()
        gate.block()
        q = FanoutQueue(gate, limit=2, policy=SlowConsumerPolicy.DISCONNECT)
        start = time.monotonic()
        for i in range(100):
            q.put(i)
        elapsed = time.monotonic() - start
        assert elapsed < 1.0
        gate.unblock()
        q.close(flush=False)


class TestDropAndSnapshotPolicy:
    def make(self, gate, limit=4):
        return FanoutQueue(
            gate,
            limit=limit,
            policy=SlowConsumerPolicy.DROP_AND_SNAPSHOT,
            lag_factory=lambda dropped: ("lagged", dropped),
        )

    def test_droppables_shed_and_coalesced_into_one_lag_marker(self):
        gate = Gate()
        gate.block()
        q = self.make(gate, limit=4)
        q.put("head")  # enters deliver and stalls there
        assert gate.entered.wait(timeout=5.0)
        for i in range(12):
            assert q.put(("delta", i), droppable=True)
        gate.unblock()
        assert q.join(timeout=5.0)
        q.close()

        assert gate.items[0] == "head"
        lag_frames = [x for x in gate.items if x[0] == "lagged"]
        delta_frames = [x for x in gate.items if x[0] == "delta"]
        # Every delta was either delivered or counted in a lag marker.
        assert sum(n for _, n in lag_frames) + len(delta_frames) == 12
        assert q.dropped == sum(n for _, n in lag_frames)
        assert q.dropped > 0
        # Back-to-back overflows coalesce: one marker per stall window,
        # and a marker is never followed by another marker directly.
        for a, b in zip(gate.items, gate.items[1:]):
            assert not (a[0] == "lagged" and b[0] == "lagged")

    def test_control_frames_survive_overflow_in_order(self):
        gate = Gate()
        gate.block()
        q = self.make(gate, limit=4)
        q.put("head")
        assert gate.entered.wait(timeout=5.0)
        q.put("ctrl0")
        for i in range(8):
            q.put(("delta", i), droppable=True)
        q.put("ctrl1")
        gate.unblock()
        assert q.join(timeout=5.0)
        q.close()
        kept = [x for x in gate.items if isinstance(x, str)]
        assert kept == ["head", "ctrl0", "ctrl1"]
        assert not q.broken

    def test_lag_count_resolves_at_write_time(self):
        """The marker reports everything dropped up to the moment it is
        written, even across multiple overflow events."""
        gate = Gate()
        gate.block()
        q = self.make(gate, limit=2)
        q.put("head")
        assert gate.entered.wait(timeout=5.0)
        for i in range(9):
            q.put(("delta", i), droppable=True)
        gate.unblock()
        assert q.join(timeout=5.0)
        q.close()
        lag_frames = [x for x in gate.items if x[0] == "lagged"]
        assert len(lag_frames) >= 1
        assert sum(n for _, n in lag_frames) == q.dropped


class TestBrokenConsumer:
    def test_deliver_exception_marks_broken(self):
        def explode(item):
            raise ConnectionError("peer gone")

        q = FanoutQueue(explode, limit=8)
        q.put("x")
        assert wait_for(lambda: q.broken)
        assert q.put("y") is False
        q.close(flush=False)
