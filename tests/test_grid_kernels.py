"""Unit tests for the columnar cell store and the pure scan kernels."""

import math

import pytest

from repro.grid.grid import Grid
from repro.grid.kernels import CellColumns, best_k, within, within_nd


class TestCellColumns:
    def test_insert_and_position(self):
        cell = CellColumns()
        cell.insert(7, 0.25, 0.75)
        assert len(cell) == 1
        assert 7 in cell
        assert cell.position(7) == (0.25, 0.75)

    def test_delete_by_swap_moves_last_row(self):
        cell = CellColumns()
        for oid in range(4):
            cell.insert(oid, oid * 0.1, oid * 0.2)
        cell.delete(1)  # row 3 swaps into slot 1
        assert len(cell) == 3
        assert 1 not in cell
        assert cell.position(3) == pytest.approx((0.3, 0.6))
        # Slot invariant: slot[oids[i]] == i for every row.
        assert all(cell.slot[oid] == i for i, oid in enumerate(cell.oids))

    def test_delete_last_row(self):
        cell = CellColumns()
        cell.insert(1, 0.1, 0.1)
        cell.insert(2, 0.2, 0.2)
        cell.delete(2)
        assert cell.oids == [1]
        assert cell.slot == {1: 0}

    def test_delete_missing_raises(self):
        cell = CellColumns()
        with pytest.raises(KeyError):
            cell.delete(5)

    def test_relocate_in_place(self):
        cell = CellColumns()
        cell.insert(1, 0.1, 0.1)
        cell.relocate(1, 0.9, 0.8)
        assert cell.position(1) == (0.9, 0.8)
        assert len(cell) == 1

    def test_as_dict_snapshot(self):
        cell = CellColumns()
        cell.insert(1, 0.1, 0.2)
        cell.insert(2, 0.3, 0.4)
        snapshot = cell.as_dict()
        assert snapshot == {1: (0.1, 0.2), 2: (0.3, 0.4)}
        snapshot[3] = (9.9, 9.9)  # mutating the snapshot is harmless
        assert 3 not in cell

    def test_columns_tuple_is_prebuilt_and_live(self):
        cell = CellColumns()
        columns = cell.columns
        cell.insert(4, 0.5, 0.6)
        assert columns is cell.columns
        assert columns == ([4], [0.5], [0.6])


class TestKernels:
    def _cell(self):
        cell = CellColumns()
        cell.insert(1, 0.0, 0.0)
        cell.insert(2, 0.3, 0.0)
        cell.insert(3, 0.0, 0.6)
        return cell

    def test_within_filters_inclusively(self):
        cell = self._cell()
        hits = within(cell.oids, cell.xs, cell.ys, 0.0, 0.0, 0.3)
        assert sorted(hits) == [(0.0, 1), (0.3, 2)]

    def test_within_infinite_radius_returns_all(self):
        cell = self._cell()
        hits = within(cell.oids, cell.xs, cell.ys, 0.0, 0.0, math.inf)
        assert sorted(oid for _d, oid in hits) == [1, 2, 3]

    def test_best_k_sorted_and_truncated(self):
        cell = self._cell()
        top = best_k(cell.oids, cell.xs, cell.ys, 0.0, 0.0, 2, math.inf)
        assert top == [(0.0, 1), (0.3, 2)]

    def test_best_k_respects_bound(self):
        cell = self._cell()
        top = best_k(cell.oids, cell.xs, cell.ys, 0.0, 0.0, 5, 0.1)
        assert top == [(0.0, 1)]

    def test_within_nd(self):
        oids = [1, 2]
        pts = [(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]
        hits = within_nd(oids, pts, (0.0, 0.0, 0.0), 0.5)
        assert hits == [(0.0, 1)]


class TestGridKernelAccounting:
    """Every kernel front-end charges exactly one cell access."""

    def _grid(self):
        grid = Grid(4)
        grid.insert(1, 0.1, 0.1)
        grid.insert(2, 0.2, 0.1)
        return grid

    @pytest.mark.parametrize(
        "call",
        [
            lambda g, cid: g.scan_within(cid, 0.1, 0.1, math.inf),
            lambda g, cid: g.scan_best_k(cid, 0.1, 0.1, 1),
            lambda g, cid: g.scan_all_flat(cid),
            lambda g, cid: g.scan_id(cid),
        ],
    )
    def test_kernel_charges_one_scan(self, call):
        grid = self._grid()
        cid = grid.cell_id(0.1, 0.1)
        before_scans = grid.stats.cell_scans
        before_objects = grid.stats.objects_scanned
        call(grid, cid)
        assert grid.stats.cell_scans == before_scans + 1
        assert grid.stats.objects_scanned == before_objects + 2

    def test_empty_cell_charges_scan_but_no_objects(self):
        grid = self._grid()
        cid = grid.cell_id(0.9, 0.9)
        grid.stats.reset()
        assert grid.scan_within(cid, 0.5, 0.5, math.inf) == []
        assert grid.scan_all_flat(cid) == ((), (), ())
        assert grid.stats.cell_scans == 2
        assert grid.stats.objects_scanned == 0

    def test_scan_within_matches_scan_id(self):
        grid = self._grid()
        cid = grid.cell_id(0.1, 0.1)
        expected = sorted(
            (math.hypot(x - 0.15, y - 0.15), oid)
            for oid, (x, y) in grid.scan_id(cid).items()
        )
        assert sorted(grid.scan_within(cid, 0.15, 0.15, math.inf)) == expected
