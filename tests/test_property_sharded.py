"""Property-based equivalence: sharded service == single-engine CPM.

Hypothesis generates workload shapes (population, k, agility, speed,
grid granularity, shard count, generator family) and the test asserts the
acceptance criterion of the service-layer refactor: for S ∈ {1, 2, 4} the
sharded monitor produces *byte-identical* per-cycle result tables, changed
sets and delta streams — across random workloads that include query moves
and object appearance/disappearance (fast Brinkhoff objects finish trips
and re-enter).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpm import CPMMonitor
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.sharding import ShardedMonitor

workload_shapes = st.fixed_dictionaries(
    {
        "generator": st.sampled_from(["brinkhoff", "uniform"]),
        "n_objects": st.integers(min_value=30, max_value=120),
        "n_queries": st.integers(min_value=1, max_value=6),
        "k": st.integers(min_value=1, max_value=6),
        "timestamps": st.integers(min_value=1, max_value=6),
        "seed": st.integers(min_value=0, max_value=2**20),
        "object_speed": st.sampled_from(["slow", "medium", "fast"]),
        "query_agility": st.sampled_from([0.0, 0.3, 1.0]),
        "cells": st.sampled_from([4, 8, 16]),
        "n_shards": st.sampled_from([1, 2, 4]),
    }
)


@given(shape=workload_shapes)
@settings(max_examples=25, deadline=None)
def test_sharded_service_is_byte_identical_to_single_engine(shape):
    spec = WorkloadSpec(
        n_objects=shape["n_objects"],
        n_queries=shape["n_queries"],
        k=shape["k"],
        timestamps=shape["timestamps"],
        seed=shape["seed"],
        object_speed=shape["object_speed"],
        query_agility=shape["query_agility"],
    )
    if shape["generator"] == "brinkhoff":
        workload = BrinkhoffGenerator(spec).generate()
    else:
        workload = UniformGenerator(spec).generate()

    cells = shape["cells"]
    single = CPMMonitor(cells_per_axis=cells)
    sharded = ShardedMonitor(shape["n_shards"], cells_per_axis=cells)

    single.load_objects(workload.initial_objects.items())
    sharded.load_objects(workload.initial_objects.items())
    for qid, point in workload.initial_queries.items():
        assert sharded.install_query(qid, point, spec.k) == single.install_query(
            qid, point, spec.k
        )
    assert sharded.result_table() == single.result_table()

    for batch in workload.batches:
        expect_deltas = single.process_deltas(
            batch.object_updates, batch.query_updates
        )
        got_deltas = sharded.process_deltas(
            batch.object_updates, batch.query_updates
        )
        assert got_deltas == expect_deltas, batch.timestamp
        assert sharded.result_table() == single.result_table(), batch.timestamp
        assert sorted(sharded.query_ids()) == sorted(single.query_ids())
        assert sharded.object_count == single.object_count


@given(shape=workload_shapes)
@settings(max_examples=10, deadline=None)
def test_sharded_changed_sets_match_single_engine(shape):
    spec = WorkloadSpec(
        n_objects=shape["n_objects"],
        n_queries=shape["n_queries"],
        k=shape["k"],
        timestamps=shape["timestamps"],
        seed=shape["seed"],
        object_speed=shape["object_speed"],
        query_agility=shape["query_agility"],
    )
    workload = BrinkhoffGenerator(spec).generate()
    cells = shape["cells"]
    single = CPMMonitor(cells_per_axis=cells)
    sharded = ShardedMonitor(shape["n_shards"], cells_per_axis=cells)
    for monitor in (single, sharded):
        monitor.load_objects(workload.initial_objects.items())
        for qid, point in workload.initial_queries.items():
            monitor.install_query(qid, point, spec.k)
    for batch in workload.batches:
        assert sharded.process(
            batch.object_updates, batch.query_updates
        ) == single.process(batch.object_updates, batch.query_updates)
        assert sharded.result_table() == single.result_table()
