"""The telemetry core: registry semantics, Prometheus rendering, scrape.

The invariant the whole tier leans on:
``registry.snapshot() == parse_prometheus(registry.render_prometheus())
== parse_prometheus(scrape over a real socket)`` — one key space shared
by in-process reads, wire ``metrics`` frames and the scrape endpoint.
"""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    render_labels,
)
from repro.obs.scrape import ScrapeServer, parse_prometheus, scrape_text
from repro.obs.trace import TICK_PHASES, SpanRecorder


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("repro_x_total", "help", {})
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("repro_g", "help", {})
        gauge.set(10)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 11

    def test_histogram_buckets_are_cumulative_in_snapshot(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_x_seconds", "help", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)  # beyond the last bound: +Inf only
        snap = registry.snapshot()
        assert snap['repro_x_seconds_bucket{le="0.1"}'] == 1
        assert snap['repro_x_seconds_bucket{le="1"}'] == 2
        assert snap['repro_x_seconds_bucket{le="+Inf"}'] == 3
        assert snap["repro_x_seconds_count"] == 3
        assert snap["repro_x_seconds_sum"] == pytest.approx(5.55)

    def test_render_labels_sorted_and_escaped(self):
        assert render_labels({}) == ""
        assert render_labels({"b": "2", "a": "1"}) == '{a="1",b="2"}'
        assert render_labels({"a": 'x"y\n'}) == '{a="x\\"y\\n"}'


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "help", shard="0")
        second = registry.counter("repro_x_total", "ignored", shard="0")
        assert first is second
        other = registry.counter("repro_x_total", "help", shard="1")
        assert other is not first

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(TypeError):
            registry.gauge("repro_x_total")
        with pytest.raises(TypeError):
            registry.gauge_fn("repro_x_total", lambda: 1)

    def test_gauge_fn_is_lazy_and_replaceable(self):
        registry = MetricsRegistry()
        calls = []

        def probe():
            calls.append(1)
            return 7

        registry.gauge_fn("repro_depth", probe)
        assert not calls, "callable gauge must not evaluate at registration"
        assert registry.snapshot()["repro_depth"] == 7
        assert calls
        # Replace semantics: a restarted component re-registers its probe
        # and the fresh closure wins.
        registry.gauge_fn("repro_depth", lambda: 9)
        assert registry.snapshot()["repro_depth"] == 9

    def test_gauge_fn_failure_reads_zero(self):
        registry = MetricsRegistry()

        def dying():
            raise RuntimeError("component gone")

        registry.gauge_fn("repro_depth", dying)
        assert registry.snapshot()["repro_depth"] == 0

    def test_snapshot_preserves_number_types(self):
        registry = MetricsRegistry()
        registry.counter("repro_n_total").inc(3)
        registry.gauge("repro_ratio").set(0.5)
        snap = registry.snapshot()
        assert type(snap["repro_n_total"]) is int
        assert type(snap["repro_ratio"]) is float

    def test_snapshot_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total")
        registry.counter("repro_a_total")
        assert list(registry.snapshot()) == ["repro_a_total", "repro_b_total"]

    def test_unregister_drops_the_series(self):
        registry = MetricsRegistry()
        registry.gauge_fn("repro_depth", lambda: 1)
        registry.unregister("repro_depth")
        assert "repro_depth" not in registry.snapshot()

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()

    def test_concurrent_creation_yields_one_instrument(self):
        registry = MetricsRegistry()
        instruments = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            instruments.append(registry.counter("repro_x_total"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(map(id, instruments))) == 1


class TestPrometheusRendering:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_ticks_total", "Cycles.").inc(12)
        registry.counter("repro_drops_total", "Drops.", shard="0").inc(2)
        registry.counter("repro_drops_total", "Drops.", shard="1").inc(3)
        registry.gauge("repro_depth", "Depth.").set(4)
        registry.gauge_fn("repro_conns", lambda: 2, "Connections.")
        histogram = registry.histogram(
            "repro_phase_seconds", "Phases.", buckets=(0.01, 0.1), phase="drain"
        )
        histogram.observe(0.005)
        histogram.observe(0.05)
        return registry

    def test_help_and_type_appear_once_per_metric_name(self):
        text = self._populated().render_prometheus()
        assert text.count("# HELP repro_drops_total") == 1
        assert text.count("# TYPE repro_drops_total counter") == 1
        assert text.count("# TYPE repro_depth gauge") == 1
        assert text.count("# TYPE repro_phase_seconds histogram") == 1

    def test_parse_of_render_equals_snapshot(self):
        registry = self._populated()
        assert parse_prometheus(registry.render_prometheus()) == (
            registry.snapshot()
        )

    def test_scrape_over_a_real_socket_matches(self):
        registry = self._populated()
        with ScrapeServer(registry) as server:
            body = scrape_text(server.host, server.port)
            assert parse_prometheus(body) == registry.snapshot()
            assert "# TYPE repro_ticks_total counter" in body
            assert server.scrapes == 1
            # Every connection is one full response; scrape again.
            scrape_text(server.host, server.port)
            assert server.scrapes == 2

    def test_scrape_server_stop_closes_the_listener(self):
        registry = MetricsRegistry()
        server = ScrapeServer(registry)
        host, port = server.start()
        server.stop()
        with pytest.raises(OSError):
            scrape_text(host, port, timeout=0.5)


class TestWindowedRates:
    """Ring-buffered windowed views over counter series."""

    def _clocked(self, horizons=(10.0,)):
        now = [0.0]
        registry = MetricsRegistry()
        registry.enable_windows(horizons, clock=lambda: now[0])
        return registry, now

    def test_windowed_is_the_increase_over_the_trailing_window(self):
        registry, now = self._clocked()
        counter = registry.counter("repro_drops_total", "Drops.")
        registry.record_window_sample()
        counter.inc(5)
        now[0] = 5.0
        registry.record_window_sample()
        counter.inc(3)
        now[0] = 10.0
        assert registry.windowed("repro_drops_total", 10.0) == 8
        # A shorter window diffs against the newer sample.
        assert registry.windowed("repro_drops_total", 5.0) == 3

    def test_windowed_before_any_sample_returns_the_live_value(self):
        registry, _ = self._clocked()
        registry.counter("repro_drops_total", "Drops.").inc(7)
        assert registry.windowed("repro_drops_total", 10.0) == 7

    def test_series_born_mid_window_counts_in_full(self):
        registry, now = self._clocked()
        registry.counter("repro_ticks_total", "Cycles.")
        registry.record_window_sample()
        now[0] = 4.0
        registry.counter("repro_drops_total", "Drops.").inc(2)
        assert registry.windowed("repro_drops_total", 10.0) == 2

    def test_windowed_requires_enable_windows(self):
        registry = MetricsRegistry()
        registry.counter("repro_drops_total", "Drops.")
        with pytest.raises(RuntimeError, match="enable_windows"):
            registry.windowed("repro_drops_total", 10.0)

    def test_windowed_rejects_non_counter_series(self):
        registry, _ = self._clocked()
        registry.gauge("repro_depth", "Depth.").set(3)
        with pytest.raises(KeyError, match="repro_depth"):
            registry.windowed("repro_depth", 10.0)
        with pytest.raises(KeyError):
            registry.windowed("repro_missing_total", 10.0)

    def test_ring_prunes_samples_beyond_the_largest_horizon(self):
        registry, now = self._clocked(horizons=(5.0,))
        counter = registry.counter("repro_drops_total", "Drops.")
        for tick in range(20):
            now[0] = float(tick)
            counter.inc()
            registry.record_window_sample()
        samples = registry._windows.samples
        # One sample may sit at-or-before the horizon edge as baseline.
        assert len(samples) <= 7
        assert registry.windowed("repro_drops_total", 5.0) == 5

    def test_render_exposes_rate_suffix_series(self):
        registry, now = self._clocked()
        registry.counter("repro_drops_total", "Drops.", shard="0").inc(2)
        registry.record_window_sample()
        now[0] = 10.0
        registry.counter("repro_drops_total", "Drops.", shard="0").inc(4)
        text = registry.render_prometheus()
        assert "# TYPE repro_drops_total_rate10s gauge" in text
        assert 'repro_drops_total_rate10s{shard="0"} 4' in text
        # Rendering records a sample, so a scraper keeps the ring fresh.
        assert len(registry._windows.samples) == 2

    def test_render_without_windows_is_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("repro_drops_total", "Drops.").inc(2)
        assert "_rate" not in registry.render_prometheus()
        # snapshot keys stay the wire-frame key space: no rate series.
        assert "repro_drops_total" in registry.snapshot()

    def test_multiple_horizons_render_one_suffix_each(self):
        registry, now = self._clocked(horizons=(5.0, 60.0))
        counter = registry.counter("repro_ticks_total", "Cycles.")
        registry.record_window_sample()
        now[0] = 5.0
        counter.inc(3)
        text = registry.render_prometheus()
        assert "repro_ticks_total_rate5s 3" in text
        assert "repro_ticks_total_rate60s 3" in text

    def test_enable_windows_rejects_non_positive_horizons(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="positive"):
            registry.enable_windows((0.0,))


class TestSpanRecorder:
    def test_records_phases_into_labelled_histograms(self):
        registry = MetricsRegistry()
        recorder = SpanRecorder(registry)
        recorder.record("process", 0.02)
        with recorder.span("drain"):
            pass
        snap = registry.snapshot()
        assert snap['repro_tick_phase_seconds_count{phase="process"}'] == 1
        assert snap['repro_tick_phase_seconds_sum{phase="process"}'] == (
            pytest.approx(0.02)
        )
        assert snap['repro_tick_phase_seconds_count{phase="drain"}'] == 1
        assert recorder.last["process"] == 0.02
        assert recorder.last["drain"] >= 0.0

    def test_every_canonical_phase_has_a_histogram(self):
        registry = MetricsRegistry()
        recorder = SpanRecorder(registry)
        for phase in TICK_PHASES:
            recorder.record(phase, 0.001)
        snap = registry.snapshot()
        for phase in TICK_PHASES:
            assert snap[f'repro_tick_phase_seconds_count{{phase="{phase}"}}'] == 1

    def test_unknown_phase_only_updates_last(self):
        registry = MetricsRegistry()
        recorder = SpanRecorder(registry)
        recorder.record("warp", 1.0)
        assert recorder.last["warp"] == 1.0
        assert not any("warp" in key for key in registry.snapshot())


class TestHistogramDirect:
    def test_observe_costs_are_bisect_based(self):
        histogram = Histogram("repro_h", "help", {}, buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5, 9.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(13.5)
