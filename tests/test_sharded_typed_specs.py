"""Property-based equivalence: typed query specs behave identically on
the sharded service tier and a single CPM engine.

PR 5 left the strategy-backed specs (constrained / range / filtered)
single-engine only; the sharded tier now routes them to the shard owning
the spec's anchor cell while replicating object maintenance (and the tag
table) to every shard.  These tests pin the acceptance criterion: for
S ∈ {1, 2, 4}, installing any typed spec and replaying a moving workload
produces byte-identical results and delta streams on both paths.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.queries import (
    ConstrainedKnnSpec,
    FilteredKnnSpec,
    KnnSpec,
    RangeSpec,
    install_spec,
)
from repro.core.cpm import CPMMonitor
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.executor import ProcessShardExecutor
from repro.service.sharding import ShardedMonitor

finite01 = st.floats(min_value=0.05, max_value=0.95)


def rect(t):
    return (min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3]))


rects = st.tuples(finite01, finite01, finite01, finite01).map(rect)
points = st.tuples(finite01, finite01)
ks = st.integers(min_value=1, max_value=4)

typed_specs = st.one_of(
    st.builds(KnnSpec, point=points, k=ks),
    st.builds(ConstrainedKnnSpec, point=points, region=rects, k=ks),
    st.builds(RangeSpec, region=rects),
    st.builds(
        FilteredKnnSpec,
        point=points,
        k=ks,
        tags=st.sampled_from([("taxi",), ("taxi", "xl"), ("xl",)]),
    ),
)

shapes = st.fixed_dictionaries(
    {
        "specs": st.lists(typed_specs, min_size=1, max_size=4),
        "seed": st.integers(min_value=0, max_value=2**20),
        "n_objects": st.integers(min_value=30, max_value=90),
        "timestamps": st.integers(min_value=1, max_value=4),
        "cells": st.sampled_from([4, 8, 16]),
        "n_shards": st.sampled_from([1, 2, 4]),
    }
)


def build_workload(shape):
    spec = WorkloadSpec(
        n_objects=shape["n_objects"],
        n_queries=1,  # generator queries unused; specs injected below
        k=1,
        timestamps=shape["timestamps"],
        seed=shape["seed"],
        query_agility=0.0,
    )
    return UniformGenerator(spec).generate()


def tags_for(workload):
    return {oid: {"taxi"} if oid % 2 else {"taxi", "xl"}
            for oid in workload.initial_objects if oid % 3}


@given(shape=shapes)
@settings(max_examples=20, deadline=None)
def test_typed_specs_byte_identical_sharded_vs_single(shape):
    workload = build_workload(shape)
    tags = tags_for(workload)

    single = CPMMonitor(cells_per_axis=shape["cells"])
    sharded = ShardedMonitor(shape["n_shards"], cells_per_axis=shape["cells"])
    for monitor in (single, sharded):
        monitor.load_objects(workload.initial_objects.items())
        monitor.set_object_tags(tags)

    for qid, spec in enumerate(shape["specs"], start=1):
        assert install_spec(sharded, qid, spec) == install_spec(
            single, qid, spec
        ), spec
    assert sharded.result_table() == single.result_table()

    for batch in workload.batches:
        expect = single.process_deltas(batch.object_updates, [])
        got = sharded.process_deltas(batch.object_updates, [])
        assert got == expect, batch.timestamp
        assert sharded.result_table() == single.result_table(), batch.timestamp


def test_typed_specs_survive_process_shard_pickling():
    """Strategy-backed specs must install through process-backed shards:
    the filter strategy is pickled engine-state-free and rebinds the
    shard's own tag table on install."""
    shape = {
        "specs": [
            ConstrainedKnnSpec(point=(0.5, 0.5), region=(0.2, 0.2, 0.8, 0.8), k=3),
            RangeSpec(region=(0.3, 0.3, 0.7, 0.7)),
            FilteredKnnSpec(point=(0.5, 0.5), k=3, tags=("taxi",)),
        ],
        "seed": 11,
        "n_objects": 60,
        "timestamps": 3,
        "cells": 8,
        "n_shards": 2,
    }
    workload = build_workload(shape)
    tags = tags_for(workload)

    single = CPMMonitor(cells_per_axis=8)
    sharded = ShardedMonitor(2, cells_per_axis=8, executor=ProcessShardExecutor())
    try:
        for monitor in (single, sharded):
            monitor.load_objects(workload.initial_objects.items())
            monitor.set_object_tags(tags)
        for qid, spec in enumerate(shape["specs"], start=1):
            assert install_spec(sharded, qid, spec) == install_spec(
                single, qid, spec
            ), spec
        for batch in workload.batches:
            assert sharded.process_deltas(
                batch.object_updates, []
            ) == single.process_deltas(batch.object_updates, [])
        assert sharded.result_table() == single.result_table()
    finally:
        sharded.close()
