"""Numeric-backend byte-identity and the shared-memory batch transport.

Every backend ``available_backends()`` reports must be observationally
indistinguishable from the ``list`` reference: same scan results, same
changed sets, same delta streams, same deterministic grid counters — a
backend changes *how* a kernel runs, never what it returns.  The suite
pins that contract three ways:

* hypothesis equivalence — random workload shapes replayed through the
  columnar cycle on every installed backend, compared cycle by cycle
  against the ``list`` reference (results, deltas, counters);
* golden replay — the PR 3 pre-rewrite fixture stream must be reproduced
  byte-identically by every backend, not just the default one;
* kernel-level properties — ``Grid.batch_cell_ids`` (vectorized batch
  addressing) against per-row ``Grid.cell_id``, including the skip mask,
  out-of-bounds clamping and sub-``VEC_MIN_BATCH`` fallback, plus
  ``Grid.move_ids`` against coordinate-addressed ``Grid.move``.

The shared-memory transport rides here too: ``pack_flat_batch`` /
``unpack_flat_batch`` round-trips are property-tested in-process, and a
``ProcessShardExecutor`` forced onto the shm path (``shm_min_rows=1``)
must produce the same results as the serial executor across real worker
processes.
"""

from __future__ import annotations

import json
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sea import SeaCnnMonitor
from repro.baselines.ypk import YpkCnnMonitor
from repro.core.cpm import CPMMonitor
from repro.grid.grid import Grid
from repro.grid.kernels import VEC_MIN_BATCH, available_backends
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.executor import ProcessShardExecutor, SerialShardExecutor
from repro.service.sharding import ShardedMonitor
from repro.service.shm import pack_flat_batch, unpack_flat_batch
from repro.updates import FlatUpdateBatch

BACKENDS = available_backends()
ALT_BACKENDS = tuple(b for b in BACKENDS if b != "list")

ENGINES = {
    "CPM": CPMMonitor,
    "YPK-CNN": YpkCnnMonitor,
    "SEA-CNN": SeaCnnMonitor,
}


def _workload(shape):
    spec = WorkloadSpec(
        n_objects=shape["n_objects"],
        n_queries=shape["n_queries"],
        k=shape["k"],
        timestamps=shape["timestamps"],
        seed=shape["seed"],
        object_speed=shape["object_speed"],
        query_agility=shape["query_agility"],
    )
    return BrinkhoffGenerator(spec).generate()


def _install(monitor, workload):
    monitor.load_objects(sorted(workload.initial_objects.items()))
    for qid, point in sorted(workload.initial_queries.items()):
        monitor.install_query(qid, point, workload.spec.k)


def _counter_tuple(monitor):
    stats = monitor.stats
    return (
        stats.cell_scans,
        stats.objects_scanned,
        stats.inserts,
        stats.deletes,
        stats.mark_ops,
    )


workload_shapes = st.fixed_dictionaries(
    {
        "n_objects": st.integers(min_value=30, max_value=120),
        "n_queries": st.integers(min_value=1, max_value=6),
        "k": st.integers(min_value=1, max_value=6),
        "timestamps": st.integers(min_value=1, max_value=5),
        "seed": st.integers(min_value=0, max_value=2**20),
        "object_speed": st.sampled_from(["slow", "medium", "fast"]),
        "query_agility": st.sampled_from([0.0, 0.3]),
        "cells": st.sampled_from([4, 8, 16]),
    }
)


# ----------------------------------------------------------------------
# Backend equivalence: replayed streams must match the list reference
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ALT_BACKENDS)
@pytest.mark.parametrize("engine", sorted(ENGINES))
@given(shape=workload_shapes)
@settings(max_examples=10, deadline=None)
def test_backend_replay_matches_list_reference(backend, engine, shape):
    """Changed sets, full delta streams and deterministic counters of the
    columnar cycle are byte-identical across backends."""
    workload = _workload(shape)
    cells = shape["cells"]
    ref = ENGINES[engine](cells_per_axis=cells, backend="list")
    alt = ENGINES[engine](cells_per_axis=cells, backend=backend)
    _install(ref, workload)
    _install(alt, workload)
    assert alt.result_table() == ref.result_table()
    for batch in workload.batches:
        flat = FlatUpdateBatch.from_batch(batch)
        expect = ref.process_deltas_flat(flat)
        got = alt.process_deltas_flat(flat)
        assert got == expect, batch.timestamp
        assert alt.result_table() == ref.result_table(), batch.timestamp
    assert _counter_tuple(alt) == _counter_tuple(ref)


@pytest.mark.parametrize("backend", BACKENDS)
def test_golden_fixture_replays_identically_on_every_backend(backend):
    """The PR 3 golden stream — recorded with the dict-per-cell grid —
    is reproduced byte-identically by every installed backend."""
    from repro.experiments.common import make_workload, scaled_spec
    from tests.test_replay_golden import GOLDEN_PATH, GRID, SPEC_OVERRIDES

    golden = json.loads(GOLDEN_PATH.read_text())
    spec = scaled_spec(1.0, **SPEC_OVERRIDES)
    workload = make_workload(spec)
    monitor = CPMMonitor(GRID, bounds=spec.bounds, backend=backend)
    monitor.load_objects(sorted(workload.initial_objects.items()))
    initial = {
        str(qid): [
            [repr(d), oid] for d, oid in monitor.install_query(qid, point, spec.k)
        ]
        for qid, point in sorted(workload.initial_queries.items())
    }
    assert initial == golden["initial"]
    for batch, expect in zip(workload.batches, golden["cycles"]):
        changed = monitor.process_flat(FlatUpdateBatch.from_batch(batch))
        got = {
            str(qid): [[repr(d), oid] for d, oid in monitor.result(qid)]
            for qid in sorted(changed)
        }
        assert got == expect["changed"], batch.timestamp
    stats = monitor.stats
    assert {
        "cell_scans": stats.cell_scans,
        "objects_scanned": stats.objects_scanned,
        "inserts": stats.inserts,
        "deletes": stats.deletes,
        "mark_ops": stats.mark_ops,
    } == golden["counters"]


# ----------------------------------------------------------------------
# Batch addressing kernel
# ----------------------------------------------------------------------

coords = st.one_of(
    st.floats(min_value=-0.5, max_value=1.5, allow_nan=False),
    st.sampled_from([0.0, 1.0, -0.0, 1e-300, 1e300, -1e300, 0.999999999999]),
)


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    pts=st.lists(st.tuples(coords, coords), min_size=0, max_size=40),
    pad=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_batch_cell_ids_matches_per_row_cell_id(backend, pts, pad):
    """``Grid.batch_cell_ids`` equals per-row ``Grid.cell_id`` on every
    backend — including out-of-bounds coordinates (clamped to the border
    cells) and huge magnitudes, above and below ``VEC_MIN_BATCH``."""
    if pad:
        # Pad past the vectorization threshold so the numpy kernel engages.
        pts = pts + [(0.25, 0.75)] * VEC_MIN_BATCH
    grid = Grid(16, backend=backend)
    xs = array("d", (x for x, _ in pts))
    ys = array("d", (y for _, y in pts))
    expect = [grid.cell_id(x, y) for x, y in pts]
    assert grid.batch_cell_ids(xs, ys) == expect


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    pts=st.lists(
        st.tuples(coords, coords, st.booleans()), min_size=0, max_size=40
    ),
    pad=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_batch_cell_ids_skip_mask_compresses_rows(backend, pts, pad):
    """With a skip mask, exactly the unskipped rows come back, in order."""
    if pad:
        pts = pts + [(0.5, 0.5, i % 3 == 0) for i in range(VEC_MIN_BATCH)]
    grid = Grid(16, backend=backend)
    xs = array("d", (x for x, _, _ in pts))
    ys = array("d", (y for _, y, _ in pts))
    skip = bytearray(1 if s else 0 for _, _, s in pts)
    expect = [grid.cell_id(x, y) for x, y, s in pts if not s]
    assert grid.batch_cell_ids(xs, ys, skip) == expect


@pytest.mark.parametrize("backend", BACKENDS)
def test_move_ids_matches_coordinate_addressed_move(backend):
    """``Grid.move_ids`` is the id-addressed twin of ``Grid.move``: same
    storage end state, same counters, for cross-cell and same-cell moves."""
    a = Grid(8, backend=backend)
    b = Grid(8, backend=backend)
    pts = [(i, (i % 13) / 13.0, (i % 7) / 7.0) for i in range(40)]
    for oid, x, y in pts:
        a.insert(oid, x, y)
        b.insert(oid, x, y)
    moves = [
        (oid, x, y, ((x + 0.31) % 1.0), ((y + 0.57) % 1.0)) for oid, x, y in pts
    ] + [(0, 0.31 % 1.0, 0.57 % 1.0, 0.3100001, 0.5700001)]  # same-cell
    for oid, ox, oy, nx, ny in moves:
        a.move(oid, (ox, oy), (nx, ny))
        b.move_ids(oid, b.cell_id(ox, oy), b.cell_id(nx, ny), nx, ny)
    assert a.stats.inserts == b.stats.inserts
    assert a.stats.deletes == b.stats.deletes
    assert len(a) == len(b)
    for oid, _, _, nx, ny in moves:
        i, j = a.cell_of(nx, ny)
        assert a.peek(i, j) == b.peek(i, j)
        assert oid in a.peek(i, j)


@pytest.mark.parametrize("backend", BACKENDS)
def test_move_ids_unknown_object_raises(backend):
    grid = Grid(8, backend=backend)
    grid.insert(1, 0.1, 0.1)
    with pytest.raises(KeyError):
        grid.move_ids(99, grid.cell_id(0.1, 0.1), grid.cell_id(0.9, 0.9), 0.9, 0.9)


# ----------------------------------------------------------------------
# Shared-memory flat-batch transport
# ----------------------------------------------------------------------

rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**40),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.sampled_from(["move", "appear", "disappear"]),
    ),
    min_size=0,
    max_size=64,
    unique_by=lambda r: r[0],
)


@given(rows=rows, timestamp=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_shm_pack_unpack_round_trips_every_column(rows, timestamp):
    """``pack_flat_batch``/``unpack_flat_batch`` preserve all seven
    columns, the timestamp and the query updates exactly."""
    batch = FlatUpdateBatch(timestamp)
    for oid, ox, oy, nx, ny, kind in rows:
        if kind == "appear":
            batch.append_appear(oid, nx, ny)
        elif kind == "disappear":
            batch.append_disappear(oid, ox, oy)
        else:
            batch.append_move(oid, ox, oy, nx, ny)
    handle, segment = pack_flat_batch(batch)
    try:
        copy = unpack_flat_batch(handle)
    finally:
        segment.close()
        segment.unlink()
    assert copy.timestamp == batch.timestamp
    assert copy.query_updates == batch.query_updates
    assert copy.oids == batch.oids
    assert copy.old_xs == batch.old_xs
    assert copy.old_ys == batch.old_ys
    assert copy.new_xs == batch.new_xs
    assert copy.new_ys == batch.new_ys
    assert copy.appear == batch.appear
    assert copy.disappear == batch.disappear


def test_process_executor_shm_path_matches_serial():
    """A sharded monitor whose executor ships every batch through shared
    memory (``shm_min_rows=1``) produces the same per-cycle changed sets
    and results as the in-process serial executor."""
    spec = WorkloadSpec(n_objects=120, n_queries=4, k=3, timestamps=4, seed=11)
    workload = BrinkhoffGenerator(spec).generate()
    serial = ShardedMonitor(2, cells_per_axis=8, executor=SerialShardExecutor())
    shm = ShardedMonitor(
        2, cells_per_axis=8, executor=ProcessShardExecutor(shm_min_rows=1)
    )
    try:
        _install(serial, workload)
        _install(shm, workload)
        for batch in workload.batches:
            flat = FlatUpdateBatch.from_batch(batch)
            expect = serial.process_flat(flat)
            got = shm.process_flat(flat)
            assert got == expect, batch.timestamp
            assert shm.result_table() == serial.result_table(), batch.timestamp
    finally:
        serial.close()
        shm.close()
