"""Tests for the path-following motion model (Brinkhoff lifecycle)."""

import random

import pytest

from repro.geometry.points import dist
from repro.geometry.rects import Rect
from repro.mobility.network import grid_network
from repro.mobility.objects import SPEED_FACTORS, MovingAgent, speed_per_timestamp


class TestSpeedPerTimestamp:
    def test_paper_ratios(self):
        # slow = (w + h) / 250; medium = 5x; fast = 25x.
        bounds = Rect(0.0, 0.0, 1.0, 1.0)
        slow = speed_per_timestamp("slow", bounds)
        assert slow == pytest.approx(2.0 / 250.0)
        assert speed_per_timestamp("medium", bounds) == pytest.approx(5 * slow)
        assert speed_per_timestamp("fast", bounds) == pytest.approx(25 * slow)

    def test_scales_with_workspace(self):
        big = Rect(0.0, 0.0, 10.0, 10.0)
        assert speed_per_timestamp("slow", big) == pytest.approx(20.0 / 250.0)

    def test_unknown_speed_raises(self):
        with pytest.raises(ValueError):
            speed_per_timestamp("warp", Rect(0, 0, 1, 1))

    def test_factor_table(self):
        assert SPEED_FACTORS == {"slow": 1.0, "medium": 5.0, "fast": 25.0}


class TestMovingAgent:
    def setup_method(self):
        self.net = grid_network(6, 6, seed=4)
        self.rng = random.Random(9)

    def test_starts_on_a_node(self):
        agent = MovingAgent(self.net, 0.02, self.rng)
        assert agent.position in self.net.nodes

    def test_advance_moves_at_most_speed(self):
        agent = MovingAgent(self.net, 0.02, self.rng)
        old = agent.position
        new = agent.advance(self.rng)
        if new is not None:
            # Straight-line displacement cannot exceed path distance.
            assert dist(old, new) <= 0.02 + 1e-9

    def test_object_eventually_disappears(self):
        agent = MovingAgent(self.net, 0.05, self.rng)
        for _ in range(2000):
            if agent.advance(self.rng) is None:
                break
        else:
            pytest.fail("object never completed its trip")

    def test_respawning_agent_never_disappears(self):
        agent = MovingAgent(self.net, 0.05, self.rng, respawn=True)
        for _ in range(500):
            assert agent.advance(self.rng) is not None

    def test_remaining_trip_length_decreases(self):
        agent = MovingAgent(self.net, 0.01, self.rng)
        before = agent.remaining_trip_length()
        agent.advance(self.rng)
        after = agent.remaining_trip_length()
        assert after <= before

    def test_positions_stay_in_workspace(self):
        agent = MovingAgent(self.net, 0.1, self.rng, respawn=True)
        for _ in range(200):
            pos = agent.advance(self.rng)
            assert pos is not None
            assert self.net.bounds.contains_point(pos[0], pos[1])

    def test_fast_agent_covers_whole_trip_in_one_step(self):
        # Speed far exceeding any path length: the object lands on its
        # destination immediately.
        agent = MovingAgent(self.net, 100.0, self.rng)
        final = agent.advance(self.rng)
        assert final is not None
        assert agent.finished

    def test_invalid_speed_raises(self):
        with pytest.raises(ValueError):
            MovingAgent(self.net, 0.0, self.rng)

    def test_start_node_respected(self):
        agent = MovingAgent(self.net, 0.02, self.rng, start_node=5)
        assert agent.position == self.net.node_position(5)

    def test_deterministic_under_same_rng_seed(self):
        net = grid_network(5, 5, seed=1)
        a = MovingAgent(net, 0.03, random.Random(7), respawn=True)
        b = MovingAgent(net, 0.03, random.Random(7), respawn=True)
        rng_a, rng_b = random.Random(8), random.Random(8)
        for _ in range(100):
            assert a.advance(rng_a) == b.advance(rng_b)
