"""Unit tests for repro.geometry.aggregates (Section 5 distance functions)."""

import math

import pytest

from repro.geometry.aggregates import (
    AGG_MAX,
    AGG_MIN,
    AGG_SUM,
    AGGREGATES,
    adist,
    get_aggregate,
)


class TestGetAggregate:
    def test_by_name(self):
        assert get_aggregate("sum") is AGG_SUM
        assert get_aggregate("min") is AGG_MIN
        assert get_aggregate("max") is AGG_MAX

    def test_passthrough(self):
        assert get_aggregate(AGG_SUM) is AGG_SUM

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            get_aggregate("median")

    def test_registry_complete(self):
        assert set(AGGREGATES) == {"sum", "min", "max"}


class TestAdist:
    Q = [(0.0, 0.0), (1.0, 0.0)]

    def test_sum(self):
        assert adist((0.5, 0.0), self.Q, "sum") == pytest.approx(1.0)

    def test_min(self):
        assert adist((0.9, 0.0), self.Q, "min") == pytest.approx(0.1)

    def test_max(self):
        assert adist((0.9, 0.0), self.Q, "max") == pytest.approx(0.9)

    def test_single_point_all_equal(self):
        q = [(0.3, 0.4)]
        p = (0.0, 0.0)
        expected = 0.5
        for fn in ("sum", "min", "max"):
            assert adist(p, q, fn) == pytest.approx(expected)

    def test_empty_query_set_raises(self):
        with pytest.raises(ValueError):
            adist((0.0, 0.0), [], "sum")

    def test_monotone_in_each_distance(self):
        # Moving p directly away from every query point cannot decrease any
        # aggregate (monotonically increasing f).
        q = [(0.2, 0.2), (0.4, 0.3)]
        near = (0.3, 0.25)
        far = (0.9, 0.95)
        for fn in ("sum", "min", "max"):
            assert adist(far, q, fn) > adist(near, q, fn)

    def test_sum_at_meeting_point(self):
        # Classic: on the segment between two users, sum is constant.
        q = [(0.0, 0.0), (1.0, 0.0)]
        assert adist((0.25, 0.0), q, "sum") == pytest.approx(
            adist((0.75, 0.0), q, "sum")
        )


class TestLevelStep:
    def test_sum_scales_with_m(self):
        # Corollary 5.1: amindist(DIR_{j+1}) = amindist(DIR_j) + m * delta.
        assert AGG_SUM.level_step(3, 0.1) == pytest.approx(0.3)
        assert AGG_SUM.level_step(1, 0.1) == pytest.approx(0.1)

    def test_min_max_independent_of_m(self):
        # Corollary 5.2: increment is delta regardless of m.
        assert AGG_MIN.level_step(7, 0.1) == pytest.approx(0.1)
        assert AGG_MAX.level_step(7, 0.1) == pytest.approx(0.1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            AGG_SUM.level_step(0, 0.1)
        with pytest.raises(ValueError):
            AGG_SUM.level_step(2, 0.0)


class TestReductions:
    def test_callable_interface(self):
        assert AGG_SUM([1.0, 2.0, 3.0]) == 6.0
        assert AGG_MIN([1.0, 2.0, 3.0]) == 1.0
        assert AGG_MAX([1.0, 2.0, 3.0]) == 3.0

    def test_generator_input(self):
        assert AGG_SUM(d for d in (0.5, 0.5)) == 1.0

    def test_adist_equals_manual_reduction(self):
        q = [(0.1, 0.1), (0.9, 0.9), (0.5, 0.1)]
        p = (0.4, 0.6)
        dists = [math.hypot(p[0] - x, p[1] - y) for x, y in q]
        assert adist(p, q, "sum") == pytest.approx(sum(dists))
        assert adist(p, q, "min") == pytest.approx(min(dists))
        assert adist(p, q, "max") == pytest.approx(max(dists))
