"""Property-based tests: every monitor agrees with brute force.

YPK-CNN and SEA-CNN replay the same generated streams as CPM; all three
must produce identical k-NN distance multisets every cycle, under moves,
appearances and disappearances.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sea import SeaCnnMonitor
from repro.baselines.ypk import YpkCnnMonitor
from repro.core.cpm import CPMMonitor
from repro.updates import ObjectUpdate

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
point = st.tuples(coord, coord)


def brute_dists(positions, q, k):
    dists = sorted(math.hypot(x - q[0], y - q[1]) for x, y in positions.values())
    return dists[:k]


def close(a, b, tol=1e-9):
    return len(a) == len(b) and all(abs(x - y) <= tol for x, y in zip(a, b))


@st.composite
def move_scripts(draw):
    """Initial population + batches of moves/appearances/disappearances."""
    n_initial = draw(st.integers(min_value=2, max_value=20))
    initial = {oid: draw(point) for oid in range(n_initial)}
    n_batches = draw(st.integers(min_value=1, max_value=4))
    batches = []
    alive = set(initial)
    next_oid = n_initial
    for _ in range(n_batches):
        events = []
        used = set()
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            kind = draw(st.sampled_from(["move", "move", "appear", "disappear"]))
            if kind == "move" and alive - used:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("move", oid, draw(point)))
                used.add(oid)
            elif kind == "disappear" and len(alive - used) > 1:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("disappear", oid, None))
                used.add(oid)
                alive.discard(oid)
            else:
                events.append(("appear", next_oid, draw(point)))
                alive.add(next_oid)
                used.add(next_oid)
                next_oid += 1
        batches.append(events)
    return initial, batches


@given(
    move_scripts(),
    point,
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=2, max_value=8),
)
@settings(max_examples=80, deadline=None)
def test_all_monitors_agree_with_brute_force(script, q, k, cells):
    initial, batches = script
    monitors = [
        CPMMonitor(cells_per_axis=cells),
        YpkCnnMonitor(cells_per_axis=cells),
        SeaCnnMonitor(cells_per_axis=cells),
    ]
    positions = dict(initial)
    for m in monitors:
        m.load_objects(initial.items())
        m.install_query(0, q, k)
        assert close(
            [d for d, _ in m.result(0)], brute_dists(positions, q, k)
        ), m.name
    for events in batches:
        updates = []
        for kind, oid, new in events:
            if kind == "move":
                updates.append(ObjectUpdate(oid, positions[oid], new))
                positions[oid] = new
            elif kind == "appear":
                updates.append(ObjectUpdate(oid, None, new))
                positions[oid] = new
            else:
                updates.append(ObjectUpdate(oid, positions.pop(oid), None))
        expected = brute_dists(positions, q, k)
        for m in monitors:
            m.process(updates)
            assert close([d for d, _ in m.result(0)], expected), m.name


@given(
    st.lists(point, min_size=1, max_size=30),
    point,
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=2, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_two_step_search_matches_brute_force(objects, q, k, cells):
    from repro.baselines.common import two_step_nn_search
    from repro.grid.grid import Grid

    grid = Grid(cells)
    positions = {}
    for oid, pos in enumerate(objects):
        grid.insert(oid, pos[0], pos[1])
        positions[oid] = pos
    got = two_step_nn_search(grid, q, k)
    assert close([d for d, _ in got], brute_dists(positions, q, k))


@given(
    st.lists(point, min_size=0, max_size=30),
    point,
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=2, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_naive_search_matches_brute_force(objects, q, k, cells):
    from repro.baselines.naive_grid import naive_nn_search
    from repro.grid.grid import Grid

    grid = Grid(cells)
    positions = {}
    for oid, pos in enumerate(objects):
        grid.insert(oid, pos[0], pos[1])
        positions[oid] = pos
    got, _cells = naive_nn_search(grid, q, k)
    assert close([d for d, _ in got], brute_dists(positions, q, k))
