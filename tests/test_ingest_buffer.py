"""Unit tests for the bounded ingest buffer (back-pressure + coalescing)."""

import threading

import pytest

from repro.ingest.buffer import BackPressurePolicy, IngestBuffer
from repro.updates import (
    QueryUpdate,
    QueryUpdateKind,
    appear_update,
    disappear_update,
    move_update,
)


class TestCoalescing:
    def test_last_write_wins_per_oid(self):
        buf = IngestBuffer(capacity=8)
        buf.offer(move_update(1, (0.0, 0.0), (0.1, 0.1)))
        buf.offer(move_update(1, (0.1, 0.1), (0.2, 0.2)))
        buf.offer(move_update(1, (0.2, 0.2), (0.3, 0.3)))
        assert buf.pending == 1
        drained = buf.drain()
        assert drained.object_targets == [(1, (0.3, 0.3))]
        assert drained.counters.offered == 3
        assert drained.counters.coalesced == 2

    def test_coalescing_keeps_arrival_order(self):
        buf = IngestBuffer(capacity=8)
        buf.offer(move_update(1, (0.0, 0.0), (0.1, 0.1)))
        buf.offer(move_update(2, (0.0, 0.0), (0.2, 0.2)))
        buf.offer(move_update(1, (0.1, 0.1), (0.9, 0.9)))
        assert [oid for oid, _ in buf.drain().object_targets] == [1, 2]

    def test_disappearance_coalesces_to_offline_target(self):
        buf = IngestBuffer(capacity=8)
        buf.offer(move_update(1, (0.0, 0.0), (0.1, 0.1)))
        buf.offer(disappear_update(1, (0.1, 0.1)))
        assert buf.drain().object_targets == [(1, None)]

    def test_appearance_then_move_keeps_latest_position(self):
        buf = IngestBuffer(capacity=8)
        buf.offer(appear_update(1, (0.5, 0.5)))
        buf.offer(move_update(1, (0.5, 0.5), (0.6, 0.6)))
        assert buf.drain().object_targets == [(1, (0.6, 0.6))]


class TestDropOldest:
    def test_full_buffer_sheds_stalest_object(self):
        buf = IngestBuffer(capacity=2, policy=BackPressurePolicy.DROP_OLDEST)
        buf.offer(move_update(1, (0, 0), (0.1, 0.1)))
        buf.offer(move_update(2, (0, 0), (0.2, 0.2)))
        buf.offer(move_update(3, (0, 0), (0.3, 0.3)))
        drained = buf.drain()
        assert [oid for oid, _ in drained.object_targets] == [2, 3]
        assert drained.counters.dropped == 1

    def test_coalescing_never_drops(self):
        buf = IngestBuffer(capacity=2, policy=BackPressurePolicy.DROP_OLDEST)
        buf.offer(move_update(1, (0, 0), (0.1, 0.1)))
        buf.offer(move_update(2, (0, 0), (0.2, 0.2)))
        buf.offer(move_update(1, (0.1, 0.1), (0.9, 0.9)))
        drained = buf.drain()
        assert drained.counters.dropped == 0
        assert drained.object_targets == [(1, (0.9, 0.9)), (2, (0.2, 0.2))]


class TestBlock:
    def test_block_times_out_when_full(self):
        buf = IngestBuffer(capacity=1, policy=BackPressurePolicy.BLOCK)
        assert buf.offer(move_update(1, (0, 0), (0.1, 0.1)))
        assert not buf.offer(move_update(2, (0, 0), (0.2, 0.2)), timeout=0.01)
        counters = buf.counters()
        assert counters.blocked == 1
        assert counters.rejected == 1

    def test_blocked_producer_resumes_after_drain(self):
        buf = IngestBuffer(capacity=1, policy=BackPressurePolicy.BLOCK)
        buf.offer(move_update(1, (0, 0), (0.1, 0.1)))
        accepted = []

        def producer():
            accepted.append(
                bool(buf.offer(move_update(2, (0, 0), (0.2, 0.2)), timeout=5.0))
            )

        thread = threading.Thread(target=producer)
        thread.start()
        # Give the producer a moment to block, then free a slot.
        for _ in range(1000):
            if buf.counters().blocked:
                break
        buf.drain()
        thread.join(timeout=5.0)
        assert accepted == [True]
        assert buf.drain().object_targets == [(2, (0.2, 0.2))]


class TestDrain:
    def test_partial_drain_is_fifo(self):
        buf = IngestBuffer(capacity=8)
        for oid in (1, 2, 3):
            buf.offer(move_update(oid, (0, 0), (oid / 10.0, 0.0)))
        first = buf.drain(max_objects=2)
        assert [oid for oid, _ in first.object_targets] == [1, 2]
        assert buf.pending == 1
        assert [oid for oid, _ in buf.drain().object_targets] == [3]

    def test_counter_deltas_reset_per_drain(self):
        buf = IngestBuffer(capacity=8)
        buf.offer(move_update(1, (0, 0), (0.1, 0.1)))
        assert buf.drain().counters.offered == 1
        buf.offer(move_update(2, (0, 0), (0.2, 0.2)))
        drained = buf.drain()
        assert drained.counters.offered == 1
        assert drained.counters.coalesced == 0

    def test_query_updates_are_fifo_and_unbounded(self):
        buf = IngestBuffer(capacity=1)
        qus = [QueryUpdate(q, QueryUpdateKind.TERMINATE) for q in (7, 8, 9)]
        for qu in qus:
            buf.offer_query(qu)
        drained = buf.drain()
        assert drained.query_updates == qus
        assert drained.counters.query_offered == 3

    def test_close_wakes_consumer(self):
        buf = IngestBuffer(capacity=4)
        buf.close()
        assert buf.closed
        assert buf.wait_for_work(count=1, deadline=None)

    def test_blocking_offer_on_closed_full_buffer_rejects_instead_of_hanging(self):
        buf = IngestBuffer(capacity=1, policy=BackPressurePolicy.BLOCK)
        buf.offer(move_update(1, (0, 0), (0.1, 0.1)))
        buf.close()
        # timeout=None would previously wait forever: nobody drains a
        # closed buffer.
        assert not buf.offer(move_update(2, (0, 0), (0.2, 0.2)), timeout=None)
        assert buf.counters().rejected == 1


class TestTryOffer:
    def test_try_offer_declines_without_touching_producer_stats(self):
        buf = IngestBuffer(capacity=1, policy=BackPressurePolicy.BLOCK)
        assert buf.try_offer(move_update(1, (0, 0), (0.1, 0.1))) == 1
        assert buf.try_offer(move_update(2, (0, 0), (0.2, 0.2))) == 0
        counters = buf.counters()
        assert counters.offered == 1  # the declined update was not counted
        assert counters.blocked == 0
        assert counters.rejected == 0

    def test_try_offer_coalesces_and_drops_like_offer(self):
        buf = IngestBuffer(capacity=2, policy=BackPressurePolicy.DROP_OLDEST)
        buf.try_offer(move_update(1, (0, 0), (0.1, 0.1)))
        buf.try_offer(move_update(1, (0.1, 0.1), (0.5, 0.5)))
        buf.try_offer(move_update(2, (0, 0), (0.2, 0.2)))
        buf.try_offer(move_update(3, (0, 0), (0.3, 0.3)))
        drained = buf.drain()
        assert drained.object_targets == [(2, (0.2, 0.2)), (3, (0.3, 0.3))]
        assert drained.counters.coalesced == 1
        assert drained.counters.dropped == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        IngestBuffer(capacity=0)
