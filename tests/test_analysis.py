"""Tests for the Section 4.1 analytical model and the space accounting."""

import math

import pytest

from repro.analysis.model import (
    best_dist_estimate,
    cinf_estimate,
    csh_estimate,
    oinf_estimate,
    optimal_delta,
    space_cpm,
    space_grid,
    space_query_table,
    time_cpm,
)
from repro.analysis.space import (
    measured_space_units,
    modeled_space_units,
    units_to_mbytes,
)


class TestBestDistEstimate:
    def test_formula(self):
        # best_dist = sqrt(k / (pi N)).
        assert best_dist_estimate(16, 100_000) == pytest.approx(
            math.sqrt(16 / (math.pi * 100_000))
        )

    def test_grows_with_k(self):
        assert best_dist_estimate(64, 1000) > best_dist_estimate(4, 1000)

    def test_shrinks_with_n(self):
        assert best_dist_estimate(4, 100_000) < best_dist_estimate(4, 1000)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            best_dist_estimate(0, 100)
        with pytest.raises(ValueError):
            best_dist_estimate(1, 0)

    def test_matches_simulation_on_uniform_data(self):
        """The expected k-th NN distance on uniform data should sit near
        the model (within a loose factor — it is an expectation)."""
        import random

        rng = random.Random(0)
        n, k = 5000, 10
        positions = [(rng.random(), rng.random()) for _ in range(n)]
        trials = []
        for _ in range(20):
            q = (rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8))
            dists = sorted(math.hypot(x - q[0], y - q[1]) for x, y in positions)
            trials.append(dists[k - 1])
        mean = sum(trials) / len(trials)
        model = best_dist_estimate(k, n)
        assert 0.6 * model < mean < 1.6 * model


class TestRegionEstimates:
    def test_cinf_decreasing_in_delta(self):
        assert cinf_estimate(1 / 256, 16, 100_000) >= cinf_estimate(1 / 64, 16, 100_000)

    def test_oinf_approaches_k_for_small_delta(self):
        # As delta -> 0 the influence region tightens around the k NNs.
        oinf = oinf_estimate(1 / 4096, 16, 100_000)
        assert oinf < 3 * 16

    def test_oinf_grows_for_large_delta(self):
        assert oinf_estimate(1 / 8, 16, 100_000) > oinf_estimate(1 / 256, 16, 100_000)

    def test_csh_is_4_over_pi_of_cinf(self):
        # C_SH = 4 r^2, C_inf = pi r^2 with the same ring count r.
        delta, k, n = 1 / 128, 16, 100_000
        assert csh_estimate(delta, k, n) / cinf_estimate(delta, k, n) == pytest.approx(
            4 / math.pi
        )

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            cinf_estimate(0.0, 16, 1000)
        with pytest.raises(ValueError):
            csh_estimate(-1.0, 16, 1000)

    def test_cinf_tracks_simulation(self):
        """Measured influence-region size should be within a small factor
        of the model on uniform data."""
        import random

        from repro.core.cpm import CPMMonitor

        rng = random.Random(1)
        n, k, cells = 2000, 8, 32
        monitor = CPMMonitor(cells_per_axis=cells)
        monitor.load_objects(
            (oid, (rng.random(), rng.random())) for oid in range(n)
        )
        sizes = []
        for qid in range(15):
            q = (rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8))
            monitor.install_query(qid, q, k)
            sizes.append(len(monitor.influence_cells(qid)))
        mean = sum(sizes) / len(sizes)
        model = cinf_estimate(1 / cells, k, n)
        assert 0.3 * model < mean < 3.0 * model


class TestSpaceModel:
    def test_space_grid_formula(self):
        delta, k, n_obj, n_q = 1 / 128, 16, 100_000, 5_000
        assert space_grid(delta, k, n_obj, n_q) == pytest.approx(
            3 * n_obj + n_q * cinf_estimate(delta, k, n_obj)
        )

    def test_space_qt_formula(self):
        delta, k, n_obj, n_q = 1 / 128, 16, 100_000, 5_000
        assert space_query_table(delta, k, n_obj, n_q) == pytest.approx(
            n_q * (15 + 2 * k + 3 * csh_estimate(delta, k, n_obj))
        )

    def test_space_cpm_is_sum(self):
        args = (1 / 128, 16, 100_000, 5_000)
        assert space_cpm(*args) == pytest.approx(
            space_grid(*args) + space_query_table(*args)
        )

    def test_footnote_6_magnitudes(self):
        """The modeled footprints must land in the footnote-6 ballpark
        (single-digit MBytes) and preserve the method ordering
        YPK < SEA < CPM."""
        delta = 1 / 128
        ypk = modeled_space_units("YPK-CNN", delta, 16, 100_000, 5_000)
        sea = modeled_space_units("SEA-CNN", delta, 16, 100_000, 5_000)
        cpm = modeled_space_units("CPM", delta, 16, 100_000, 5_000)
        assert ypk < sea < cpm
        for units in (ypk, sea, cpm):
            assert 0.5 < units_to_mbytes(units) < 10.0

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            modeled_space_units("R-TREE", 1 / 128, 16, 1000, 10)


class TestTimeModel:
    ARGS = dict(delta=1 / 128, k=16, n_objects=100_000, n_queries=5_000)

    def test_increases_with_object_agility(self):
        low = time_cpm(f_obj=0.1, f_qry=0.3, **self.ARGS)
        high = time_cpm(f_obj=0.5, f_qry=0.3, **self.ARGS)
        assert high > low

    def test_increases_with_query_agility(self):
        low = time_cpm(f_obj=0.5, f_qry=0.1, **self.ARGS)
        high = time_cpm(f_obj=0.5, f_qry=0.5, **self.ARGS)
        assert high > low

    def test_linear_in_n_objects_for_index_term(self):
        a = time_cpm(1 / 128, 16, 50_000, 0, 0.5, 0.0)
        b = time_cpm(1 / 128, 16, 100_000, 0, 0.5, 0.0)
        assert b == pytest.approx(2 * a)

    def test_extreme_deltas_are_pricier_than_moderate(self):
        # The delta trade-off of Figure 4.1: both extremes lose.
        mid = time_cpm(1 / 128, 16, 100_000, 5_000, 0.5, 0.3)
        tiny = time_cpm(1 / 4096, 16, 100_000, 5_000, 0.5, 0.3)
        huge = time_cpm(1 / 4, 16, 100_000, 5_000, 0.5, 0.3)
        assert mid < tiny
        assert mid < huge

    def test_agility_bounds_validated(self):
        with pytest.raises(ValueError):
            time_cpm(1 / 128, 16, 1000, 10, 1.5, 0.3)

    def test_optimal_delta_is_interior(self):
        best = optimal_delta(16, 100_000, 5_000, 0.5, 0.3)
        candidates = [1 / g for g in (32, 64, 128, 256, 512, 1024)]
        assert best in candidates
        # Not the extremes for the paper's default setting.
        assert best not in (candidates[0], candidates[-1])


class TestMeasuredSpace:
    def test_measured_tracks_model_for_cpm(self):
        import random

        from repro.core.cpm import CPMMonitor

        rng = random.Random(2)
        n, n_q, k, cells = 1000, 20, 4, 16
        monitor = CPMMonitor(cells_per_axis=cells)
        monitor.load_objects((i, (rng.random(), rng.random())) for i in range(n))
        for qid in range(n_q):
            monitor.install_query(qid, (rng.random(), rng.random()), k)
        measured = measured_space_units(monitor)
        modeled = modeled_space_units("CPM", 1 / cells, k, n, n_q)
        assert 0.3 * modeled < measured < 3.0 * modeled

    def test_unsupported_monitor_raises(self):
        from repro.baselines.brute import BruteForceMonitor

        with pytest.raises(TypeError):
            measured_space_units(BruteForceMonitor())
