"""Tests for the shared monitor interface (repro.monitor)."""

import pytest

from repro.baselines.brute import BruteForceMonitor
from repro.baselines.sea import SeaCnnMonitor
from repro.baselines.ypk import YpkCnnMonitor
from repro.core.cpm import CPMMonitor
from repro.updates import QueryUpdate, QueryUpdateKind, UpdateBatch, move_update
from tests.conftest import scatter

ALL = [
    lambda: CPMMonitor(cells_per_axis=8),
    lambda: YpkCnnMonitor(cells_per_axis=8),
    lambda: SeaCnnMonitor(cells_per_axis=8),
    BruteForceMonitor,
]


@pytest.mark.parametrize("make", ALL)
class TestSharedInterface:
    def test_names_are_distinct(self, make):
        monitor = make()
        assert monitor.name in {"CPM", "YPK-CNN", "SEA-CNN", "BruteForce"}

    def test_apply_query_update_insert(self, make):
        monitor = make()
        monitor.load_objects(scatter(30, seed=1))
        monitor.apply_query_update(
            QueryUpdate(5, QueryUpdateKind.INSERT, (0.5, 0.5), 2)
        )
        assert 5 in monitor.query_ids()
        assert len(monitor.result(5)) == 2

    def test_apply_query_update_move(self, make):
        monitor = make()
        monitor.load_objects(scatter(30, seed=1))
        monitor.install_query(5, (0.5, 0.5), 2)
        monitor.apply_query_update(QueryUpdate(5, QueryUpdateKind.MOVE, (0.1, 0.1), 2))
        assert 5 in monitor.query_ids()

    def test_apply_query_update_terminate(self, make):
        monitor = make()
        monitor.load_objects(scatter(30, seed=1))
        monitor.install_query(5, (0.5, 0.5), 2)
        monitor.apply_query_update(QueryUpdate(5, QueryUpdateKind.TERMINATE))
        assert 5 not in monitor.query_ids()

    def test_process_batch_wrapper(self, make):
        monitor = make()
        objs = scatter(30, seed=2)
        monitor.load_objects(objs)
        monitor.install_query(0, (0.5, 0.5), 1)
        positions = dict(objs)
        oid = next(iter(positions))
        batch = UpdateBatch(
            timestamp=0,
            object_updates=(move_update(oid, positions[oid], (0.51, 0.5)),),
        )
        changed = monitor.process_batch(batch)
        assert isinstance(changed, set)
        assert monitor.result(0)[0][1] == oid

    def test_reset_stats(self, make):
        monitor = make()
        monitor.load_objects(scatter(30, seed=3))
        monitor.install_query(0, (0.5, 0.5), 1)
        monitor.reset_stats()
        assert monitor.stats.cell_scans == 0

    def test_object_bookkeeping(self, make):
        monitor = make()
        monitor.load_objects([(1, (0.25, 0.75))])
        assert monitor.object_count == 1
        assert monitor.object_position(1) == (0.25, 0.75)
        assert monitor.object_position(2) is None
