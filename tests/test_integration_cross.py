"""Integration tests: full workload replays, all algorithms, every cycle.

This is the library-level equivalence theorem: CPM, YPK-CNN, SEA-CNN and
brute force produce identical result tables when replaying identical
Brinkhoff-style and uniform workloads (including moving queries, object
appearance/disappearance, all speed classes).
"""

import pytest

from repro.baselines.brute import BruteForceMonitor
from repro.baselines.sea import SeaCnnMonitor
from repro.baselines.ypk import YpkCnnMonitor
from repro.core.cpm import CPMMonitor
from repro.api.session import replay_workload
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec


def replay_all(workload, cells=16):
    monitors = [
        CPMMonitor(cells_per_axis=cells),
        YpkCnnMonitor(cells_per_axis=cells),
        SeaCnnMonitor(cells_per_axis=cells),
        BruteForceMonitor(),
    ]
    logs = {}
    for monitor in monitors:
        log: list = []
        replay_workload(monitor, workload, collect_results=True, result_log=log)
        logs[monitor.name] = log
    return logs


def assert_logs_equal(logs):
    """Per-cycle, per-query result *distances* must match brute force.

    Object ids may legitimately differ when several objects tie at exactly
    the k-th distance (frequent on lattice road networks, where node
    geometry produces exact distance collisions); any tie subset is a
    valid k-NN answer.  Distances themselves are computed by identical
    ``hypot`` calls in every monitor, so they must match exactly.
    """
    reference = logs["BruteForce"]
    for name, log in logs.items():
        if name == "BruteForce":
            continue
        assert len(log) == len(reference), name
        for t, (got, want) in enumerate(zip(log, reference)):
            assert got.keys() == want.keys(), (name, t)
            for qid in want:
                got_dists = [d for d, _oid in got[qid]]
                want_dists = [d for d, _oid in want[qid]]
                assert got_dists == want_dists, (name, t, qid)
                # Ids must agree wherever the distance is untied.
                want_tied = {
                    d for i, (d, _o) in enumerate(want[qid])
                    if (i > 0 and want[qid][i - 1][0] == d)
                    or (i + 1 < len(want[qid]) and want[qid][i + 1][0] == d)
                }
                for (gd, go), (wd, wo) in zip(got[qid], want[qid]):
                    if wd not in want_tied and wd != want_dists[-1]:
                        assert go == wo, (name, t, qid, gd)


class TestBrinkhoffReplays:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_default_profile(self, seed):
        spec = WorkloadSpec(
            n_objects=150, n_queries=6, k=4, timestamps=10, seed=seed
        )
        workload = BrinkhoffGenerator(spec).generate()
        assert_logs_equal(replay_all(workload))

    def test_fast_objects_with_churn(self):
        # Fast objects complete trips quickly: many disappear/appear events.
        spec = WorkloadSpec(
            n_objects=100, n_queries=5, k=3, timestamps=12,
            object_speed="fast", seed=9,
        )
        workload = BrinkhoffGenerator(spec).generate()
        assert workload.total_object_updates > 0
        assert any(
            u.new is None for b in workload.batches for u in b.object_updates
        ), "expected disappearance events in a fast workload"
        assert_logs_equal(replay_all(workload))

    def test_constantly_moving_queries(self):
        spec = WorkloadSpec(
            n_objects=120, n_queries=5, k=4, timestamps=8,
            query_agility=1.0, seed=4,
        )
        workload = BrinkhoffGenerator(spec).generate()
        assert_logs_equal(replay_all(workload))

    def test_static_queries(self):
        spec = WorkloadSpec(
            n_objects=120, n_queries=5, k=4, timestamps=8,
            query_agility=0.0, seed=4,
        )
        workload = BrinkhoffGenerator(spec).generate()
        assert_logs_equal(replay_all(workload))

    def test_large_k(self):
        spec = WorkloadSpec(
            n_objects=150, n_queries=3, k=32, timestamps=6, seed=5
        )
        workload = BrinkhoffGenerator(spec).generate()
        assert_logs_equal(replay_all(workload))

    def test_coarse_and_fine_grids(self):
        spec = WorkloadSpec(n_objects=100, n_queries=4, k=3, timestamps=6, seed=6)
        workload = BrinkhoffGenerator(spec).generate()
        for cells in (4, 64):
            assert_logs_equal(replay_all(workload, cells=cells))


class TestUniformReplays:
    def test_uniform_default(self):
        spec = WorkloadSpec(n_objects=150, n_queries=6, k=4, timestamps=10, seed=7)
        workload = UniformGenerator(spec).generate()
        assert_logs_equal(replay_all(workload))

    def test_uniform_fast_displacements(self):
        spec = WorkloadSpec(
            n_objects=100, n_queries=4, k=2, timestamps=8,
            object_speed="fast", query_speed="fast", seed=8,
        )
        workload = UniformGenerator(spec).generate()
        assert_logs_equal(replay_all(workload))


class TestRelativePerformance:
    def test_cpm_scans_fewest_cells(self):
        """The headline claim at workload scale: CPM performs far fewer
        cell accesses than both baselines on the default profile."""
        spec = WorkloadSpec(
            n_objects=400, n_queries=10, k=8, timestamps=10, seed=11
        )
        workload = BrinkhoffGenerator(spec).generate()
        scans = {}
        for monitor in (
            CPMMonitor(cells_per_axis=16),
            YpkCnnMonitor(cells_per_axis=16),
            SeaCnnMonitor(cells_per_axis=16),
        ):
            report = replay_workload(monitor, workload)
            scans[monitor.name] = report.total_cell_scans
        assert scans["CPM"] < scans["YPK-CNN"]
        assert scans["CPM"] < scans["SEA-CNN"]
