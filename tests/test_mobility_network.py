"""Tests for the synthetic road networks (the Oldenburg substitute)."""

import random

import networkx as nx
import pytest

from repro.geometry.rects import Rect
from repro.mobility.network import RoadNetwork, grid_network, random_geometric_network


class TestRoadNetwork:
    def test_requires_two_nodes(self):
        with pytest.raises(ValueError):
            RoadNetwork([(0.5, 0.5)], [])

    def test_requires_edges(self):
        with pytest.raises(ValueError):
            RoadNetwork([(0.1, 0.1), (0.9, 0.9)], [])

    def test_requires_connectivity(self):
        nodes = [(0.1, 0.1), (0.2, 0.2), (0.8, 0.8), (0.9, 0.9)]
        with pytest.raises(ValueError):
            RoadNetwork(nodes, [(0, 1), (2, 3)])

    def test_rejects_nodes_outside_workspace(self):
        with pytest.raises(ValueError):
            RoadNetwork([(0.1, 0.1), (1.5, 0.5)], [(0, 1)])

    def test_edge_weights_are_euclidean(self):
        net = RoadNetwork([(0.0, 0.0), (0.3, 0.4)], [(0, 1)])
        assert net.graph[0][1]["weight"] == pytest.approx(0.5)

    def test_shortest_path_endpoints(self):
        net = grid_network(4, 4, seed=1)
        path = net.shortest_path(0, 15)
        assert path[0] == net.node_position(0)
        assert path[-1] == net.node_position(15)

    def test_shortest_path_is_optimal(self):
        net = grid_network(5, 5, seed=2)
        expected = nx.shortest_path_length(net.graph, 3, 21, weight="weight")
        path = net.shortest_path(3, 21)
        assert net.path_length(path) == pytest.approx(expected)

    def test_shortest_path_same_node_raises(self):
        net = grid_network(4, 4, seed=1)
        with pytest.raises(ValueError):
            net.shortest_path(3, 3)

    def test_path_cache_consistency(self):
        net = grid_network(4, 4, seed=1)
        first = net.shortest_path(1, 14)
        second = net.shortest_path(1, 14)
        assert first == second

    def test_random_trip_distinct_endpoints(self):
        net = grid_network(4, 4, seed=1)
        rng = random.Random(0)
        for _ in range(50):
            src, dst = net.random_trip(rng)
            assert src != dst


class TestGridNetwork:
    def test_node_count(self):
        net = grid_network(4, 5, seed=0)
        assert net.node_count == 20

    def test_connected(self):
        for seed in range(5):
            net = grid_network(6, 6, dropout=0.3, seed=seed)
            assert nx.is_connected(net.graph)

    def test_nodes_inside_workspace(self):
        net = grid_network(8, 8, jitter=0.45, seed=3)
        for x, y in net.nodes:
            assert net.bounds.contains_point(x, y)

    def test_deterministic_in_seed(self):
        a = grid_network(5, 5, seed=42)
        b = grid_network(5, 5, seed=42)
        assert a.nodes == b.nodes
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_different_seed_differs(self):
        a = grid_network(5, 5, seed=1)
        b = grid_network(5, 5, seed=2)
        assert a.nodes != b.nodes

    def test_custom_bounds(self):
        bounds = Rect(10.0, 10.0, 20.0, 20.0)
        net = grid_network(4, 4, bounds=bounds, seed=0)
        for x, y in net.nodes:
            assert bounds.contains_point(x, y)

    def test_too_small_lattice_raises(self):
        with pytest.raises(ValueError):
            grid_network(1, 5)

    def test_bad_dropout_raises(self):
        with pytest.raises(ValueError):
            grid_network(4, 4, dropout=1.0)


class TestRandomGeometricNetwork:
    def test_connected(self):
        net = random_geometric_network(150, seed=7)
        assert nx.is_connected(net.graph)

    def test_nodes_inside_workspace(self):
        net = random_geometric_network(100, seed=3)
        for x, y in net.nodes:
            assert net.bounds.contains_point(x, y)

    def test_keeps_largest_component(self):
        # With a small radius the raw graph fragments; we must still get a
        # connected network (possibly with fewer nodes).
        net = random_geometric_network(200, radius=0.09, seed=5)
        assert nx.is_connected(net.graph)
        assert net.node_count >= 2

    def test_deterministic_in_seed(self):
        a = random_geometric_network(80, seed=11)
        b = random_geometric_network(80, seed=11)
        assert a.nodes == b.nodes

    def test_too_few_nodes_raises(self):
        with pytest.raises(ValueError):
            random_geometric_network(1)
