"""Direct unit tests for QueryState and CycleScratch internals."""

import math

import pytest

from repro.core.bookkeeping import CycleScratch, QueryState
from repro.core.partition import ConceptualPartition
from repro.core.strategies import PointNNStrategy
from repro.grid.grid import Grid


def make_state(qid=0, k=2, q=(0.5, 0.5), cells=8):
    grid = Grid(cells)
    strategy = PointNNStrategy(*q)
    state = QueryState(qid, strategy, k, strategy.partition(grid))
    return grid, state


class TestVisitList:
    def test_append_visit_keeps_parallel_arrays(self):
        _grid, state = make_state()
        state.append_visit(0.0, (4, 4))
        state.append_visit(0.1, (4, 5))
        assert state.visit_cells == [(4, 4), (4, 5)]
        assert state.visit_keys == [0.0, 0.1]
        assert state.visit_length == 2

    def test_influence_cells_respects_marked_prefix(self):
        _grid, state = make_state()
        state.append_visit(0.0, (4, 4))
        state.append_visit(0.1, (4, 5))
        state.marked_upto = 1
        assert state.influence_cells() == [(4, 4)]

    def test_csh_counts_visit_and_heap_cells(self):
        _grid, state = make_state()
        state.append_visit(0.0, (4, 4))
        state.heap.push_cell(0.3, 5, 5)
        state.heap.push_rect(0.2, 0, 1)  # rectangles do not count
        assert state.csh() == 2


class TestReconcileMarks:
    def test_shrink_unmarks_suffix(self):
        grid, state = make_state()
        for idx, key in enumerate([0.0, 0.1, 0.2, 0.3]):
            cell = (idx, 0)
            state.append_visit(key, cell)
            grid.add_mark(cell, state.qid)
        state.marked_upto = 4
        state.best_dist = 0.15
        state.reconcile_marks(grid, processed_upto=4)
        assert state.marked_upto == 2
        assert grid.marked_cells(state.qid) == [(0, 0), (1, 0)]

    def test_cutoff_capped_by_processed(self):
        grid, state = make_state()
        for idx, key in enumerate([0.0, 0.1, 0.2]):
            state.append_visit(key, (idx, 0))
        grid.add_mark((0, 0), state.qid)
        state.marked_upto = 1
        state.best_dist = 1.0  # would cover everything...
        state.reconcile_marks(grid, processed_upto=1)  # ...but only 1 scanned
        assert state.marked_upto == 1

    def test_infinite_best_dist_keeps_everything(self):
        grid, state = make_state()
        for idx in range(3):
            cell = (idx, 0)
            state.append_visit(0.1 * idx, cell)
            grid.add_mark(cell, state.qid)
        state.marked_upto = 3
        state.best_dist = math.inf
        state.reconcile_marks(grid, processed_upto=3)
        assert state.marked_upto == 3

    def test_epsilon_keeps_boundary_cell(self):
        grid, state = make_state()
        state.append_visit(0.0, (0, 0))
        state.append_visit(0.2 + grid.boundary_epsilon / 2, (1, 0))
        grid.add_mark((0, 0), state.qid)
        grid.add_mark((1, 0), state.qid)
        state.marked_upto = 2
        state.best_dist = 0.2
        state.reconcile_marks(grid, processed_upto=2)
        # The key exceeds best_dist by less than the epsilon: stays marked.
        assert state.marked_upto == 2

    def test_unmark_all(self):
        grid, state = make_state()
        for idx in range(3):
            cell = (idx, 0)
            state.append_visit(0.1 * idx, cell)
            grid.add_mark(cell, state.qid)
        state.marked_upto = 3
        state.unmark_all(grid)
        assert state.marked_upto == 0
        assert grid.total_marks == 0


class TestDropBookkeeping:
    def test_requires_unmarked_state(self):
        grid, state = make_state()
        state.append_visit(0.0, (0, 0))
        grid.add_mark((0, 0), state.qid)
        state.marked_upto = 1
        with pytest.raises(RuntimeError):
            state.drop_bookkeeping()

    def test_clears_structures(self):
        _grid, state = make_state()
        state.append_visit(0.0, (0, 0))
        state.heap.push_cell(0.5, 1, 1)
        state.marked_upto = 0
        state.drop_bookkeeping()
        assert state.visit_length == 0
        assert len(state.heap) == 0


class TestCycleScratch:
    def test_incomer_dedup_keeps_latest(self):
        sc = CycleScratch(k=3)
        sc.note_incomer(0.5, 7)
        sc.note_incomer(0.2, 7)  # same object updated again
        assert len(sc.in_list) == 1
        assert sc.in_list.dist_of(7) == 0.2

    def test_drop_incomer(self):
        sc = CycleScratch(k=3)
        sc.note_incomer(0.5, 7)
        sc.drop_incomer(7)
        assert len(sc.in_list) == 0
        sc.drop_incomer(7)  # idempotent

    def test_capacity_is_k(self):
        sc = CycleScratch(k=2)
        sc.note_incomer(0.3, 1)
        sc.note_incomer(0.2, 2)
        sc.note_incomer(0.1, 3)
        assert len(sc.in_list) == 2
        assert 1 not in sc.in_list  # worst incomer evicted

    def test_flags(self):
        sc = CycleScratch(k=2)
        assert not sc.touched
        sc.note_reorder()
        assert sc.touched
        assert sc.out_count == 0
        sc.note_outgoing()
        sc.note_outgoing()
        assert sc.out_count == 2
