"""Unit tests for the search heap H (Figure 3.4 machinery)."""

import pytest

from repro.core.heap import CELL, RECT, SearchHeap
from repro.core.partition import DOWN, LEFT, RIGHT, UP


class TestBasicOrdering:
    def test_pops_ascending_keys(self):
        heap = SearchHeap()
        heap.push_cell(0.9, 1, 1)
        heap.push_cell(0.1, 2, 2)
        heap.push_cell(0.5, 3, 3)
        keys = [heap.pop()[0] for _ in range(3)]
        assert keys == [0.1, 0.5, 0.9]

    def test_mixed_kinds_sorted_together(self):
        heap = SearchHeap()
        heap.push_rect(0.2, UP, 0)
        heap.push_cell(0.1, 0, 0)
        heap.push_rect(0.05, LEFT, 0)
        kinds = [heap.pop()[2] for _ in range(3)]
        assert kinds == [RECT, CELL, RECT]

    def test_tie_broken_by_insertion_order(self):
        heap = SearchHeap()
        heap.push_cell(0.5, 1, 1)
        heap.push_cell(0.5, 2, 2)
        first = heap.pop()
        second = heap.pop()
        assert (first[3], first[4]) == (1, 1)
        assert (second[3], second[4]) == (2, 2)

    def test_peek_does_not_pop(self):
        heap = SearchHeap()
        heap.push_cell(0.3, 1, 1)
        assert heap.peek_key() == 0.3
        assert len(heap) == 1

    def test_peek_empty_is_inf(self):
        assert SearchHeap().peek_key() == float("inf")

    def test_bool_and_len(self):
        heap = SearchHeap()
        assert not heap
        heap.push_cell(0.1, 0, 0)
        assert heap
        assert len(heap) == 1


class TestEntryPayloads:
    def test_cell_payload(self):
        heap = SearchHeap()
        heap.push_cell(0.25, 7, 3)
        key, _seq, kind, a, b = heap.pop()
        assert (key, kind, a, b) == (0.25, CELL, 7, 3)

    def test_rect_payload(self):
        heap = SearchHeap()
        heap.push_rect(0.75, DOWN, 2)
        key, _seq, kind, a, b = heap.pop()
        assert (key, kind, a, b) == (0.75, RECT, DOWN, 2)


class TestCounting:
    def test_cell_and_rect_entry_counts(self):
        heap = SearchHeap()
        heap.push_cell(0.1, 0, 0)
        heap.push_cell(0.2, 1, 0)
        heap.push_rect(0.3, UP, 0)
        heap.push_rect(0.4, RIGHT, 0)
        heap.push_rect(0.5, DOWN, 0)
        assert heap.cell_entry_count() == 2
        assert heap.rect_entry_count() == 3

    def test_clear(self):
        heap = SearchHeap()
        heap.push_cell(0.1, 0, 0)
        heap.push_rect(0.2, UP, 1)
        heap.clear()
        assert len(heap) == 0
        assert heap.cell_entry_count() == 0

    def test_entries_snapshot(self):
        heap = SearchHeap()
        heap.push_cell(0.1, 0, 0)
        snapshot = heap.entries()
        snapshot.clear()
        assert len(heap) == 1


class TestMonotonicDeheap:
    def test_deheap_sequence_never_decreases(self):
        # The CPM search relies on ascending de-heap keys (visit-list order).
        import random

        rng = random.Random(3)
        heap = SearchHeap()
        for _ in range(50):
            heap.push_cell(rng.random(), rng.randrange(10), rng.randrange(10))
        last = -1.0
        while heap:
            key = heap.pop()[0]
            assert key >= last
            last = key

    def test_interleaved_push_pop_monotone_when_pushes_dominate(self):
        # Pushing keys >= the last popped key keeps the sequence monotone
        # (this mirrors rectangle expansion: children keys >= parent key).
        heap = SearchHeap()
        heap.push_cell(0.1, 0, 0)
        key0 = heap.pop()[0]
        heap.push_cell(key0 + 0.1, 1, 1)
        heap.push_rect(key0 + 0.05, UP, 0)
        key1 = heap.pop()[0]
        assert key1 >= key0
