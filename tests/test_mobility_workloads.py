"""Tests for workload specs, the Brinkhoff generator and the uniform
generator (materialized update streams)."""

import pytest

from repro.mobility.brinkhoff import QUERY_ID_BASE, BrinkhoffGenerator
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import Workload, WorkloadSpec
from repro.updates import QueryUpdateKind


class TestWorkloadSpec:
    def test_defaults_mirror_table_6_1_shape(self):
        spec = WorkloadSpec()
        assert spec.k == 16
        assert spec.object_speed == "medium"
        assert spec.object_agility == 0.5
        assert spec.query_agility == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_objects=0)
        with pytest.raises(ValueError):
            WorkloadSpec(k=0)
        with pytest.raises(ValueError):
            WorkloadSpec(object_agility=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(query_agility=-0.1)
        with pytest.raises(ValueError):
            WorkloadSpec(timestamps=-1)

    def test_replace(self):
        spec = WorkloadSpec(n_objects=100)
        other = spec.replace(n_objects=200, k=4)
        assert other.n_objects == 200
        assert other.k == 4
        assert other.seed == spec.seed
        assert spec.n_objects == 100  # original untouched


SMALL = WorkloadSpec(
    n_objects=60, n_queries=4, k=3, timestamps=12, seed=5,
    object_agility=0.5, query_agility=0.4,
)


class TestBrinkhoffGenerator:
    def test_populations(self):
        wl = BrinkhoffGenerator(SMALL).generate()
        assert len(wl.initial_objects) == 60
        assert len(wl.initial_queries) == 4
        assert len(wl.batches) == 12

    def test_query_ids_namespaced(self):
        wl = BrinkhoffGenerator(SMALL).generate()
        assert all(qid >= QUERY_ID_BASE for qid in wl.initial_queries)
        assert all(oid < QUERY_ID_BASE for oid in wl.initial_objects)

    def test_stream_validates(self):
        wl = BrinkhoffGenerator(SMALL).generate()
        wl.validate()  # raises on any inconsistency

    def test_deterministic(self):
        a = BrinkhoffGenerator(SMALL).generate()
        b = BrinkhoffGenerator(SMALL).generate()
        assert a.initial_objects == b.initial_objects
        assert a.batches == b.batches

    def test_seed_changes_stream(self):
        a = BrinkhoffGenerator(SMALL).generate()
        b = BrinkhoffGenerator(SMALL.replace(seed=6)).generate()
        assert a.initial_objects != b.initial_objects

    def test_agility_controls_update_volume(self):
        quiet = BrinkhoffGenerator(SMALL.replace(object_agility=0.1)).generate()
        busy = BrinkhoffGenerator(SMALL.replace(object_agility=1.0)).generate()
        assert busy.total_object_updates > quiet.total_object_updates

    def test_zero_agility_produces_no_updates(self):
        wl = BrinkhoffGenerator(
            SMALL.replace(object_agility=0.0, query_agility=0.0)
        ).generate()
        assert wl.total_object_updates == 0
        assert wl.total_query_updates == 0

    def test_population_stays_constant(self):
        """Disappearing objects are replaced: the on-line population is N at
        every timestamp."""
        wl = BrinkhoffGenerator(SMALL.replace(object_speed="fast")).generate()
        online = set(wl.initial_objects)
        for batch in wl.batches:
            for upd in batch.object_updates:
                if upd.old is None:
                    online.add(upd.oid)
                elif upd.new is None:
                    online.discard(upd.oid)
            assert len(online) == 60

    def test_query_updates_are_moves(self):
        wl = BrinkhoffGenerator(SMALL).generate()
        for batch in wl.batches:
            for qu in batch.query_updates:
                assert qu.kind is QueryUpdateKind.MOVE
                assert qu.qid in wl.initial_queries

    def test_positions_inside_workspace(self):
        wl = BrinkhoffGenerator(SMALL).generate()
        rect = SMALL.rect
        for pos in wl.initial_objects.values():
            assert rect.contains_point(*pos)
        for batch in wl.batches:
            for upd in batch.object_updates:
                if upd.new is not None:
                    assert rect.contains_point(*upd.new)

    def test_mismatched_network_bounds_raises(self):
        from repro.mobility.network import grid_network

        net = grid_network(4, 4, bounds=(0.0, 0.0, 2.0, 2.0), seed=0)
        with pytest.raises(ValueError):
            BrinkhoffGenerator(SMALL, net)


class TestUniformGenerator:
    def test_populations_and_determinism(self):
        a = UniformGenerator(SMALL).generate()
        b = UniformGenerator(SMALL).generate()
        assert len(a.initial_objects) == 60
        assert len(a.batches) == 12
        assert a.batches == b.batches

    def test_stream_validates(self):
        UniformGenerator(SMALL).generate().validate()

    def test_displacement_bounded_by_speed(self):
        from repro.mobility.objects import speed_per_timestamp

        wl = UniformGenerator(SMALL).generate()
        step = speed_per_timestamp(SMALL.object_speed, SMALL.rect)
        for batch in wl.batches:
            for upd in batch.object_updates:
                assert upd.old is not None and upd.new is not None
                assert abs(upd.new[0] - upd.old[0]) <= step + 1e-12
                assert abs(upd.new[1] - upd.old[1]) <= step + 1e-12

    def test_no_appear_disappear_events(self):
        wl = UniformGenerator(SMALL).generate()
        for batch in wl.batches:
            for upd in batch.object_updates:
                assert upd.old is not None
                assert upd.new is not None


class TestWorkloadValidate:
    def test_detects_stale_old_position(self):
        from repro.updates import ObjectUpdate, UpdateBatch

        wl = Workload(
            spec=SMALL,
            initial_objects={1: (0.5, 0.5)},
            initial_queries={},
            batches=[
                UpdateBatch(0, (ObjectUpdate(1, (0.4, 0.4), (0.6, 0.6)),), ())
            ],
        )
        with pytest.raises(AssertionError, match="old position mismatch"):
            wl.validate()

    def test_detects_double_update(self):
        from repro.updates import ObjectUpdate, UpdateBatch

        wl = Workload(
            spec=SMALL,
            initial_objects={1: (0.5, 0.5)},
            initial_queries={},
            batches=[
                UpdateBatch(
                    0,
                    (
                        ObjectUpdate(1, (0.5, 0.5), (0.6, 0.6)),
                        ObjectUpdate(1, (0.6, 0.6), (0.7, 0.7)),
                    ),
                    (),
                )
            ],
        )
        with pytest.raises(AssertionError, match="updated twice"):
            wl.validate()

    def test_detects_duplicate_appearance(self):
        from repro.updates import ObjectUpdate, UpdateBatch

        wl = Workload(
            spec=SMALL,
            initial_objects={1: (0.5, 0.5)},
            initial_queries={},
            batches=[UpdateBatch(0, (ObjectUpdate(1, None, (0.6, 0.6)),), ())],
        )
        with pytest.raises(AssertionError, match="appeared while on-line"):
            wl.validate()
