"""Structural invariants of the baseline monitors under random streams.

Beyond result correctness (covered by the equivalence suites), each
baseline maintains internal state with its own contract:

* YPK-CNN is *stateless across cycles* apart from the previous result:
  its answer after any batch must equal a from-scratch two-step search
  over the current grid (self-consistency of the d_max refresh).
* SEA-CNN's answer-region marks must always equal the cells intersecting
  the circle ``(q, best_dist)`` (within the boundary epsilon), and no
  marks may leak after terminations.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.common import two_step_nn_search
from repro.baselines.sea import SeaCnnMonitor
from repro.baselines.ypk import YpkCnnMonitor
from repro.updates import ObjectUpdate

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
point = st.tuples(coord, coord)


@st.composite
def streams(draw):
    n_initial = draw(st.integers(min_value=1, max_value=18))
    initial = {oid: draw(point) for oid in range(n_initial)}
    n_batches = draw(st.integers(min_value=1, max_value=4))
    batches = []
    alive = set(initial)
    next_oid = n_initial
    for _ in range(n_batches):
        events = []
        used = set()
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            kind = draw(st.sampled_from(["move", "move", "appear", "disappear"]))
            if kind == "move" and alive - used:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("move", oid, draw(point)))
                used.add(oid)
            elif kind == "disappear" and len(alive - used) > 1:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("disappear", oid, None))
                used.add(oid)
                alive.discard(oid)
            else:
                events.append(("appear", next_oid, draw(point)))
                alive.add(next_oid)
                used.add(next_oid)
                next_oid += 1
        batches.append(events)
    return initial, batches


def apply_events(monitor, positions, events):
    updates = []
    for kind, oid, new in events:
        if kind == "move":
            updates.append(ObjectUpdate(oid, positions[oid], new))
            positions[oid] = new
        elif kind == "appear":
            updates.append(ObjectUpdate(oid, None, new))
            positions[oid] = new
        else:
            updates.append(ObjectUpdate(oid, positions.pop(oid), None))
    monitor.process(updates)


@given(streams(), point, st.integers(min_value=1, max_value=4))
@settings(max_examples=70, deadline=None)
def test_ypk_refresh_equals_fresh_search(script, q, k):
    initial, batches = script
    monitor = YpkCnnMonitor(cells_per_axis=6)
    monitor.load_objects(initial.items())
    positions = dict(initial)
    monitor.install_query(0, q, k)
    for events in batches:
        apply_events(monitor, positions, events)
        got = [d for d, _oid in monitor.result(0)]
        fresh = [d for d, _oid in two_step_nn_search(monitor.grid, q, k)]
        assert len(got) == len(fresh)
        assert all(abs(a - b) < 1e-9 for a, b in zip(got, fresh))


@given(streams(), point, st.integers(min_value=1, max_value=4))
@settings(max_examples=70, deadline=None)
def test_sea_marks_equal_answer_region(script, q, k):
    initial, batches = script
    monitor = SeaCnnMonitor(cells_per_axis=6)
    monitor.load_objects(initial.items())
    positions = dict(initial)
    monitor.install_query(0, q, k)
    for events in batches:
        apply_events(monitor, positions, events)
        entries = monitor.result(0)
        marked = monitor.answer_region_cells(0)
        if len(entries) < k:
            # Under-full: the monitor watches everything; no circle marks.
            assert marked == set()
            continue
        best = entries[-1][0]
        expected = set(
            monitor.grid.cells_in_circle(q, best + monitor.grid.boundary_epsilon)
        )
        assert marked == expected


@given(streams(), point, st.integers(min_value=1, max_value=3))
@settings(max_examples=50, deadline=None)
def test_sea_no_marks_leak_after_termination(script, q, k):
    initial, batches = script
    monitor = SeaCnnMonitor(cells_per_axis=6)
    monitor.load_objects(initial.items())
    positions = dict(initial)
    monitor.install_query(0, q, k)
    for events in batches:
        apply_events(monitor, positions, events)
    monitor.remove_query(0)
    assert monitor.grid.total_marks == 0


@given(streams(), point, st.integers(min_value=1, max_value=3))
@settings(max_examples=50, deadline=None)
def test_cpm_no_marks_leak_after_termination(script, q, k):
    from repro.core.cpm import CPMMonitor

    initial, batches = script
    monitor = CPMMonitor(cells_per_axis=6)
    monitor.load_objects(initial.items())
    positions = dict(initial)
    monitor.install_query(0, q, k)
    for events in batches:
        apply_events(monitor, positions, events)
    monitor.remove_query(0)
    assert monitor.grid.total_marks == 0


@given(streams(), point, st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_grid_population_consistency(script, q, k):
    """Every monitor's grid holds exactly the on-line objects."""
    from repro.core.cpm import CPMMonitor

    initial, batches = script
    monitors = [
        CPMMonitor(cells_per_axis=6),
        YpkCnnMonitor(cells_per_axis=6),
        SeaCnnMonitor(cells_per_axis=6),
    ]
    positions = dict(initial)
    for m in monitors:
        m.load_objects(initial.items())
        m.install_query(0, q, k)
    for events in batches:
        updates = []
        for kind, oid, new in events:
            if kind == "move":
                updates.append(ObjectUpdate(oid, positions[oid], new))
                positions[oid] = new
            elif kind == "appear":
                updates.append(ObjectUpdate(oid, None, new))
                positions[oid] = new
            else:
                updates.append(ObjectUpdate(oid, positions.pop(oid), None))
        for m in monitors:
            m.process(updates)
    for m in monitors:
        assert len(m.grid) == len(positions), m.name
        assert m.object_count == len(positions), m.name
