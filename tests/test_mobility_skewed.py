"""Tests for the skewed (clustered) workload generator."""

import pytest

from repro.baselines.brute import BruteForceMonitor
from repro.core.cpm import CPMMonitor
from repro.api.session import replay_workload
from repro.grid.grid import Grid
from repro.mobility.skewed import SkewedGenerator, occupancy_skew
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec

SPEC = WorkloadSpec(n_objects=400, n_queries=4, k=4, timestamps=10, seed=13)


class TestGeneration:
    def test_validates(self):
        SkewedGenerator(SPEC).generate().validate()

    def test_deterministic(self):
        a = SkewedGenerator(SPEC).generate()
        b = SkewedGenerator(SPEC).generate()
        assert a.initial_objects == b.initial_objects
        assert a.batches == b.batches

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SkewedGenerator(SPEC, hotspots=0)
        with pytest.raises(ValueError):
            SkewedGenerator(SPEC, spread=0.0)
        with pytest.raises(ValueError):
            SkewedGenerator(SPEC, reversion=1.5)

    def test_positions_in_workspace(self):
        wl = SkewedGenerator(SPEC).generate()
        rect = SPEC.rect
        for pos in wl.initial_objects.values():
            assert rect.contains_point(*pos)
        for batch in wl.batches:
            for upd in batch.object_updates:
                if upd.new is not None:
                    assert rect.contains_point(*upd.new)

    def test_actually_skewed(self):
        """Cell-occupancy variation must far exceed the uniform baseline."""
        def skew_of(workload):
            grid = Grid(16)
            for oid, (x, y) in workload.initial_objects.items():
                grid.insert(oid, x, y)
            counts = [grid.cell_size(i, j) for i in range(16) for j in range(16)]
            return occupancy_skew(counts)

        skewed = skew_of(SkewedGenerator(SPEC, spread=0.03).generate())
        uniform = skew_of(UniformGenerator(SPEC).generate())
        assert skewed > 2.0 * uniform

    def test_skew_persists_over_time(self):
        """The mean-reverting walk keeps clusters tight through the run."""
        wl = SkewedGenerator(SPEC, spread=0.03).generate()
        positions = dict(wl.initial_objects)
        for batch in wl.batches:
            for upd in batch.object_updates:
                if upd.new is None:
                    positions.pop(upd.oid, None)
                else:
                    positions[upd.oid] = upd.new
        grid = Grid(16)
        for oid, (x, y) in positions.items():
            grid.insert(oid, x, y)
        counts = [grid.cell_size(i, j) for i in range(16) for j in range(16)]
        assert occupancy_skew(counts) > 1.5

    def test_monitors_stay_correct_under_skew(self):
        wl = SkewedGenerator(SPEC).generate()
        cpm_log: list = []
        brute_log: list = []
        replay_workload(
            CPMMonitor(cells_per_axis=16), wl, collect_results=True, result_log=cpm_log
        )
        replay_workload(
            BruteForceMonitor(), wl, collect_results=True, result_log=brute_log
        )
        for got, want in zip(cpm_log, brute_log):
            for qid in want:
                assert [d for d, _ in got[qid]] == [d for d, _ in want[qid]]


class TestOccupancySkew:
    def test_uniform_counts_give_zero(self):
        assert occupancy_skew([5, 5, 5, 5]) == 0.0

    def test_empty(self):
        assert occupancy_skew([]) == 0.0
        assert occupancy_skew([0, 0]) == 0.0

    def test_concentration_increases_skew(self):
        spread_out = occupancy_skew([3, 2, 3, 2])
        concentrated = occupancy_skew([10, 0, 0, 0])
        assert concentrated > spread_out
