"""Property-based tests for the d-dimensional CPM package."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ndim.cpm import NdCPMMonitor
from repro.ndim.partition import NdConceptualPartition
from repro.updates import ObjectUpdate

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)


@st.composite
def nd_partitions(draw):
    d = draw(st.integers(min_value=1, max_value=4))
    cells = draw(st.integers(min_value=1, max_value=6 if d <= 3 else 4))
    core_lo = tuple(draw(st.integers(min_value=0, max_value=cells - 1)) for _ in range(d))
    core_hi = tuple(
        draw(st.integers(min_value=lo, max_value=cells - 1)) for lo in core_lo
    )
    return NdConceptualPartition(core_lo, core_hi, cells)


@given(nd_partitions())
@settings(max_examples=120, deadline=None)
def test_nd_partition_tiles_exactly_once(partition):
    counts: dict = {}
    for direction in range(partition.direction_count):
        level = 0
        while partition.exists(direction, level):
            for cell in partition.slab_cells(direction, level):
                counts[cell] = counts.get(cell, 0) + 1
            level += 1
    for cell in partition.core_cells():
        counts[cell] = counts.get(cell, 0) + 1
    assert len(counts) == partition.cells_per_axis**partition.dimensions
    assert all(c == 1 for c in counts.values())


@given(nd_partitions())
@settings(max_examples=80, deadline=None)
def test_nd_owner_agrees_with_enumeration(partition):
    for direction in range(partition.direction_count):
        level = 0
        while partition.exists(direction, level):
            for cell in partition.slab_cells(direction, level):
                assert partition.owner_of(cell) == (direction, level)
            level += 1


@st.composite
def nd_scripts(draw):
    d = draw(st.integers(min_value=1, max_value=3))
    point = st.tuples(*([coord] * d))
    n_initial = draw(st.integers(min_value=0, max_value=15))
    initial = {oid: draw(point) for oid in range(n_initial)}
    n_batches = draw(st.integers(min_value=1, max_value=4))
    batches = []
    alive = set(initial)
    next_oid = n_initial
    for _ in range(n_batches):
        events = []
        used = set()
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            kind = draw(st.sampled_from(["move", "appear", "disappear"]))
            if kind == "move" and alive - used:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("move", oid, draw(point)))
                used.add(oid)
            elif kind == "disappear" and alive - used:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("disappear", oid, None))
                used.add(oid)
                alive.discard(oid)
            else:
                events.append(("appear", next_oid, draw(point)))
                alive.add(next_oid)
                used.add(next_oid)
                next_oid += 1
        batches.append(events)
    q = draw(point)
    return d, initial, batches, q


@given(nd_scripts(), st.integers(min_value=1, max_value=4))
@settings(max_examples=100, deadline=None)
def test_nd_cpm_equals_brute_force_under_any_stream(script, k):
    d, initial, batches, q = script
    monitor = NdCPMMonitor(cells_per_axis=3, dimensions=d)
    monitor.load_objects(initial.items())
    positions = dict(initial)

    def expected():
        return sorted(math.dist(p, q) for p in positions.values())[:k]

    def got():
        return [dist for dist, _oid in monitor.result(0)]

    monitor.install_query(0, q, k)
    assert all(abs(a - b) < 1e-9 for a, b in zip(got(), expected()))
    assert len(got()) == len(expected())
    for events in batches:
        updates = []
        for kind, oid, new in events:
            if kind == "move":
                updates.append(ObjectUpdate(oid, positions[oid], new))
                positions[oid] = new
            elif kind == "appear":
                updates.append(ObjectUpdate(oid, None, new))
                positions[oid] = new
            else:
                updates.append(ObjectUpdate(oid, positions.pop(oid), None))
        monitor.process(updates)
        assert len(got()) == len(expected())
        assert all(abs(a - b) < 1e-9 for a, b in zip(got(), expected()))
