"""Failure-injection and boundary-condition tests (DESIGN.md Section 7).

Deliberately hostile inputs: NNs going off-line mid-cycle, populations
collapsing to zero, duplicate coordinates, boundary positions, queries on
cell corners, empty batches, malformed streams.
"""

import math

import pytest

from repro.baselines.sea import SeaCnnMonitor
from repro.baselines.ypk import YpkCnnMonitor
from repro.core.cpm import CPMMonitor
from repro.updates import (
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
    appear_update,
    disappear_update,
    move_update,
)

ALL_MONITORS = [
    lambda: CPMMonitor(cells_per_axis=8),
    lambda: YpkCnnMonitor(cells_per_axis=8),
    lambda: SeaCnnMonitor(cells_per_axis=8),
]


class TestPopulationCollapse:
    @pytest.mark.parametrize("make", ALL_MONITORS)
    def test_whole_population_disappears(self, make):
        monitor = make()
        objs = [(i, (0.1 * i + 0.05, 0.5)) for i in range(5)]
        monitor.load_objects(objs)
        monitor.install_query(0, (0.5, 0.5), 2)
        monitor.process([disappear_update(oid, pos) for oid, pos in objs])
        assert monitor.result(0) == []
        # And objects can come back afterwards.
        monitor.process([appear_update(100, (0.52, 0.51))])
        assert [oid for _d, oid in monitor.result(0)] == [100]

    @pytest.mark.parametrize("make", ALL_MONITORS)
    def test_all_nns_offline_simultaneously(self, make):
        monitor = make()
        near = [(i, (0.5 + 0.001 * (i + 1), 0.5)) for i in range(3)]
        far = [(10 + i, (0.05 * (i + 1), 0.9)) for i in range(4)]
        monitor.load_objects(near + far)
        monitor.install_query(0, (0.5, 0.5), 3)
        assert {oid for _d, oid in monitor.result(0)} == {0, 1, 2}
        monitor.process([disappear_update(oid, pos) for oid, pos in near])
        # The closest survivors are 13 (dist 0.50), 12 (0.53), 11 (0.57).
        assert {oid for _d, oid in monitor.result(0)} == {11, 12, 13}

    def test_cpm_empty_grid_query_then_appearances(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.install_query(0, (0.5, 0.5), 2)
        assert monitor.result(0) == []
        monitor.process([appear_update(1, (0.2, 0.2)), appear_update(2, (0.8, 0.9))])
        assert len(monitor.result(0)) == 2


class TestDegenerateGeometry:
    @pytest.mark.parametrize("make", ALL_MONITORS)
    def test_all_objects_at_same_position(self, make):
        monitor = make()
        monitor.load_objects([(i, (0.5, 0.5)) for i in range(6)])
        result = monitor.install_query(0, (0.5, 0.5), 3)
        assert [d for d, _oid in result] == [0.0, 0.0, 0.0]
        # Ties broken by id in every implementation.
        assert [oid for _d, oid in result] == [0, 1, 2]

    @pytest.mark.parametrize("make", ALL_MONITORS)
    def test_objects_on_workspace_edges(self, make):
        monitor = make()
        edge_objs = [
            (0, (0.0, 0.0)), (1, (1.0, 1.0)), (2, (0.0, 1.0)),
            (3, (1.0, 0.0)), (4, (0.5, 1.0)), (5, (1.0, 0.5)),
        ]
        monitor.load_objects(edge_objs)
        result = monitor.install_query(0, (1.0, 1.0), 2)
        assert result[0] == (0.0, 1)

    @pytest.mark.parametrize("make", ALL_MONITORS)
    def test_query_on_cell_boundary(self, make):
        monitor = make()
        monitor.load_objects([(1, (0.24, 0.25)), (2, (0.26, 0.25))])
        # 0.25 is an exact cell boundary of the 8x8 grid.
        result = monitor.install_query(0, (0.25, 0.25), 2)
        assert {oid for _d, oid in result} == {1, 2}

    def test_cpm_object_moves_onto_query_point(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects([(1, (0.9, 0.9)), (2, (0.8, 0.8))])
        monitor.install_query(0, (0.3, 0.3), 1)
        monitor.process([move_update(1, (0.9, 0.9), (0.3, 0.3))])
        assert monitor.result(0) == [(0.0, 1)]


class TestStreamEdgeCases:
    @pytest.mark.parametrize("make", ALL_MONITORS)
    def test_empty_batch_is_safe(self, make):
        monitor = make()
        monitor.load_objects([(1, (0.5, 0.5))])
        monitor.install_query(0, (0.5, 0.5), 1)
        before = monitor.result(0)
        monitor.process([])
        assert monitor.result(0) == before

    def test_cpm_rejects_move_of_unknown_object(self):
        monitor = CPMMonitor(cells_per_axis=8)
        with pytest.raises(KeyError):
            monitor.process([move_update(1, (0.5, 0.5), (0.6, 0.6))])

    def test_cpm_rejects_double_appearance(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.process([appear_update(1, (0.5, 0.5))])
        with pytest.raises(KeyError):
            monitor.process([appear_update(1, (0.6, 0.6))])

    def test_cpm_object_bounces_within_one_batch(self):
        """Move in, out, and back in within a single batch."""
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects([(1, (0.5, 0.5)), (2, (0.9, 0.9))])
        monitor.install_query(0, (0.5, 0.5), 1)
        monitor.process([
            move_update(2, (0.9, 0.9), (0.51, 0.5)),
            move_update(2, (0.51, 0.5), (0.9, 0.9)),
            move_update(2, (0.9, 0.9), (0.49, 0.5)),
        ])
        assert monitor.result(0) == [
            (pytest.approx(0.0), 1)
        ] or monitor.result(0)[0][1] == 1

    def test_terminate_and_reinsert_same_qid(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects([(1, (0.4, 0.4))])
        monitor.install_query(0, (0.5, 0.5), 1)
        monitor.process([], [QueryUpdate(0, QueryUpdateKind.TERMINATE)])
        monitor.process([], [QueryUpdate(0, QueryUpdateKind.INSERT, (0.1, 0.1), 1)])
        assert len(monitor.result(0)) == 1

    def test_query_churn_leaves_no_marks_behind(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects([(i, (0.1 * i, 0.1 * i)) for i in range(1, 9)])
        for round_ in range(5):
            monitor.install_query(round_, (0.5, 0.5), 2)
            monitor.remove_query(round_)
        assert monitor.grid.total_marks == 0

    def test_sea_query_churn_leaves_no_marks_behind(self):
        monitor = SeaCnnMonitor(cells_per_axis=8)
        monitor.load_objects([(i, (0.1 * i, 0.1 * i)) for i in range(1, 9)])
        for round_ in range(5):
            monitor.install_query(round_, (0.5, 0.5), 2)
            monitor.remove_query(round_)
        assert monitor.grid.total_marks == 0


class TestTinyWorkspaces:
    def test_one_by_one_grid(self):
        monitor = CPMMonitor(cells_per_axis=1)
        monitor.load_objects([(1, (0.2, 0.2)), (2, (0.8, 0.8))])
        result = monitor.install_query(0, (0.5, 0.5), 2)
        assert len(result) == 2
        monitor.process([move_update(1, (0.2, 0.2), (0.55, 0.55))])
        assert monitor.result(0)[0][1] == 1

    def test_single_row_grid(self):
        monitor = CPMMonitor(delta=0.1, bounds=(0.0, 0.0, 1.0, 0.1))
        monitor.load_objects([(1, (0.06, 0.05)), (2, (0.95, 0.05))])
        result = monitor.install_query(0, (0.5, 0.05), 1)
        assert result[0][1] == 1

    def test_non_unit_workspace(self):
        monitor = CPMMonitor(cells_per_axis=8, bounds=(-100.0, -100.0, 100.0, 100.0))
        monitor.load_objects([(1, (-50.0, -50.0)), (2, (50.0, 50.0))])
        result = monitor.install_query(0, (-40.0, -40.0), 1)
        assert result[0][1] == 1
        monitor.process([move_update(2, (50.0, 50.0), (-45.0, -45.0))])
        assert monitor.result(0)[0][1] == 2
