"""Service layer: shard plan, sharded monitor, executors, subscriptions.

The headline equivalence (sharded service == single engine, byte for
byte) is covered here deterministically and in
``test_property_sharded.py`` property-style.
"""

import pytest

from repro.core.cpm import CPMMonitor
from repro.api.session import Session, replay_workload
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.deltas import diff_results
from repro.service.executor import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardWorkerError,
)
from repro.service.service import MonitoringService
from repro.service.sharding import ShardedMonitor, ShardEngineFactory, ShardPlan
from repro.service.subscriptions import SubscriptionHub
from repro.updates import QueryUpdate, QueryUpdateKind, move_update


class TestShardPlan:
    def test_balanced_partition_covers_all_columns(self):
        plan = ShardPlan.build(4, 16)
        blocks = [list(plan.owned_columns(s)) for s in range(4)]
        assert [c for block in blocks for c in block] == list(range(16))
        assert all(len(block) == 4 for block in blocks)

    def test_uneven_partition_spreads_remainder(self):
        plan = ShardPlan.build(3, 16)
        sizes = [len(plan.owned_columns(s)) for s in range(3)]
        assert sorted(sizes) == [5, 5, 6]
        assert sum(sizes) == 16

    def test_shard_of_point_matches_column_owner(self):
        plan = ShardPlan.build(4, 16)
        assert plan.shard_of_point(0.0, 0.5) == 0
        assert plan.shard_of_point(0.26, 0.5) == 1
        assert plan.shard_of_point(0.99, 0.1) == 3
        # Out-of-bounds points clamp like Grid.cell_of does.
        assert plan.shard_of_point(-5.0, 0.5) == 0
        assert plan.shard_of_point(5.0, 0.5) == 3

    def test_shard_of_cell_ignores_row(self):
        plan = ShardPlan.build(2, 8)
        assert plan.shard_of_cell(3, 0) == plan.shard_of_cell(3, 7) == 0
        assert plan.shard_of_cell(4, 2) == 1

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ShardPlan.build(0, 16)
        with pytest.raises(ValueError):
            ShardPlan.build(32, 16)  # more shards than columns
        with pytest.raises(ValueError):
            ShardPlan.build(1, 0)

    def test_non_unit_bounds(self):
        plan = ShardPlan.build(2, 8, bounds=(10.0, -5.0, 30.0, 5.0))
        assert plan.shard_of_point(10.0, 0.0) == 0
        assert plan.shard_of_point(29.9, 0.0) == 1


class TestShardEngineFactory:
    def test_builds_each_algorithm(self):
        for algorithm in ("CPM", "YPK-CNN", "SEA-CNN"):
            monitor = ShardEngineFactory(8, algorithm=algorithm)()
            assert monitor.name == algorithm

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            ShardEngineFactory(8, algorithm="XYZ")()


def small_workload(**overrides):
    params = dict(n_objects=120, n_queries=6, k=3, timestamps=8, seed=21)
    params.update(overrides)
    return BrinkhoffGenerator(WorkloadSpec(**params)).generate()


def replay(monitor, workload):
    log: list = []
    report = replay_workload(
        monitor, workload, collect_results=True, result_log=log
    )
    return report, log


class TestShardedEquivalence:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_byte_identical_results(self, n_shards):
        workload = small_workload(query_agility=0.6, object_speed="fast")
        ref_report, ref_log = replay(CPMMonitor(cells_per_axis=16), workload)
        sharded = ShardedMonitor(n_shards, cells_per_axis=16)
        report, log = replay(sharded, workload)
        assert log == ref_log
        # Search work is partitioned, not duplicated: the deterministic
        # counters match the single engine exactly.
        assert report.total_cell_scans == ref_report.total_cell_scans
        assert report.total_results_changed == ref_report.total_results_changed

    def test_uniform_workload_equivalence(self):
        spec = WorkloadSpec(n_objects=100, n_queries=5, k=4, timestamps=6, seed=9)
        workload = UniformGenerator(spec).generate()
        _, ref_log = replay(CPMMonitor(cells_per_axis=16), workload)
        _, log = replay(ShardedMonitor(4, cells_per_axis=16), workload)
        assert log == ref_log

    def test_sharded_baseline_algorithms(self):
        workload = small_workload()
        for algorithm in ("YPK-CNN", "SEA-CNN"):
            single = ShardEngineFactory(16, algorithm=algorithm)()
            _, ref_log = replay(single, workload)
            sharded = ShardedMonitor(2, cells_per_axis=16, algorithm=algorithm)
            _, log = replay(sharded, workload)
            assert log == ref_log, algorithm

    def test_delta_stream_equivalence_with_cross_shard_moves(self):
        workload = small_workload(query_agility=1.0)
        single = CPMMonitor(cells_per_axis=16)
        sharded = ShardedMonitor(4, cells_per_axis=16)
        for monitor in (single, sharded):
            monitor.load_objects(workload.initial_objects.items())
            for qid, point in workload.initial_queries.items():
                monitor.install_query(qid, point, workload.spec.k)
        crossings = 0
        for batch in workload.batches:
            for qu in batch.query_updates:
                if qu.kind is QueryUpdateKind.MOVE:
                    old = sharded.query_shard(qu.qid)
                    new = sharded.plan.shard_of_point(qu.point[0], qu.point[1])
                    crossings += old != new
            expect = single.process_deltas(batch.object_updates, batch.query_updates)
            got = sharded.process_deltas(batch.object_updates, batch.query_updates)
            assert got == expect, batch.timestamp
        assert crossings > 0, "workload exercised no cross-shard moves"

    def test_queries_route_to_owning_shards(self):
        sharded = ShardedMonitor(4, cells_per_axis=16)
        sharded.load_objects([(1, (0.1, 0.1)), (2, (0.9, 0.9))])
        sharded.install_query(1, (0.05, 0.5), 1)
        sharded.install_query(2, (0.95, 0.5), 1)
        assert sharded.query_shard(1) == 0
        assert sharded.query_shard(2) == 3
        assert sharded.shard_query_counts() == [1, 0, 0, 1]
        # Serial executor: only the owning shard holds the query state.
        engines = sharded.executor.monitors()
        assert engines[0].query_ids() == [1]
        assert engines[3].query_ids() == [2]
        assert all(e.object_count == 2 for e in engines)

    def test_terminate_and_duplicate_install_match_single_engine(self):
        sharded = ShardedMonitor(2, cells_per_axis=8)
        sharded.load_objects([(1, (0.3, 0.5))])
        sharded.install_query(7, (0.2, 0.5), 1)
        with pytest.raises(KeyError):
            sharded.install_query(7, (0.2, 0.5), 1)
        with pytest.raises(KeyError):
            sharded.remove_query(8)
        sharded.remove_query(7)
        assert sharded.query_ids() == []
        with pytest.raises(KeyError):
            sharded.process([], [QueryUpdate(7, QueryUpdateKind.TERMINATE)])

    def test_bad_query_batch_leaves_router_untouched(self):
        # A batch that fails validation must raise before any routing or
        # shard work happens: the router and the engines stay consistent.
        sharded = ShardedMonitor(2, cells_per_axis=8)
        sharded.load_objects([(1, (0.3, 0.5))])
        sharded.install_query(7, (0.2, 0.5), 1)
        bad_batches = [
            # terminate known + duplicate-insert of an installed query
            [
                QueryUpdate(7, QueryUpdateKind.TERMINATE),
                QueryUpdate(9, QueryUpdateKind.INSERT, (0.8, 0.5), 1),
                QueryUpdate(9, QueryUpdateKind.INSERT, (0.8, 0.5), 1),
            ],
            # move of an unknown query after a valid terminate
            [
                QueryUpdate(7, QueryUpdateKind.TERMINATE),
                QueryUpdate(42, QueryUpdateKind.MOVE, (0.8, 0.5), 1),
            ],
        ]
        for batch in bad_batches:
            with pytest.raises(KeyError):
                sharded.process([], batch)
            assert sharded.query_ids() == [7]
            assert sharded.result_table().keys() == {7}
            assert sharded.executor.monitors()[0].query_ids() == [7]

    def test_double_cross_shard_move_same_cycle(self):
        # A query bouncing A -> B -> A within one batch: transit shard B
        # saw only a transient install; the merged delta must still diff
        # against the true pre-cycle result (single-engine view).
        single = CPMMonitor(cells_per_axis=8)
        sharded = ShardedMonitor(2, cells_per_axis=8)
        objs = [(i, (i / 10.0, 0.5)) for i in range(1, 10)]
        for m in (single, sharded):
            m.load_objects(list(objs))
            m.install_query(7, (0.2, 0.5), 3)
        assert sharded.query_shard(7) == 0
        bounce = [
            QueryUpdate(7, QueryUpdateKind.MOVE, (0.9, 0.5), 3),   # -> shard 1
            QueryUpdate(7, QueryUpdateKind.MOVE, (0.25, 0.5), 3),  # -> shard 0
        ]
        expect = single.process_deltas([], bounce)
        got = sharded.process_deltas([], bounce)
        assert got == expect
        assert sharded.query_shard(7) == 0
        # And the A -> B -> C chain (needs 4 shards for three columns).
        single4 = CPMMonitor(cells_per_axis=8)
        sharded4 = ShardedMonitor(4, cells_per_axis=8)
        for m in (single4, sharded4):
            m.load_objects(list(objs))
            m.install_query(7, (0.1, 0.5), 3)
        chain = [
            QueryUpdate(7, QueryUpdateKind.MOVE, (0.4, 0.5), 3),
            QueryUpdate(7, QueryUpdateKind.MOVE, (0.9, 0.5), 3),
        ]
        assert sharded4.process_deltas([], chain) == single4.process_deltas(
            [], chain
        )

    def test_insert_then_terminate_same_cycle(self):
        single = CPMMonitor(cells_per_axis=8)
        sharded = ShardedMonitor(2, cells_per_axis=8)
        for m in (single, sharded):
            m.load_objects([(1, (0.3, 0.5))])
        batch = [
            QueryUpdate(9, QueryUpdateKind.INSERT, (0.5, 0.5), 1),
            QueryUpdate(9, QueryUpdateKind.TERMINATE),
        ]
        assert sharded.process([], list(batch)) == single.process([], list(batch))
        assert sharded.query_ids() == single.query_ids() == []
        # Delta view: the transient query drains to a terminated delta.
        d1 = single.process_deltas(
            [],
            [
                QueryUpdate(9, QueryUpdateKind.INSERT, (0.5, 0.5), 1),
                QueryUpdate(9, QueryUpdateKind.TERMINATE),
            ],
        )
        d2 = sharded.process_deltas(
            [],
            [
                QueryUpdate(9, QueryUpdateKind.INSERT, (0.5, 0.5), 1),
                QueryUpdate(9, QueryUpdateKind.TERMINATE),
            ],
        )
        assert d1 == d2

    def test_terminate_then_reinsert_same_cycle(self):
        single = CPMMonitor(cells_per_axis=8)
        sharded = ShardedMonitor(2, cells_per_axis=8)
        for m in (single, sharded):
            m.load_objects([(1, (0.3, 0.5)), (2, (0.8, 0.5))])
            m.install_query(7, (0.2, 0.5), 1)
        batch = [
            QueryUpdate(7, QueryUpdateKind.TERMINATE),
            QueryUpdate(7, QueryUpdateKind.INSERT, (0.9, 0.5), 1),
        ]
        assert sharded.process([], batch) == single.process([], batch)
        assert sharded.result_table() == single.result_table()
        assert sharded.query_shard(7) == sharded.plan.shard_of_point(0.9, 0.5)

    def test_object_accounting(self):
        sharded = ShardedMonitor(2, cells_per_axis=8)
        sharded.load_objects([(1, (0.3, 0.5)), (2, (0.8, 0.5))])
        assert sharded.object_count == 2
        assert sharded.object_position(1) == (0.3, 0.5)
        sharded.process([move_update(1, (0.3, 0.5), (0.6, 0.5))])
        assert sharded.object_position(1) == (0.6, 0.5)


class TestProcessExecutor:
    def test_equivalence_and_cleanup(self):
        workload = small_workload(timestamps=5)
        _, ref_log = replay(CPMMonitor(cells_per_axis=16), workload)
        with ShardedMonitor(
            2, cells_per_axis=16, executor=ProcessShardExecutor()
        ) as sharded:
            _, log = replay(sharded, workload)
            assert log == ref_log
        assert sharded.executor.n_shards == 0  # workers reaped

    def test_worker_errors_propagate(self):
        executor = ProcessShardExecutor()
        try:
            executor.start([ShardEngineFactory(8), ShardEngineFactory(8)])
            with pytest.raises(ShardWorkerError, match="KeyError"):
                executor.call(0, "remove_query", 12345)
        finally:
            executor.close()

    def test_call_all_error_does_not_desync_protocol(self):
        executor = ProcessShardExecutor()
        try:
            executor.start([ShardEngineFactory(8), ShardEngineFactory(8)])
            # Shard 0 fails (k=0 is invalid), shard 1 succeeds; the healthy
            # reply must be drained so the next command still lines up.
            with pytest.raises(ShardWorkerError, match="shard 0"):
                executor.call_all(
                    "install_query", [(1, (0.5, 0.5), 0), (1, (0.5, 0.5), 1)]
                )
            (ids0, _), (ids1, _) = executor.call_all("query_ids", [(), ()])
            assert ids0 == []  # the failing install installed nothing
            assert ids1 == [1]
        finally:
            executor.close()

    def test_serial_executor_guards(self):
        executor = SerialShardExecutor()
        executor.start([ShardEngineFactory(8)])
        with pytest.raises(RuntimeError):
            executor.start([ShardEngineFactory(8)])
        with pytest.raises(ValueError):
            executor.call_all("result_table", [(), ()])


class TestStatsAggregation:
    def test_sharded_counters_feed_run_report(self):
        workload = small_workload(timestamps=4)
        single_report = replay_workload(CPMMonitor(cells_per_axis=16), workload)
        sharded_report = replay_workload(ShardedMonitor(2, cells_per_axis=16), workload)
        assert sharded_report.total_cell_scans == single_report.total_cell_scans
        # Maintenance is replicated to both shards: insert/delete counters
        # double while the query-driven scan counters stay identical.
        single_ops = sum(c.stats.inserts + c.stats.deletes for c in single_report.cycles)
        sharded_ops = sum(
            c.stats.inserts + c.stats.deletes for c in sharded_report.cycles
        )
        assert sharded_ops == 2 * single_ops


class TestSubscriptionHub:
    def make_delta(self, qid, changed=True):
        if changed:
            return diff_results(qid, [], [(0.1, 1)])
        return diff_results(qid, [(0.1, 1)], [(0.1, 1)])

    def test_filtering_by_qid(self):
        hub = SubscriptionHub()
        seen = []
        hub.subscribe(lambda ts, d: seen.append((ts, d.qid)), qids=[1, 3])
        delivered = hub.publish(7, {q: self.make_delta(q) for q in (1, 2, 3)})
        assert delivered == 2
        assert seen == [(7, 1), (7, 3)]

    def test_unchanged_deltas_skipped_unless_requested(self):
        hub = SubscriptionHub()
        quiet, chatty = [], []
        hub.subscribe(lambda ts, d: quiet.append(d.qid))
        hub.subscribe(lambda ts, d: chatty.append(d.qid), include_unchanged=True)
        hub.publish(0, {1: self.make_delta(1, changed=False)})
        assert quiet == [] and chatty == [1]

    def test_unsubscribe_and_counters(self):
        hub = SubscriptionHub()
        sub = hub.subscribe(lambda ts, d: None)
        assert hub.has_subscribers and sub.active
        hub.publish(0, {1: self.make_delta(1)})
        assert sub.delivered == 1
        sub.close()
        sub.close()  # idempotent
        assert not hub.has_subscribers and not sub.active
        assert hub.publish(1, {1: self.make_delta(1)}) == 0

    def test_callback_may_unsubscribe_during_publish(self):
        hub = SubscriptionHub()
        first = hub.subscribe(lambda ts, d: first.close())
        rest = []
        hub.subscribe(lambda ts, d: rest.append(d.qid))
        hub.publish(0, {1: self.make_delta(1), 2: self.make_delta(2)})
        # The self-removing callback got the snapshot fan-out; the second
        # subscriber saw everything.
        assert rest == [1, 2]

    def test_publish_is_ordered_by_qid(self):
        hub = SubscriptionHub()
        order = []
        hub.subscribe(lambda ts, d: order.append(d.qid))
        hub.publish(0, {3: self.make_delta(3), 1: self.make_delta(1)})
        assert order == [1, 3]


class TestMonitoringService:
    def test_tick_matches_process_when_unsubscribed(self):
        workload = small_workload(timestamps=4)
        monitor = CPMMonitor(cells_per_axis=16)
        shadow = CPMMonitor(cells_per_axis=16)
        service = MonitoringService(monitor)
        for m in (monitor, shadow):
            m.load_objects(workload.initial_objects.items())
        for qid, point in workload.initial_queries.items():
            service.install_query(qid, point, workload.spec.k)
            shadow.install_query(qid, point, workload.spec.k)
        for batch in workload.batches:
            assert service.tick_batch(batch) == shadow.process(
                batch.object_updates, batch.query_updates
            )

    def test_tick_changed_set_identical_on_both_paths(self):
        workload = small_workload(timestamps=5)
        plain = MonitoringService(CPMMonitor(cells_per_axis=16))
        streaming = MonitoringService(CPMMonitor(cells_per_axis=16))
        streaming.subscribe(lambda ts, d: None)
        for service in (plain, streaming):
            service.load_objects(workload.initial_objects.items())
            for qid, point in workload.initial_queries.items():
                service.install_query(qid, point, workload.spec.k)
        for batch in workload.batches:
            assert plain.tick_batch(batch) == streaming.tick_batch(batch)

    def test_install_and_remove_stream_snapshots(self):
        service = MonitoringService(CPMMonitor(cells_per_axis=8))
        service.load_objects([(1, (0.4, 0.5)), (2, (0.6, 0.5))])
        events = []
        service.subscribe(lambda ts, d: events.append((ts, d.qid, d.terminated)))
        service.install_query(5, (0.5, 0.5), 2)
        service.remove_query(5)
        assert events == [(None, 5, False), (None, 5, True)]

    def test_server_streams_while_replaying(self):
        workload = small_workload(timestamps=4)
        monitor = ShardedMonitor(2, cells_per_axis=16)
        service = MonitoringService(monitor)
        timestamps = set()
        service.subscribe(lambda ts, d: timestamps.add(ts))
        report = Session(service).replay(workload)
        assert report.timestamps == len(workload.batches)
        # Install snapshots (None) plus every cycle that changed something.
        assert None in timestamps
        assert {b.timestamp for b in workload.batches} <= timestamps

    def test_session_replay_reuses_service_hub(self):
        # Handing a pre-built service to Session keeps its hub (and
        # therefore its subscribers) wired through the replay.
        workload = small_workload(timestamps=2)
        service = MonitoringService(CPMMonitor(cells_per_axis=8))
        session = Session(service)
        assert session.service is service
        events = []
        service.subscribe(lambda ts, d: events.append(ts))
        session.replay(workload)
        assert events
