"""Tests for the d-dimensional CPM package (footnote 3 extension)."""

import math
import random

import pytest

from repro.ndim.cpm import NdCPMMonitor
from repro.ndim.grid import NdGrid
from repro.ndim.partition import NdConceptualPartition
from repro.updates import ObjectUpdate, appear_update, disappear_update, move_update


def nd_scatter(n, d, seed=0):
    rng = random.Random(seed)
    return [(oid, tuple(rng.random() for _ in range(d))) for oid in range(n)]


def brute_knn(positions, q, k):
    return sorted((math.dist(p, q), oid) for oid, p in positions.items())[:k]


class TestNdGrid:
    def test_cell_of_and_clamping(self):
        grid = NdGrid(4, dimensions=3)
        assert grid.cell_of((0.0, 0.0, 0.0)) == (0, 0, 0)
        assert grid.cell_of((0.99, 0.5, 0.26)) == (3, 2, 1)
        assert grid.cell_of((1.0, 1.0, 1.0)) == (3, 3, 3)
        assert grid.cell_of((-1.0, 2.0, 0.5)) == (0, 3, 2)

    def test_dimension_mismatch_raises(self):
        grid = NdGrid(4, dimensions=3)
        with pytest.raises(ValueError):
            grid.cell_of((0.5, 0.5))

    def test_mindist_zero_inside(self):
        grid = NdGrid(4, dimensions=3)
        q = (0.3, 0.6, 0.9)
        assert grid.mindist(grid.cell_of(q), q) == 0.0

    def test_mindist_lower_bound(self):
        rng = random.Random(1)
        grid = NdGrid(4, dimensions=3)
        for oid, p in nd_scatter(50, 3, seed=2):
            grid.insert(oid, p)
        q = tuple(rng.random() for _ in range(3))
        for cell in grid.all_cells():
            md = grid.mindist(cell, q)
            for _oid, p in grid.peek(cell).items():
                assert md <= math.dist(p, q) + 1e-12

    def test_boundary_object_zero_mindist(self):
        grid = NdGrid(6, dimensions=3)
        q = (1.0, 1.0, 1.0)
        assert grid.mindist(grid.cell_of(q), q) == 0.0

    def test_insert_delete_and_marks(self):
        grid = NdGrid(4, dimensions=3)
        cell = grid.insert(1, (0.1, 0.2, 0.3))
        assert len(grid) == 1
        grid.add_mark(cell, 7)
        assert grid.marks(cell) == {7}
        grid.remove_mark(cell, 7)
        assert grid.total_marks == 0
        grid.delete(1, (0.1, 0.2, 0.3))
        assert len(grid) == 0

    def test_non_cubic_bounds(self):
        grid = NdGrid(4, bounds=[(0.0, 2.0), (0.0, 1.0), (-1.0, 1.0)])
        assert grid.deltas == (0.5, 0.25, 0.5)
        assert grid.cell_of((1.9, 0.1, 0.9)) == (3, 0, 3)

    def test_total_cells(self):
        assert NdGrid(3, dimensions=4).total_cells == 81


class TestNdPartition:
    @pytest.mark.parametrize("d,cells", [(1, 7), (2, 6), (3, 5), (4, 4)])
    def test_tiles_grid_exactly_once(self, d, cells):
        rng = random.Random(d)
        core = tuple(rng.randrange(cells) for _ in range(d))
        part = NdConceptualPartition.around_cell(core, cells)
        counts = {}
        for direction in range(part.direction_count):
            level = 0
            while part.exists(direction, level):
                for cell in part.slab_cells(direction, level):
                    counts[cell] = counts.get(cell, 0) + 1
                level += 1
        for cell in part.core_cells():
            counts[cell] = counts.get(cell, 0) + 1
        assert len(counts) == cells**d
        assert all(c == 1 for c in counts.values())

    def test_block_core_tiles(self):
        part = NdConceptualPartition((1, 0, 2), (2, 1, 2), 5)
        counts = {}
        for direction in range(6):
            level = 0
            while part.exists(direction, level):
                for cell in part.slab_cells(direction, level):
                    counts[cell] = counts.get(cell, 0) + 1
                level += 1
        for cell in part.core_cells():
            counts[cell] = counts.get(cell, 0) + 1
        assert len(counts) == 125
        assert all(c == 1 for c in counts.values())

    def test_owner_of_matches_enumeration(self):
        part = NdConceptualPartition.around_cell((2, 2, 2), 5)
        for direction in range(6):
            level = 0
            while part.exists(direction, level):
                for cell in part.slab_cells(direction, level):
                    assert part.owner_of(cell) == (direction, level)
                level += 1
        assert part.owner_of((2, 2, 2)) is None

    def test_two_dimensional_rings_match_2d_package(self):
        """Corner assignment differs from the 2D pinwheel (axis priority vs
        rotation), but each ring's total cell count — and hence the overall
        tiling — is identical."""
        from repro.core.partition import DIRECTIONS, ConceptualPartition

        nd = NdConceptualPartition.around_cell((3, 4), 9)
        p2 = ConceptualPartition.around_cell((3, 4), 9, 9)
        for level in range(5):
            nd_ring = sum(
                sum(1 for _ in nd.slab_cells(direction, level))
                for direction in range(nd.direction_count)
                if nd.exists(direction, level)
            )
            p2_ring = sum(
                p2.strip_cell_count(direction, level)
                for direction in DIRECTIONS
                if p2.exists(direction, level)
            )
            assert nd_ring == p2_ring

    def test_invalid_core_raises(self):
        with pytest.raises(ValueError):
            NdConceptualPartition.around_cell((5, 5), 4)

    def test_slab_distance_recurrence(self):
        """d-dimensional Lemma 3.1: slab mindist == gap0 + level * delta."""
        grid = NdGrid(6, dimensions=3)
        q = (0.31, 0.52, 0.77)
        part = NdConceptualPartition.around_cell(grid.cell_of(q), 6)
        for direction in range(6):
            if not part.exists(direction, 0):
                continue
            axis, _sign = part.direction_axis_sign(direction)
            level = 0
            while part.exists(direction, level):
                slab_min = min(
                    grid.mindist(cell, q) for cell in part.slab_cells(direction, level)
                )
                # All slabs span q's projection: min mindist == perpendicular.
                level_keys = [
                    grid.mindist(cell, q) for cell in part.slab_cells(direction, level)
                ]
                assert min(level_keys) == pytest.approx(slab_min)
                if level > 0:
                    assert slab_min == pytest.approx(
                        prev + grid.deltas[axis], abs=1e-9
                    )
                prev = slab_min
                level += 1


class TestNdCPMSearch:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_matches_brute_force(self, d):
        monitor = NdCPMMonitor(cells_per_axis=4, dimensions=d)
        objs = nd_scatter(60, d, seed=d)
        monitor.load_objects(objs)
        positions = dict(objs)
        rng = random.Random(d + 10)
        for qid in range(6):
            q = tuple(rng.random() for _ in range(d))
            k = rng.choice([1, 3, 5])
            assert monitor.install_query(qid, q, k) == brute_knn(positions, q, k)

    def test_k_larger_than_population(self):
        monitor = NdCPMMonitor(cells_per_axis=3, dimensions=3)
        monitor.load_objects([(1, (0.5, 0.5, 0.5))])
        result = monitor.install_query(0, (0.1, 0.1, 0.1), 4)
        assert len(result) == 1
        assert math.isinf(monitor.best_dist(0))

    def test_empty_grid(self):
        monitor = NdCPMMonitor(cells_per_axis=3, dimensions=3)
        assert monitor.install_query(0, (0.5, 0.5, 0.5), 2) == []

    def test_dimension_mismatch_raises(self):
        monitor = NdCPMMonitor(cells_per_axis=3, dimensions=3)
        with pytest.raises(ValueError):
            monitor.install_query(0, (0.5, 0.5), 1)

    def test_visit_keys_ascending(self):
        monitor = NdCPMMonitor(cells_per_axis=4, dimensions=3)
        monitor.load_objects(nd_scatter(40, 3, seed=5))
        monitor.install_query(0, (0.4, 0.6, 0.5), 3)
        state = monitor._queries[0]
        assert state.visit_keys == sorted(state.visit_keys)

    def test_search_is_cell_minimal(self):
        monitor = NdCPMMonitor(cells_per_axis=4, dimensions=3)
        monitor.load_objects(nd_scatter(50, 3, seed=6))
        q = (0.5, 0.5, 0.5)
        monitor.install_query(0, q, 2)
        state = monitor._queries[0]
        best = state.best_dist
        visited = set(state.visit_cells)
        for cell in monitor.grid.all_cells():
            md = monitor.grid.mindist(cell, q)
            if md < best - 1e-12:
                assert cell in visited
            elif md > best + 1e-12:
                assert cell not in visited

    def test_remove_query_unmarks(self):
        monitor = NdCPMMonitor(cells_per_axis=4, dimensions=3)
        monitor.load_objects(nd_scatter(40, 3, seed=7))
        monitor.install_query(0, (0.5, 0.5, 0.5), 2)
        assert monitor.grid.total_marks > 0
        monitor.remove_query(0)
        assert monitor.grid.total_marks == 0


class TestNdCPMMonitoring:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_random_update_stream(self, d):
        rng = random.Random(40 + d)
        monitor = NdCPMMonitor(cells_per_axis=4, dimensions=d)
        objs = nd_scatter(50, d, seed=40 + d)
        monitor.load_objects(objs)
        positions = dict(objs)
        q1 = tuple(0.5 for _ in range(d))
        q2 = tuple(rng.random() for _ in range(d))
        monitor.install_query(0, q1, 3)
        monitor.install_query(1, q2, 2)
        for t in range(10):
            updates = []
            for oid in rng.sample(list(positions), 12):
                old = positions[oid]
                new = tuple(rng.random() for _ in range(d))
                positions[oid] = new
                updates.append(move_update(oid, old, new))
            monitor.process(updates)
            assert monitor.result(0) == brute_knn(positions, q1, 3), (d, t)
            assert monitor.result(1) == brute_knn(positions, q2, 2), (d, t)

    def test_appear_disappear(self):
        monitor = NdCPMMonitor(cells_per_axis=4, dimensions=3)
        monitor.load_objects([(1, (0.9, 0.9, 0.9))])
        monitor.install_query(0, (0.5, 0.5, 0.5), 1)
        monitor.process([appear_update(2, (0.51, 0.5, 0.5))])
        assert monitor.result(0)[0][1] == 2
        monitor.process([disappear_update(2, (0.51, 0.5, 0.5))])
        assert monitor.result(0)[0][1] == 1

    def test_merge_without_grid_access(self):
        monitor = NdCPMMonitor(cells_per_axis=4, dimensions=3)
        monitor.load_objects([(1, (0.5, 0.5, 0.52)), (2, (0.9, 0.9, 0.9))])
        monitor.install_query(0, (0.5, 0.5, 0.5), 1)
        monitor.reset_stats()
        monitor.process([
            ObjectUpdate(1, (0.5, 0.5, 0.52), (0.9, 0.1, 0.9)),   # outgoing
            ObjectUpdate(2, (0.9, 0.9, 0.9), (0.5, 0.5, 0.49)),   # incomer
        ])
        assert monitor.stats.cell_scans == 0
        assert monitor.result(0)[0][1] == 2

    def test_nn_departure_triggers_recompute(self):
        monitor = NdCPMMonitor(cells_per_axis=4, dimensions=3)
        objs = nd_scatter(40, 3, seed=9)
        monitor.load_objects(objs)
        positions = dict(objs)
        q = (0.5, 0.5, 0.5)
        monitor.install_query(0, q, 2)
        nn_oid = monitor.result(0)[0][1]
        old = positions[nn_oid]
        monitor.process([move_update(nn_oid, old, (0.01, 0.99, 0.01))])
        positions[nn_oid] = (0.01, 0.99, 0.01)
        assert monitor.result(0) == brute_knn(positions, q, 2)
