"""Chaos suite: seeded fault injection across the service and wire tiers.

The headline acceptance checks:

* a seeded :class:`repro.testing.faults.FaultPlan` SIGKILLing a shard
  worker mid-replay completes (RESTART policy) with results **and**
  deterministic counters byte-identical to a fault-free serial run —
  the supervisor's command-log replay is exact, not approximate;
* a :class:`repro.api.client.Client` survives a forced mid-stream
  disconnect, reconnecting and re-syncing to a snapshot equal to the
  server's own result table.

Process-spawning and socket-level tests are marked ``chaos`` so CI can
run them as their own job (they also run in the plain suite — they are
fast at these workload sizes).
"""

import socket
import threading
import time

import pytest

from repro.api import wire
from repro.api.client import Client, RemoteError
from repro.api.queries import KnnSpec
from repro.api.retry import ReconnectPolicy
from repro.api.server import MonitorSocketServer
from repro.api.session import Session, replay_workload
from repro.core.cpm import CPMMonitor
from repro.ingest.buffer import IngestBuffer
from repro.ingest.driver import IngestDriver, ThreadedFeedPump
from repro.ingest.feeds import CycleMark, SocketFeed, UpdateFeed
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.executor import (
    ProcessShardExecutor,
    ShardCrashError,
    ShardTimeoutError,
)
from repro.service.partition import PartitionedMonitor
from repro.service.service import MonitoringService
from repro.service.sharding import ShardedMonitor, ShardEngineFactory
from repro.service.supervisor import SupervisedShardExecutor, SupervisorPolicy
from repro.testing import FaultPlan, ScheduledFault
from repro.updates import ObjectUpdate

CELLS = 16


def small_workload(**overrides):
    params = dict(n_objects=120, n_queries=6, k=3, timestamps=8, seed=21)
    params.update(overrides)
    return BrinkhoffGenerator(WorkloadSpec(**params)).generate()


def replay(monitor, workload):
    log: list = []
    report = replay_workload(
        monitor, workload, collect_results=True, result_log=log
    )
    return report, log


def supervised_replay(workload, plan, **executor_kwargs):
    executor = SupervisedShardExecutor(
        fault_hook=None if plan is None else plan.executor_hook(),
        **executor_kwargs,
    )
    monitor = ShardedMonitor(2, cells_per_axis=CELLS, executor=executor)
    try:
        report, log = replay(monitor, workload)
    finally:
        monitor.close()
    return report, log, executor


# ----------------------------------------------------------------------
# Supervised executor: crash recovery vs the fault-free reference
# ----------------------------------------------------------------------


@pytest.mark.chaos
class TestSupervisedRecovery:
    def test_restart_recovery_is_byte_identical(self):
        """SIGKILL a shard mid-replay; the RESTART rebuild (command-log
        replay) must converge to the fault-free serial run, counters
        included — the ISSUE's headline acceptance criterion."""
        workload = small_workload(query_agility=0.5)
        ref_report, ref_log = replay(
            ShardedMonitor(2, cells_per_axis=CELLS), workload
        )
        plan = FaultPlan(seed=7).kill_worker(shard=1, at_command=6)
        report, log, executor = supervised_replay(workload, plan)
        assert [f.kind for f in plan.fired] == ["kill"]
        assert executor.restart_counts[1] == 1
        assert [e.action for e in executor.events] == ["restart"]
        assert log == ref_log
        assert report.total_cell_scans == ref_report.total_cell_scans
        assert report.total_objects_scanned == ref_report.total_objects_scanned
        assert report.total_results_changed == ref_report.total_results_changed

    def test_degrade_to_serial_is_byte_identical(self):
        workload = small_workload()
        _, ref_log = replay(ShardedMonitor(2, cells_per_axis=CELLS), workload)
        plan = FaultPlan().kill_worker(shard=0, at_command=9)
        report, log, executor = supervised_replay(
            workload, plan, policy=SupervisorPolicy.DEGRADE_TO_SERIAL
        )
        assert [f.kind for f in plan.fired] == ["kill"]
        assert [(e.action, e.shard) for e in executor.events] == [("degrade", 0)]
        assert log == ref_log

    def test_fail_fast_raises(self):
        workload = small_workload(timestamps=4)
        plan = FaultPlan().kill_worker(shard=1, at_command=5)
        with pytest.raises(ShardCrashError):
            supervised_replay(
                workload, plan, policy=SupervisorPolicy.FAIL_FAST
            )

    def test_sigstop_detected_by_recv_timeout_and_recovered(self):
        """A wedged (SIGSTOPped) worker never closes its pipe — only the
        recv deadline can see it; the restart path must still converge."""
        workload = small_workload(timestamps=6)
        _, ref_log = replay(ShardedMonitor(2, cells_per_axis=CELLS), workload)
        plan = FaultPlan().stop_worker(shard=0, at_command=7)
        report, log, executor = supervised_replay(
            workload, plan, recv_timeout=1.0
        )
        assert [f.kind for f in plan.fired] == ["stop"]
        assert any("ShardTimeoutError" in e.error for e in executor.events)
        assert log == ref_log

    def test_restart_budget_exhausted_raises(self):
        workload = small_workload(timestamps=6)
        plan = (
            FaultPlan()
            .kill_worker(shard=1, at_command=5)
            .kill_worker(shard=1, at_command=6)
        )
        with pytest.raises(ShardCrashError):
            supervised_replay(workload, plan, max_restarts=1)

    def test_checkpoint_compaction_then_crash(self):
        """A checkpoint truncates the replay log; recovery = restore the
        snapshot, then replay only the tail — results still converge."""
        workload = small_workload(query_agility=0.4)
        _, ref_log = replay(ShardedMonitor(2, cells_per_axis=CELLS), workload)
        plan = FaultPlan().kill_worker(shard=1, at_command=14)
        executor = SupervisedShardExecutor(fault_hook=plan.executor_hook())
        monitor = ShardedMonitor(2, cells_per_axis=CELLS, executor=executor)
        try:
            log: list = []
            cycles = 0

            def on_cycle(report):
                nonlocal cycles
                cycles += 1
                if cycles == 3:
                    executor.checkpoint()

            report = replay_workload(
                monitor,
                workload,
                collect_results=True,
                result_log=log,
                on_cycle=on_cycle,
            )
        finally:
            monitor.close()
        assert [f.kind for f in plan.fired] == ["kill"]
        assert executor.restart_counts[1] == 1
        assert log == ref_log

    def test_no_faults_means_no_recovery_overhead_in_counters(self):
        """Supervision must be invisible when nothing fails: counters and
        results byte-identical to the plain sharded run (the wall-clock
        price is benchmarked by the ``fault_recovery`` perf cases, not
        asserted here — CI timing is noise)."""
        workload = small_workload(timestamps=5)
        ref_report, ref_log = replay(
            ShardedMonitor(2, cells_per_axis=CELLS), workload
        )
        report, log, executor = supervised_replay(workload, None)
        assert not executor.events
        assert log == ref_log
        assert report.total_cell_scans == ref_report.total_cell_scans


# ----------------------------------------------------------------------
# Partitioned state: RESTART must replay halo/pull/migration commands
# ----------------------------------------------------------------------


@pytest.mark.chaos
class TestPartitionedRecovery:
    """The partition subsystem under the supervisor: a restarted worker
    rebuilds *partitioned* state (sentinel columns, pulled cells, carried
    query bookkeeping) from the command log + pull log, byte-identical —
    and since the partitioned tier is counter-exact, the reference here
    is the **single engine**, not a replicated sharded run."""

    def _run(self, workload, plan, n_shards=2, checkpoint_at=None):
        executor = SupervisedShardExecutor(
            fault_hook=None if plan is None else plan.executor_hook()
        )
        monitor = PartitionedMonitor(
            n_shards, cells_per_axis=CELLS, executor=executor
        )
        try:
            log: list = []
            cycles = 0

            def on_cycle(report):
                nonlocal cycles
                cycles += 1
                if cycles == checkpoint_at:
                    executor.checkpoint()

            report = replay_workload(
                monitor,
                workload,
                collect_results=True,
                result_log=log,
                on_cycle=on_cycle,
            )
        finally:
            monitor.close()
        return report, log, executor

    def test_partitioned_restart_mid_replay_is_byte_identical(self):
        workload = small_workload(query_agility=0.5)
        ref_report, ref_log = replay(CPMMonitor(cells_per_axis=CELLS), workload)
        plan = FaultPlan(seed=7).kill_worker(shard=1, at_command=8)
        report, log, executor = self._run(workload, plan)
        assert [f.kind for f in plan.fired] == ["kill"]
        assert executor.restart_counts[1] == 1
        assert log == ref_log
        assert report.total_cell_scans == ref_report.total_cell_scans
        assert report.total_objects_scanned == ref_report.total_objects_scanned
        assert report.total_results_changed == ref_report.total_results_changed

    def test_partitioned_checkpoint_compaction_then_crash(self):
        """The full-fidelity partition capture restores cells, marks and
        query bookkeeping without a single search or pull — the tail
        replay after the snapshot must still be byte-identical."""
        workload = small_workload(query_agility=0.4)
        ref_report, ref_log = replay(CPMMonitor(cells_per_axis=CELLS), workload)
        plan = FaultPlan().kill_worker(shard=1, at_command=24)
        report, log, executor = self._run(workload, plan, checkpoint_at=3)
        assert [f.kind for f in plan.fired] == ["kill"]
        assert executor.restart_counts[1] == 1
        assert log == ref_log
        assert report.total_cell_scans == ref_report.total_cell_scans

    def test_partitioned_four_shards_kill_each(self):
        workload = small_workload(timestamps=5, query_agility=0.5)
        _, ref_log = replay(CPMMonitor(cells_per_axis=CELLS), workload)
        for shard in range(4):
            plan = FaultPlan(seed=shard).kill_worker(
                shard=shard, at_command=10 + shard
            )
            _, log, executor = self._run(workload, plan, n_shards=4)
            assert [f.kind for f in plan.fired] == ["kill"]
            assert executor.restart_counts[shard] == 1
            assert log == ref_log


# ----------------------------------------------------------------------
# Raw process executor: dead pipes fail typed, shards stay independent
# ----------------------------------------------------------------------


@pytest.mark.chaos
class TestProcessExecutorFaults:
    def test_killed_worker_raises_typed_error_and_peers_survive(self):
        executor = ProcessShardExecutor()
        factory = ShardEngineFactory(CELLS)
        executor.start([factory, factory])
        try:
            executor.call_all(
                "load_objects", [([(1, (0.1, 0.1))],), ([(2, (0.9, 0.9))],)]
            )
            import os
            import signal

            os.kill(executor.worker_pid(1), signal.SIGKILL)
            with pytest.raises(ShardCrashError) as excinfo:
                executor.call_all("result_table", [(), ()])
            assert excinfo.value.shard == 1
            # The healthy shard still answers.
            assert executor.call(0, "result_table")[0] == {}
            # And the dead slot can be rebuilt explicitly.
            executor.restart_shard(1)
            assert executor.call(1, "result_table")[0] == {}
        finally:
            executor.close()

    def test_recv_timeout_raises_shard_timeout(self):
        import os
        import signal

        executor = ProcessShardExecutor(recv_timeout=0.5)
        factory = ShardEngineFactory(CELLS)
        executor.start([factory])
        try:
            os.kill(executor.worker_pid(0), signal.SIGSTOP)
            with pytest.raises(ShardTimeoutError):
                executor.call(0, "result_table")
        finally:
            executor.close()


# ----------------------------------------------------------------------
# capture_state / restore_state: the deterministic rebuild contract
# ----------------------------------------------------------------------


class TestCaptureRestore:
    @staticmethod
    def _build(algorithm):
        if algorithm == "BRUTE":
            from repro.baselines.brute import BruteForceMonitor

            return BruteForceMonitor()
        return ShardEngineFactory(CELLS, algorithm=algorithm)()

    @pytest.mark.parametrize("algorithm", ["CPM", "YPK-CNN", "SEA-CNN", "BRUTE"])
    def test_round_trip_preserves_results(self, algorithm):
        workload = small_workload(timestamps=6)
        original = self._build(algorithm)
        session = Session(original)
        session.load_objects(sorted(workload.initial_objects.items()))
        for qid, point in sorted(workload.initial_queries.items()):
            original.install_query(qid, point, workload.spec.k)
        for batch in workload.batches[:3]:
            session.tick(batch.object_updates, batch.query_updates)
        state = original.capture_state()
        clone = self._build(algorithm)
        clone.restore_state(state)
        assert clone.result_table() == original.result_table()
        assert clone.object_count == original.object_count
        assert clone.stats.snapshot().cell_scans == original.stats.cell_scans
        # Both replicas process the remaining cycles identically.
        s_orig, s_clone = Session(original), Session(clone)
        for batch in workload.batches[3:]:
            s_orig.tick(batch.object_updates, batch.query_updates)
            s_clone.tick(batch.object_updates, batch.query_updates)
            assert clone.result_table() == original.result_table()

    def test_restore_refuses_populated_monitor(self):
        monitor = CPMMonitor(cells_per_axis=CELLS)
        monitor.load_objects([(1, (0.5, 0.5))])
        state = monitor.capture_state()
        with pytest.raises(RuntimeError):
            monitor.restore_state(state)


# ----------------------------------------------------------------------
# FaultPlan: seeded schedules are replayable
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_random_schedule_is_seed_deterministic(self):
        a = FaultPlan(seed=42).random_worker_kills(3, shards=4, max_command=50)
        b = FaultPlan(seed=42).random_worker_kills(3, shards=4, max_command=50)
        assert a.faults == b.faults
        c = FaultPlan(seed=43).random_worker_kills(3, shards=4, max_command=50)
        assert a.faults != c.faults

    def test_each_fault_fires_once(self):
        plan = FaultPlan().drop_feed(after_frames=2)
        hook = plan.feed_hook()
        assert [hook(i) for i in range(5)] == [False, False, True, False, False]
        assert plan.fired == [ScheduledFault("drop_feed", 0, 2)]

    def test_delay_fault_sleeps(self):
        plan = FaultPlan().delay_command(shard=0, at_command=0, seconds=0.05)
        hook = plan.executor_hook()
        t0 = time.perf_counter()
        hook(0, 0, None)
        assert time.perf_counter() - t0 >= 0.05
        assert [f.kind for f in plan.fired] == ["delay"]


# ----------------------------------------------------------------------
# Client: forced mid-stream disconnect, transparent re-sync
# ----------------------------------------------------------------------


def retrying(fn, attempts=4):
    """Drive one request across a possible injected disconnect."""
    for _ in range(attempts):
        try:
            return fn()
        except RemoteError:
            time.sleep(0.1)
    raise AssertionError("request never succeeded across the reconnect")


@pytest.mark.chaos
class TestClientReconnect:
    def test_client_survives_forced_disconnect_and_resyncs(self):
        """Acceptance: the server cuts the client's transport mid-stream;
        the client reconnects, re-syncs, and its snapshot equals the
        server's result table."""
        plan = FaultPlan().drop_connection(after_frames=12, conn=0)
        session = Session(CPMMonitor(cells_per_axis=CELLS))
        server = MonitorSocketServer(session, fault_hook=plan.connection_hook())
        host, port = server.start()
        observed = []
        try:
            client = Client.connect(
                host,
                port,
                client_name="chaos",
                reconnect=ReconnectPolicy(
                    max_retries=6, base_delay=0.02, max_delay=0.2, seed=3
                ),
                on_reconnect=observed.append,
            )
            pos = {
                i: ((5 * i % 90) / 100.0, (7 * i % 90) / 100.0)
                for i in range(40)
            }
            client.send_updates(
                [ObjectUpdate(i, None, p) for i, p in pos.items()]
            )
            client.tick(timestamp=0)
            h1 = client.register(KnnSpec(point=(0.1, 0.1), k=3))
            h2 = client.register(KnnSpec(point=(0.7, 0.4), k=4))
            deltas = []
            h1.subscribe(lambda ts, d: deltas.append((ts, d.qid)))

            for t in range(1, 12):
                updates = []
                for i in list(pos):
                    new = (
                        ((5 * i + 3 * t) % 90) / 100.0,
                        ((7 * i + 2 * t) % 90) / 100.0,
                    )
                    updates.append(ObjectUpdate(i, pos[i], new))

                def cycle():
                    client.send_updates(updates)
                    client.tick(timestamp=t)
                    for u in updates:
                        pos[u.oid] = u.new

                retrying(cycle)

            assert [f.kind for f in plan.fired] == ["drop_connection"]
            assert len(client.reconnect_events) == 1
            assert observed == client.reconnect_events
            event = client.reconnect_events[0]
            assert event.attempts >= 1
            assert sorted(event.results) == [h1.qid, h2.qid]
            # The acceptance criterion: snapshots equal the server's table.
            for handle in (h1, h2):
                remote = handle.snapshot()
                with server.lock:
                    local = list(session.snapshot(handle.qid))
                assert remote == local
            # The re-sync re-subscribed the delta topic.
            n_before = len(deltas)

            def after():
                updates = [
                    ObjectUpdate(i, pos[i], (0.09 + i / 100.0, 0.09))
                    for i in range(6)
                ]
                client.send_updates(updates)
                client.tick(timestamp=99)
                for u in updates:
                    pos[u.oid] = u.new

            retrying(after)
            assert len(deltas) > n_before
            client.close()
            # A local close is final: no further redial.
            time.sleep(0.25)
            assert len(client.reconnect_events) == 1
        finally:
            server.stop()

    def test_no_policy_fails_hard_on_transport_loss(self):
        plan = FaultPlan().drop_connection(after_frames=4, conn=0)
        session = Session(CPMMonitor(cells_per_axis=CELLS))
        server = MonitorSocketServer(session, fault_hook=plan.connection_hook())
        host, port = server.start()
        try:
            client = Client.connect(host, port)
            client.register(KnnSpec(point=(0.5, 0.5), k=2))
            with pytest.raises(RemoteError):
                for _ in range(10):
                    client.snapshot(0)
                    time.sleep(0.02)
            assert not client.reconnect_events
        finally:
            server.stop()


# ----------------------------------------------------------------------
# SocketFeed: transparent redial of the ingest transport
# ----------------------------------------------------------------------


def frame_line(frame) -> bytes:
    return (wire.encode_frame(frame) + "\n").encode()


@pytest.mark.chaos
class TestSocketFeedReconnect:
    def test_feed_resumes_across_injected_cut(self):
        """The feed cuts its own transport after a scripted frame; the
        producer serves the remaining frames on the next accept — the
        merged stream is complete and in order."""
        frames = []
        for t in range(3):
            ups = tuple(
                ObjectUpdate(
                    i,
                    None if t == 0 else (0.1 * i, 0.2 + 0.01 * (t - 1)),
                    (0.1 * i, 0.2 + 0.01 * t),
                )
                for i in range(4)
            )
            frames.append(frame_line(wire.Updates(updates=ups)))
            frames.append(frame_line(wire.Tick(timestamp=t)))
        cut_after = 3  # cycle 1's tick: a frame boundary

        plan = FaultPlan().drop_feed(after_frames=cut_after)
        listener = socket.socket()
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        host, port = listener.getsockname()

        def producer():
            conn, _ = listener.accept()
            conn.sendall(b"".join(frames[: cut_after + 1]))
            conn2, _ = listener.accept()
            conn2.sendall(
                b"".join(frames[cut_after + 1 :]) + frame_line(wire.Bye())
            )
            conn.close()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        try:
            feed = SocketFeed.connect(
                host,
                port,
                reconnect=ReconnectPolicy(
                    max_retries=5, base_delay=0.02, max_delay=0.2, seed=1
                ),
                fault_hook=plan.feed_hook(),
            )
            events = list(feed.events())
        finally:
            thread.join(timeout=5.0)
            listener.close()
        marks = [e.timestamp for e in events if type(e) is CycleMark]
        assert marks == [0, 1, 2]
        assert sum(1 for e in events if type(e) is ObjectUpdate) == 12
        assert feed.reconnects == 1
        assert [f.kind for f in plan.fired] == ["drop_feed"]

    def test_without_policy_eof_ends_feed(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def producer():
            conn, _ = listener.accept()
            conn.sendall(frame_line(wire.Tick(timestamp=0)))
            conn.close()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        try:
            feed = SocketFeed.connect(host, port)
            events = list(feed.events())
        finally:
            thread.join(timeout=5.0)
            listener.close()
        assert [type(e) for e in events] == [CycleMark]
        assert feed.reconnects == 0

    def test_exhausted_retries_raise_connection_error(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def producer():
            conn, _ = listener.accept()
            conn.sendall(frame_line(wire.Tick(timestamp=0)))
            conn.close()
            listener.close()  # nobody to redial to

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        feed = SocketFeed.connect(
            host,
            port,
            reconnect=ReconnectPolicy(
                max_retries=2, base_delay=0.01, max_delay=0.05, seed=2
            ),
        )
        with pytest.raises(ConnectionError):
            list(feed.events())
        thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Silent thread death is dead: pump/driver surface their failures
# ----------------------------------------------------------------------


class _ExplodingFeed(UpdateFeed):
    def __init__(self, after: int) -> None:
        self.after = after

    def events(self):
        for i in range(self.after):
            yield ObjectUpdate(i, None, (0.1, 0.1))
        raise OSError("feed transport exploded")


class TestErrorSurfacing:
    def test_pump_records_and_reraises_feed_crash(self):
        buffer = IngestBuffer(capacity=64)
        pump = ThreadedFeedPump(_ExplodingFeed(3), buffer).start()
        deadline = time.monotonic() + 5.0
        while not buffer.closed and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pump.failed
        with pytest.raises(OSError, match="exploded"):
            pump.stop()
        # stop() re-raises once; afterwards it is a clean no-op.
        pump.stop()

    def test_background_driver_reports_failure(self):
        service = MonitoringService(CPMMonitor(cells_per_axis=CELLS))
        driver = IngestDriver(_ExplodingFeed(2), service)
        driver.start()
        deadline = time.monotonic() + 5.0
        while driver.failure is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert driver.report.failed
        assert "exploded" in (driver.report.error or "")
        with pytest.raises(OSError, match="exploded"):
            driver.stop()

    def test_clean_runs_stay_unflagged(self):
        service = MonitoringService(CPMMonitor(cells_per_axis=CELLS))
        workload = small_workload(timestamps=3)
        from repro.ingest.feeds import WorkloadFeed

        driver = IngestDriver(WorkloadFeed(workload), service)
        driver.prime(k=workload.spec.k)
        report = driver.run()
        assert not report.failed
        assert report.error is None
