"""Tests for the brute-force reference monitor."""

import math

import pytest

from repro.baselines.brute import BruteForceMonitor
from repro.core.strategies import AggregateNNStrategy
from repro.updates import (
    QueryUpdate,
    QueryUpdateKind,
    appear_update,
    disappear_update,
    move_update,
)
from tests.conftest import brute_knn, scatter


class TestBasics:
    def test_install_and_result(self):
        m = BruteForceMonitor()
        objs = scatter(30, seed=1)
        m.load_objects(objs)
        assert m.install_query(0, (0.5, 0.5), 3) == brute_knn(dict(objs), (0.5, 0.5), 3)

    def test_double_load_raises(self):
        m = BruteForceMonitor()
        m.load_objects([(1, (0.1, 0.1))])
        with pytest.raises(KeyError):
            m.load_objects([(1, (0.2, 0.2))])

    def test_double_install_raises(self):
        m = BruteForceMonitor()
        m.install_query(0, (0.5, 0.5), 1)
        with pytest.raises(KeyError):
            m.install_query(0, (0.5, 0.5), 1)

    def test_object_position_and_count(self):
        m = BruteForceMonitor()
        m.load_objects([(1, (0.1, 0.2))])
        assert m.object_position(1) == (0.1, 0.2)
        assert m.object_position(2) is None
        assert m.object_count == 1

    def test_stats_always_zero(self):
        m = BruteForceMonitor()
        m.load_objects(scatter(10))
        m.install_query(0, (0.5, 0.5), 2)
        m.process([])
        assert m.stats.cell_scans == 0


class TestProcessing:
    def test_move_updates_results(self):
        m = BruteForceMonitor()
        m.load_objects([(1, (0.1, 0.1)), (2, (0.9, 0.9))])
        m.install_query(0, (0.0, 0.0), 1)
        changed = m.process([move_update(2, (0.9, 0.9), (0.01, 0.01))])
        assert changed == {0}
        assert m.result(0)[0][1] == 2

    def test_appear_disappear(self):
        m = BruteForceMonitor()
        m.load_objects([(1, (0.5, 0.5))])
        m.install_query(0, (0.0, 0.0), 1)
        m.process([appear_update(2, (0.1, 0.1))])
        assert m.result(0)[0][1] == 2
        m.process([disappear_update(2, (0.1, 0.1))])
        assert m.result(0)[0][1] == 1

    def test_appear_twice_raises(self):
        m = BruteForceMonitor()
        m.load_objects([(1, (0.5, 0.5))])
        with pytest.raises(KeyError):
            m.process([appear_update(1, (0.1, 0.1))])

    def test_move_unknown_object_raises(self):
        m = BruteForceMonitor()
        with pytest.raises(KeyError):
            m.process([move_update(1, (0.1, 0.1), (0.2, 0.2))])

    def test_query_updates(self):
        m = BruteForceMonitor()
        m.load_objects(scatter(20, seed=2))
        m.process([], [QueryUpdate(0, QueryUpdateKind.INSERT, (0.5, 0.5), 2)])
        assert len(m.result(0)) == 2
        m.process([], [QueryUpdate(0, QueryUpdateKind.MOVE, (0.1, 0.1), 2)])
        assert len(m.result(0)) == 2
        m.process([], [QueryUpdate(0, QueryUpdateKind.TERMINATE)])
        assert m.query_ids() == []

    def test_changed_set_excludes_stable_queries(self):
        m = BruteForceMonitor()
        m.load_objects([(1, (0.1, 0.1)), (2, (0.9, 0.9))])
        m.install_query(0, (0.0, 0.0), 1)
        # Moving object 2 far away does not change q0's result.
        changed = m.process([move_update(2, (0.9, 0.9), (0.95, 0.95))])
        assert changed == set()


class TestStrategyQueries:
    def test_ann_ground_truth(self):
        m = BruteForceMonitor()
        objs = scatter(40, seed=3)
        m.load_objects(objs)
        points = [(0.3, 0.3), (0.7, 0.7)]
        result = m.install_strategy_query(0, AggregateNNStrategy(points, "sum"), 2)
        positions = dict(objs)
        expected = sorted(
            (
                sum(math.hypot(x - qx, y - qy) for qx, qy in points),
                oid,
            )
            for oid, (x, y) in positions.items()
        )[:2]
        assert [(pytest.approx(d), oid) for d, oid in expected] == result
