"""Tests for the ASCII visualization module."""

import doctest

import pytest

import repro.vis.ascii as ascii_mod
from repro.core.cpm import CPMMonitor
from repro.core.partition import ConceptualPartition
from repro.grid.grid import Grid
from repro.vis.ascii import (
    partition_legend,
    render_grid_occupancy,
    render_influence_region,
    render_partition,
)
from tests.conftest import scatter


class TestRenderPartition:
    def test_doctest_example(self):
        result = doctest.testmod(ascii_mod, verbose=False)
        assert result.failed == 0
        assert result.attempted >= 1

    def test_dimensions(self):
        p = ConceptualPartition.around_cell((3, 3), 8, 8)
        text = render_partition(p)
        lines = text.splitlines()
        assert len(lines) == 10  # 8 rows + frame
        assert all(len(line) == 10 for line in lines)

    def test_exactly_one_query_marker_for_point_core(self):
        p = ConceptualPartition.around_cell((2, 5), 7, 7)
        assert render_partition(p).count("q") == 1

    def test_block_core(self):
        p = ConceptualPartition(2, 3, 2, 4, 8, 8)
        assert render_partition(p).count("q") == 2 * 3

    def test_every_cell_rendered(self):
        p = ConceptualPartition.around_cell((0, 0), 6, 6)
        body = "".join(
            line[1:-1] for line in render_partition(p).splitlines()[1:-1]
        )
        assert len(body) == 36
        assert " " not in body  # no unassigned cells

    def test_max_level_masks_far_cells(self):
        p = ConceptualPartition.around_cell((4, 4), 9, 9)
        text = render_partition(p, max_level=0)
        assert " " in text

    def test_legend(self):
        text = partition_legend()
        for token in ("q", "u/U", "d/D", "l/L", "r/R"):
            assert token in text


class TestRenderInfluenceRegion:
    def test_query_cell_marked(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects(scatter(60, seed=3))
        monitor.install_query(0, (0.5, 0.5), 3)
        text = render_influence_region(monitor, 0)
        assert text.count("Q") == 1

    def test_region_cells_shown(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects(scatter(200, seed=3))
        monitor.install_query(0, (0.5, 0.5), 8)
        text = render_influence_region(monitor, 0)
        marked = len(monitor.influence_cells(0))
        # Q replaces one of the marked cells in the rendering.
        assert text.count("#") == marked - 1

    def test_unknown_query_raises(self):
        monitor = CPMMonitor(cells_per_axis=8)
        with pytest.raises(KeyError):
            render_influence_region(monitor, 42)


class TestRenderOccupancy:
    def test_empty_grid_blank(self):
        grid = Grid(4)
        body = "".join(
            line[1:-1] for line in render_grid_occupancy(grid).splitlines()[1:-1]
        )
        assert body.strip() == ""

    def test_occupied_cells_visible(self):
        grid = Grid(4)
        grid.insert(1, 0.1, 0.1)
        grid.insert(2, 0.9, 0.9)
        text = render_grid_occupancy(grid)
        body = [line[1:-1] for line in text.splitlines()[1:-1]]
        # Row 0 is at the bottom: object 1 bottom-left, object 2 top-right.
        assert body[-1][0] != " "
        assert body[0][-1] != " "

    def test_density_ramp_monotone(self):
        grid = Grid(2)
        for i in range(9):
            grid.insert(i, 0.1 + i * 1e-4, 0.1)
        grid.insert(100, 0.9, 0.9)
        text = render_grid_occupancy(grid)
        body = [line[1:-1] for line in text.splitlines()[1:-1]]
        dense = body[-1][0]
        sparse = body[0][-1]
        from repro.vis.ascii import _RAMP

        assert _RAMP.index(dense) > _RAMP.index(sparse)
