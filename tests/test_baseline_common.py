"""Tests for the shared two-step square search (YPK-CNN, Figure 2.1a)."""

import pytest

from repro.baselines.common import ring_cells, square_cells, two_step_nn_search
from repro.grid.grid import Grid
from tests.conftest import brute_knn, scatter


def loaded_grid(n=80, cells=8, seed=9):
    grid = Grid(cells)
    objs = scatter(n, seed=seed)
    grid.bulk_load(objs)
    return grid, dict(objs)


class TestRingCells:
    def test_radius_zero_is_center(self):
        grid = Grid(8)
        assert ring_cells(grid, (3, 3), 0) == [(3, 3)]

    def test_radius_one_is_eight_neighbors(self):
        grid = Grid(8)
        ring = ring_cells(grid, (3, 3), 1)
        assert len(ring) == 8
        assert all(max(abs(i - 3), abs(j - 3)) == 1 for i, j in ring)

    def test_ring_cells_unique(self):
        grid = Grid(8)
        for r in range(4):
            ring = ring_cells(grid, (4, 4), r)
            assert len(ring) == len(set(ring))

    def test_clipped_at_corner(self):
        grid = Grid(8)
        ring = ring_cells(grid, (0, 0), 1)
        assert set(ring) == {(0, 1), (1, 1), (1, 0)}

    def test_fully_outside_is_empty(self):
        grid = Grid(4)
        assert ring_cells(grid, (0, 0), 10) == []

    def test_rings_partition_the_grid(self):
        grid = Grid(6)
        seen = set()
        for r in range(8):
            for cell in ring_cells(grid, (2, 3), r):
                assert cell not in seen
                seen.add(cell)
        assert len(seen) == 36


class TestSquareCells:
    def test_half_side_smaller_than_half_cell(self):
        grid = Grid(8)
        cells = set(square_cells(grid, (3, 3), 0.01))
        assert cells == {(3, 3)}

    def test_covers_circle_around_any_point_in_cell(self):
        # Square of half side d + delta/2 centered at the cell center covers
        # the disk of radius d around any q inside the cell.
        grid = Grid(8)
        d = 0.2
        cells = set(square_cells(grid, (3, 3), d + grid.delta / 2))
        q = (0.49, 0.49)  # inside cell (3, 3)
        for coord in grid.cells_in_circle(q, d):
            assert coord in cells


class TestTwoStepSearch:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_matches_brute_force(self, k):
        grid, positions = loaded_grid()
        for q in [(0.5, 0.5), (0.02, 0.97), (0.77, 0.33)]:
            assert two_step_nn_search(grid, q, k) == brute_knn(positions, q, k)

    def test_sparse_grid_requires_many_rings(self):
        grid = Grid(16)
        grid.insert(1, 0.95, 0.95)
        assert two_step_nn_search(grid, (0.05, 0.05), 1) == [
            (pytest.approx(1.272792206135786), 1)
        ]

    def test_fewer_objects_than_k(self):
        grid, positions = loaded_grid(n=3)
        result = two_step_nn_search(grid, (0.5, 0.5), 10)
        assert len(result) == 3
        assert result == brute_knn(positions, (0.5, 0.5), 10)

    def test_empty_grid(self):
        grid = Grid(8)
        assert two_step_nn_search(grid, (0.5, 0.5), 2) == []

    def test_invalid_k(self):
        grid = Grid(8)
        with pytest.raises(ValueError):
            two_step_nn_search(grid, (0.5, 0.5), 0)

    def test_counts_cell_accesses(self):
        grid, _ = loaded_grid()
        grid.stats.reset()
        two_step_nn_search(grid, (0.5, 0.5), 2)
        assert grid.stats.cell_scans > 0

    def test_does_not_rescan_ring_cells_in_step_two(self):
        # Distinct cells only: total scans <= grid size.
        grid, _ = loaded_grid(cells=6)
        grid.stats.reset()
        two_step_nn_search(grid, (0.5, 0.5), 4)
        assert grid.stats.cell_scans <= 36

    def test_dense_cluster_near_query(self):
        grid = Grid(8)
        cluster = [(i, (0.5 + i * 1e-4, 0.5)) for i in range(20)]
        grid.bulk_load(cluster)
        result = two_step_nn_search(grid, (0.5, 0.5), 5)
        assert [oid for _d, oid in result] == [0, 1, 2, 3, 4]


class TestWalkHelpersLiveOnGridPackage:
    """The ring/square walks were promoted to repro.grid.walk; the
    baselines re-export them so both layers share one implementation."""

    def test_single_implementation(self):
        import repro.baselines.common as common
        import repro.grid.walk as walk
        from repro.grid import ring_cells as grid_ring, square_cells as grid_square

        assert common.ring_cells is walk.ring_cells is grid_ring
        assert common.square_cells is walk.square_cells is grid_square
