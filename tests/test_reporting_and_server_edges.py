"""Edge-case tests for reporting helpers and workload replay."""

import pytest

from repro.baselines.brute import BruteForceMonitor
from repro.core.cpm import CPMMonitor
from repro.api.session import replay_workload
from repro.experiments.common import ExperimentResult, SeriesPoint
from repro.experiments.reporting import format_table, print_result, render_result
from repro.engine.metrics import RunReport
from repro.mobility.workload import Workload, WorkloadSpec
from repro.updates import UpdateBatch


def empty_workload(n_objects=5, n_queries=1, timestamps=0):
    spec = WorkloadSpec(
        n_objects=n_objects, n_queries=n_queries, timestamps=timestamps, seed=1
    )
    return Workload(
        spec=spec,
        initial_objects={oid: (0.1 * (oid + 1), 0.5) for oid in range(n_objects)},
        initial_queries={10**9 + i: (0.5, 0.5) for i in range(n_queries)},
        batches=[UpdateBatch(timestamp=t) for t in range(timestamps)],
    )


class TestServerEdges:
    def test_zero_timestamp_workload(self):
        report = replay_workload(CPMMonitor(cells_per_axis=8), empty_workload())
        assert report.timestamps == 0
        assert report.total_processing_sec == 0.0
        assert report.install_sec > 0.0

    def test_empty_batches_preserve_results(self):
        workload = empty_workload(timestamps=3)
        log: list = []
        replay_workload(
            CPMMonitor(cells_per_axis=8),
            workload,
            collect_results=True,
            result_log=log,
        )
        assert len(log) == 4
        assert all(table == log[0] for table in log[1:])

    def test_workload_without_queries(self):
        spec = WorkloadSpec(n_objects=3, n_queries=0, timestamps=2, seed=1)
        workload = Workload(
            spec=spec,
            initial_objects={0: (0.1, 0.1), 1: (0.5, 0.5), 2: (0.9, 0.9)},
            initial_queries={},
            batches=[UpdateBatch(timestamp=0), UpdateBatch(timestamp=1)],
        )
        report = replay_workload(BruteForceMonitor(), workload)
        assert report.n_queries == 0
        assert report.cell_accesses_per_query_per_timestamp == 0.0

    def test_on_cycle_sees_metrics_in_order(self):
        workload = empty_workload(timestamps=4)
        stamps = []
        replay_workload(
            CPMMonitor(cells_per_axis=8),
            workload,
            on_cycle=lambda m: stamps.append(m.timestamp),
        )
        assert stamps == [0, 1, 2, 3]


class TestReportingEdges:
    def make_result(self):
        result = ExperimentResult(experiment="X", title="t", parameter="p")
        for value in (1, 2):
            for algo in ("A", "B"):
                report = RunReport(algorithm=algo, n_queries=1)
                result.points.append(
                    SeriesPoint(parameter="p", value=value, algorithm=algo, report=report)
                )
        return result

    def test_series_extraction(self):
        result = self.make_result()
        assert result.values() == [1, 2]
        assert result.algorithms() == ["A", "B"]
        assert result.series("A") == [0.0, 0.0]

    def test_missing_point_raises(self):
        result = self.make_result()
        with pytest.raises(KeyError):
            result.point(3, "A")
        with pytest.raises(KeyError):
            result.point(1, "C")

    def test_render_contains_all_cells(self):
        text = render_result(self.make_result())
        assert "A (cpu_sec)" in text
        assert "B (cpu_sec)" in text
        assert text.count("\n") >= 3

    def test_print_result(self, capsys):
        print_result(self.make_result())
        out = capsys.readouterr().out
        assert "== X: t ==" in out

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_format_table_number_formats(self):
        text = format_table(["v"], [[1234.5678], [0.00012], [3.14159], [0]])
        assert "1235" in text          # >= 100 -> no decimals
        assert "0.0001" in text        # < 1 -> 4 decimals
        assert "3.142" in text         # 1..100 -> 3 decimals
        assert "0" in text
