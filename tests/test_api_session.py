"""Session / QueryHandle tests: typed registration, per-query delta
routing, handle operations, and spec semantics vs reference monitors."""

import math

import pytest

from repro.api.queries import ConstrainedKnnSpec, KnnSpec, RangeSpec, install_spec
from repro.api.session import Session
from repro.baselines.brute import BruteForceMonitor
from repro.core.cpm import CPMMonitor
from repro.core.range_monitor import GridRangeMonitor
from repro.geometry.rects import Rect
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.service import MonitoringService
from repro.service.sharding import ShardedMonitor
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind

SPEC = WorkloadSpec(n_objects=150, n_queries=4, k=3, timestamps=6, seed=31)


@pytest.fixture(scope="module")
def workload():
    return UniformGenerator(SPEC).generate()


def make_session() -> Session:
    return Session(CPMMonitor(cells_per_axis=16))


OBJECTS = [(i, (0.07 * i % 1.0, 0.11 * i % 1.0)) for i in range(1, 40)]


class TestRegistration:
    def test_register_returns_handle_with_result(self):
        session = make_session()
        session.load_objects(OBJECTS)
        handle = session.register(KnnSpec(point=(0.5, 0.5), k=3))
        assert handle.alive
        assert handle.snapshot() == session.monitor.result(handle.qid)
        assert len(handle.snapshot()) == 3

    def test_auto_qid_assignment_skips_taken_ids(self):
        session = make_session()
        session.load_objects(OBJECTS)
        a = session.register(KnnSpec(point=(0.5, 0.5)), qid=0)
        b = session.register(KnnSpec(point=(0.2, 0.2)))
        c = session.register(KnnSpec(point=(0.8, 0.8)))
        assert a.qid == 0
        assert b.qid != c.qid
        assert len({a.qid, b.qid, c.qid}) == 3

    def test_duplicate_qid_rejected(self):
        session = make_session()
        session.load_objects(OBJECTS)
        session.register(KnnSpec(point=(0.5, 0.5)), qid=7)
        with pytest.raises(KeyError):
            session.register(KnnSpec(point=(0.1, 0.1)), qid=7)

    def test_default_session_builds_cpm(self):
        session = Session()
        assert isinstance(session.monitor, CPMMonitor)

    def test_session_accepts_prebuilt_service(self):
        service = MonitoringService(CPMMonitor(cells_per_axis=8))
        session = Session(service)
        assert session.service is service


class TestPerQueryRouting:
    def test_handle_subscriber_sees_only_its_query(self):
        session = make_session()
        session.load_objects(OBJECTS)
        a = session.register(KnnSpec(point=(0.5, 0.5), k=2))
        b = session.register(KnnSpec(point=(0.1, 0.1), k=2))
        seen_a, seen_b = [], []
        a.subscribe(lambda ts, d: seen_a.append(d.qid))
        b.subscribe(lambda ts, d: seen_b.append(d.qid))
        # Perturb both neighborhoods over a few cycles.
        session.tick([ObjectUpdate(1, OBJECTS[0][1], (0.5, 0.51))], timestamp=0)
        session.tick([ObjectUpdate(2, OBJECTS[1][1], (0.1, 0.11))], timestamp=1)
        session.tick([ObjectUpdate(1, (0.5, 0.51), (0.09, 0.1))], timestamp=2)
        assert seen_a and set(seen_a) == {a.qid}
        assert seen_b and set(seen_b) == {b.qid}

    def test_firehose_sees_everything(self, workload):
        session = make_session()
        session.load_objects(workload.initial_objects.items())
        handles = [
            session.register(KnnSpec(point=p, k=SPEC.k), qid=qid)
            for qid, p in sorted(workload.initial_queries.items())
        ]
        fire = []
        session.subscribe(lambda ts, d: fire.append(d.qid))
        targeted = []
        handles[0].subscribe(lambda ts, d: targeted.append(d.qid))
        for batch in workload.batches:
            session.tick_batch(batch)
        assert set(targeted) <= {handles[0].qid}
        assert set(fire) > {handles[0].qid}

    def test_streamed_and_plain_tick_agree_on_changed_set(self, workload):
        plain = make_session()
        plain.load_objects(workload.initial_objects.items())
        streamed = make_session()
        streamed.load_objects(workload.initial_objects.items())
        for qid, p in workload.initial_queries.items():
            plain.register(KnnSpec(point=p, k=SPEC.k), qid=qid)
            streamed.register(KnnSpec(point=p, k=SPEC.k), qid=qid)
        streamed.subscribe(lambda ts, d: None)  # force the delta path
        for batch in workload.batches:
            assert plain.tick_batch(batch) == streamed.tick_batch(batch)
        assert plain.monitor.result_table() == streamed.monitor.result_table()


class TestHandleOperations:
    def test_move_matches_fresh_install(self):
        session = make_session()
        session.load_objects(OBJECTS)
        handle = session.register(KnnSpec(point=(0.2, 0.8), k=3))
        moved = handle.move((0.6, 0.3))
        reference = CPMMonitor(cells_per_axis=16)
        reference.load_objects(OBJECTS)
        assert moved == reference.install_query(0, (0.6, 0.3), 3)
        assert handle.spec == KnnSpec(point=(0.6, 0.3), k=3)

    def test_move_publishes_delta_to_handle_subscribers(self):
        session = make_session()
        session.load_objects(OBJECTS)
        handle = session.register(KnnSpec(point=(0.2, 0.8), k=3))
        deltas = []
        handle.subscribe(lambda ts, d: deltas.append((ts, d)))
        handle.move((0.6, 0.3))
        assert len(deltas) == 1
        ts, delta = deltas[0]
        assert ts is None
        assert tuple(delta.result) == tuple(handle.snapshot())

    def test_terminate_sends_drain_delta_and_kills_handle(self):
        session = make_session()
        session.load_objects(OBJECTS)
        handle = session.register(KnnSpec(point=(0.5, 0.5), k=2))
        old = handle.snapshot()
        deltas = []
        handle.subscribe(lambda ts, d: deltas.append(d))
        handle.terminate()
        assert not handle.alive
        assert deltas[-1].terminated
        assert list(deltas[-1].outgoing) == old
        with pytest.raises(RuntimeError):
            handle.snapshot()
        assert handle.qid not in session.monitor.query_ids()

    def test_raw_terminate_update_reaps_handle(self):
        session = make_session()
        session.load_objects(OBJECTS)
        handle = session.register(KnnSpec(point=(0.5, 0.5), k=2))
        session.tick(
            (), [QueryUpdate(handle.qid, QueryUpdateKind.TERMINATE)]
        )
        assert not handle.alive
        assert handle.qid not in session.query_ids()

    def test_context_manager_terminates(self):
        session = make_session()
        session.load_objects(OBJECTS)
        with session.register(KnnSpec(point=(0.5, 0.5))) as handle:
            qid = handle.qid
        assert qid not in session.monitor.query_ids()


class TestTypedSpecs:
    def test_constrained_spec_matches_reference(self):
        session = make_session()
        session.load_objects(OBJECTS)
        region = Rect(0.0, 0.0, 0.5, 0.5)
        handle = session.register(
            ConstrainedKnnSpec(point=(0.4, 0.4), region=region, k=4)
        )
        result = handle.snapshot()
        assert len(result) == 4
        for d, oid in result:
            x, y = session.monitor.object_position(oid)
            assert region.contains_point(x, y)
            assert d == pytest.approx(math.hypot(x - 0.4, y - 0.4))

    def test_range_spec_tracks_grid_range_monitor(self):
        region = Rect(0.2, 0.2, 0.6, 0.6)
        session = make_session()
        session.load_objects(OBJECTS)
        handle = session.register(RangeSpec(region=region))
        reference = GridRangeMonitor(cells_per_axis=16)
        reference.load_objects(OBJECTS)
        reference.install_range_query(0, region)

        def members():
            return {oid for _d, oid in handle.snapshot()}

        assert members() == reference.result(0)
        updates = [
            ObjectUpdate(1, OBJECTS[0][1], (0.3, 0.3)),
            ObjectUpdate(5, OBJECTS[4][1], (0.9, 0.9)),
            ObjectUpdate(9, OBJECTS[8][1], (0.21, 0.59)),
        ]
        session.tick(updates, timestamp=0)
        reference.process(updates)
        assert members() == reference.result(0)
        # Results are ordered by distance from the region center.
        dists = [d for d, _ in handle.snapshot()]
        assert dists == sorted(dists)

    def test_range_move_translates_region(self):
        session = make_session()
        session.load_objects(OBJECTS)
        handle = session.register(RangeSpec(region=(0.0, 0.0, 0.2, 0.2)))
        handle.move((0.5, 0.5))
        region = handle.spec.region
        assert (region.x0, region.y0, region.x1, region.y1) == pytest.approx(
            (0.4, 0.4, 0.6, 0.6)
        )
        reference = GridRangeMonitor(cells_per_axis=16)
        reference.load_objects(OBJECTS)
        reference.install_range_query(0, Rect(0.4, 0.4, 0.6, 0.6))
        assert {oid for _d, oid in handle.snapshot()} == reference.result(0)

    def test_strategy_specs_work_on_brute_force_too(self):
        """Any engine with the strategy surface serves typed specs."""
        session = Session(BruteForceMonitor())
        session.load_objects(OBJECTS)
        handle = session.register(RangeSpec(region=(0.0, 0.0, 0.5, 0.5)))
        reference = make_session()
        reference.load_objects(OBJECTS)
        ref_handle = reference.register(RangeSpec(region=(0.0, 0.0, 0.5, 0.5)))
        assert handle.snapshot() == ref_handle.snapshot()

    def test_strategy_specs_rejected_on_strategyless_engines(self):
        from repro.baselines.ypk import YpkCnnMonitor

        session = Session(YpkCnnMonitor(cells_per_axis=16))
        session.load_objects(OBJECTS)
        with pytest.raises(TypeError, match="strategy-capable"):
            session.register(RangeSpec(region=(0.0, 0.0, 0.5, 0.5)))

    def test_install_spec_rejects_non_specs(self):
        with pytest.raises(TypeError, match="not a query spec"):
            install_spec(CPMMonitor(), 0, "knn")

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KnnSpec(point=(0.5, 0.5), k=0)


class TestShardedSession:
    def test_knn_session_over_sharded_monitor(self, workload):
        monitor = ShardedMonitor(2, cells_per_axis=16)
        session = Session(monitor)
        session.load_objects(workload.initial_objects.items())
        handles = [
            session.register(KnnSpec(point=p, k=SPEC.k), qid=qid)
            for qid, p in sorted(workload.initial_queries.items())
        ]
        seen = []
        handles[0].subscribe(lambda ts, d: seen.append(d.qid))
        reference = CPMMonitor(cells_per_axis=16)
        reference.load_objects(workload.initial_objects.items())
        for qid, p in sorted(workload.initial_queries.items()):
            reference.install_query(qid, p, SPEC.k)
        for batch in workload.batches:
            session.tick_batch(batch)
            reference.process_batch(batch)
        assert session.monitor.result_table() == reference.result_table()
        assert set(seen) <= {handles[0].qid}
        session.close()

    def test_strategy_specs_install_on_sharded(self):
        # Every typed spec is routable on the sharded tier (anchor-cell
        # routing over full-workspace replicas).
        session = Session(ShardedMonitor(2, cells_per_axis=16))
        session.load_objects([(1, (0.2, 0.5)), (2, (0.6, 0.5)), (3, (0.8, 0.5))])
        handle = session.register(ConstrainedKnnSpec(
            point=(0.5, 0.5), region=(0.0, 0.0, 1.0, 1.0), k=2
        ))
        assert [oid for _d, oid in handle.snapshot()] == [2, 1]
        session.close()


class TestReplay:
    def test_replay_matches_replay_workload(self, workload):
        from repro.api.session import replay_workload

        session = make_session()
        report = session.replay(workload)
        reference = replay_workload(CPMMonitor(cells_per_axis=16), workload)
        assert report.algorithm == reference.algorithm
        assert len(report.cycles) == len(reference.cycles)
        for got, want in zip(report.cycles, reference.cycles):
            assert got.stats.cell_scans == want.stats.cell_scans
            assert got.results_changed == want.results_changed
        # The replay registers handles for every initial query.
        assert {h.qid for h in session.handles()} == set(
            workload.initial_queries
        )

    def test_replay_collects_result_log(self, workload):
        session = make_session()
        log: list = []
        session.replay(workload, collect_results=True, result_log=log)
        assert len(log) == SPEC.timestamps + 1  # install + one per cycle
        assert set(log[0]) == set(workload.initial_queries)
