"""Tests for workload replay and metrics (repro.api.session + repro.engine)."""

import importlib
import sys

import pytest

from repro.baselines.brute import BruteForceMonitor
from repro.core.cpm import CPMMonitor
from repro.engine.metrics import CycleMetrics, RunReport
from repro.api.session import replay_workload
from repro.grid.stats import GridStats
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.workload import WorkloadSpec

SPEC = WorkloadSpec(n_objects=80, n_queries=4, k=3, timestamps=8, seed=6)


@pytest.fixture(scope="module")
def workload():
    return BrinkhoffGenerator(SPEC).generate()


class TestWorkloadReplay:
    def test_run_produces_per_cycle_metrics(self, workload):
        report = replay_workload(CPMMonitor(cells_per_axis=16), workload)
        assert report.algorithm == "CPM"
        assert report.timestamps == 8
        assert all(isinstance(c, CycleMetrics) for c in report.cycles)
        assert report.total_processing_sec > 0.0

    def test_results_match_brute_force_cycle_by_cycle(self, workload):
        cpm_log: list = []
        brute_log: list = []
        replay_workload(
            CPMMonitor(cells_per_axis=16),
            workload,
            collect_results=True,
            result_log=cpm_log,
        )
        replay_workload(
            BruteForceMonitor(),
            workload,
            collect_results=True,
            result_log=brute_log,
        )
        assert len(cpm_log) == len(brute_log) == 9  # install + 8
        for t, (got, want) in enumerate(zip(cpm_log, brute_log)):
            assert got.keys() == want.keys(), t
            for qid in want:
                # Distances must match exactly; ids can differ on exact ties.
                assert [d for d, _ in got[qid]] == [d for d, _ in want[qid]], (t, qid)

    def test_on_cycle_callback(self, workload):
        seen = []
        replay_workload(
            CPMMonitor(cells_per_axis=16),
            workload,
            on_cycle=lambda m: seen.append(m.timestamp),
        )
        assert seen == list(range(8))

    def test_install_metrics_recorded(self, workload):
        report = replay_workload(CPMMonitor(cells_per_axis=16), workload)
        assert report.install_sec > 0.0
        assert report.install_stats.cell_scans > 0

    def test_cycle_stats_are_deltas_not_totals(self, workload):
        report = replay_workload(CPMMonitor(cells_per_axis=16), workload)
        # Each cycle's scans must be far below the total.
        total = report.total_cell_scans
        assert all(c.stats.cell_scans <= total for c in report.cycles)

    def test_update_counts_recorded(self, workload):
        report = replay_workload(BruteForceMonitor(), workload)
        for batch, cycle in zip(workload.batches, report.cycles):
            assert cycle.object_updates == len(batch.object_updates)
            assert cycle.query_updates == len(batch.query_updates)


class TestRunReport:
    def make_report(self):
        report = RunReport(algorithm="X", n_queries=5)
        for t in range(4):
            report.cycles.append(
                CycleMetrics(
                    timestamp=t,
                    elapsed_sec=0.5,
                    stats=GridStats(cell_scans=10, objects_scanned=100),
                    object_updates=20,
                    query_updates=2,
                    results_changed=3,
                )
            )
        report.install_sec = 1.0
        return report

    def test_totals(self):
        report = self.make_report()
        assert report.total_processing_sec == pytest.approx(2.0)
        assert report.total_sec == pytest.approx(3.0)
        assert report.total_cell_scans == 40
        assert report.total_objects_scanned == 400
        assert report.total_results_changed == 12

    def test_cell_accesses_per_query_per_timestamp(self):
        report = self.make_report()
        # 40 scans / (5 queries * 4 timestamps) = 2.0 — the Fig 6.3b metric.
        assert report.cell_accesses_per_query_per_timestamp == pytest.approx(2.0)

    def test_mean_cycle_sec(self):
        report = self.make_report()
        assert report.mean_cycle_sec == pytest.approx(0.5)

    def test_empty_report(self):
        report = RunReport(algorithm="X", n_queries=0)
        assert report.total_processing_sec == 0.0
        assert report.cell_accesses_per_query_per_timestamp == 0.0
        assert report.mean_cycle_sec == 0.0

    def test_summary_keys(self):
        summary = self.make_report().summary()
        assert set(summary) == {
            "cpu_sec",
            "cpu_total_sec",
            "install_sec",
            "cell_scans",
            "cell_accesses_per_query_per_ts",
            "objects_scanned",
            "results_changed",
        }


class TestShimRemoved:
    """The deprecated repro.engine.server shim is gone for good."""

    def test_shim_module_is_gone(self):
        sys.modules.pop("repro.engine.server", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.engine.server")

    def test_re_exports_are_gone(self):
        import repro
        import repro.engine

        for module in (repro, repro.engine):
            assert "MonitoringServer" not in module.__all__
            assert "run_workload" not in module.__all__
            with pytest.raises(AttributeError):
                module.MonitoringServer
            with pytest.raises(AttributeError):
                module.run_workload
