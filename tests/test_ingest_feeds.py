"""Unit tests for the update feed adapters (workload, live generator,
JSONL trace) and the cycle batcher."""

from repro.ingest.batcher import CycleBatcher
from repro.ingest.feeds import (
    CycleMark,
    GeneratorFeed,
    JsonlTraceFeed,
    WorkloadFeed,
    write_jsonl_trace,
)
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.workload import WorkloadSpec
from repro.updates import (
    ObjectUpdate,
    QueryUpdate,
    appear_update,
    disappear_update,
    move_update,
)

SPEC = WorkloadSpec(
    n_objects=80,
    n_queries=4,
    k=3,
    timestamps=5,
    seed=99,
    object_speed="fast",
    query_agility=0.5,
)


class TestWorkloadFeed:
    def test_events_mirror_batches_with_marks(self):
        workload = BrinkhoffGenerator(SPEC).generate()
        feed = WorkloadFeed(workload)
        assert feed.initial_objects() == workload.initial_objects
        assert feed.initial_queries() == workload.initial_queries
        events = list(feed.events())
        marks = [e for e in events if isinstance(e, CycleMark)]
        assert [m.timestamp for m in marks] == [b.timestamp for b in workload.batches]
        # Re-group by marks and compare against the batches exactly.
        cycle: list = []
        grouped = []
        for event in events:
            if isinstance(event, CycleMark):
                grouped.append(tuple(cycle))
                cycle = []
            else:
                cycle.append(event)
        assert not cycle  # stream ends on a mark
        for group, batch in zip(grouped, workload.batches):
            assert group == batch.object_updates + batch.query_updates


class TestGeneratorFeed:
    def test_live_feed_matches_materialized_workload(self):
        """The acceptance property: a live feed stepping the agents emits
        the byte-identical stream the materialized generator recorded."""
        workload = BrinkhoffGenerator(SPEC).generate()
        feed = GeneratorFeed(SPEC, timestamps=SPEC.timestamps)
        assert feed.initial_objects() == workload.initial_objects
        assert feed.initial_queries() == workload.initial_queries
        assert list(feed.events()) == list(WorkloadFeed(workload).events())

    def test_second_events_iterator_continues_cycle_labels(self):
        """Resuming iteration must not restart mark timestamps at 0 over
        already-advanced agent state."""
        feed = GeneratorFeed(SPEC, timestamps=4)
        first = feed.events()
        marks: list[int] = []
        for event in first:
            if isinstance(event, CycleMark):
                marks.append(event.timestamp)
                if len(marks) == 2:
                    break
        for event in feed.events():
            if isinstance(event, CycleMark):
                marks.append(event.timestamp)
        assert marks == [0, 1, 2, 3]

    def test_unbounded_feed_outlives_the_spec_horizon(self):
        feed = GeneratorFeed(SPEC, timestamps=None)
        events = feed.events()
        marks = 0
        for event in events:
            if isinstance(event, CycleMark):
                marks += 1
                if marks > SPEC.timestamps + 3:
                    break
        assert marks > SPEC.timestamps


class TestJsonlTraceFeed:
    def test_round_trip(self, tmp_path):
        workload = BrinkhoffGenerator(SPEC).generate()
        path = write_jsonl_trace(tmp_path / "trace.jsonl", workload)
        feed = JsonlTraceFeed(path)
        assert feed.initial_objects() == workload.initial_objects
        assert feed.initial_queries() == workload.initial_queries
        assert list(feed.events()) == list(WorkloadFeed(workload).events())
        qid = next(iter(workload.initial_queries))
        assert feed.install_k(qid) == SPEC.k

    def test_events_are_lazy_and_repeatable(self, tmp_path):
        workload = BrinkhoffGenerator(SPEC).generate()
        path = write_jsonl_trace(tmp_path / "trace.jsonl", workload)
        feed = JsonlTraceFeed(path)
        assert list(feed.events()) == list(feed.events())


class TestCycleBatcher:
    def test_rebases_old_positions_against_applied_state(self):
        batcher = CycleBatcher()
        batcher.prime([(1, (0.1, 0.1))])
        # The buffer coalesced two hops into one target; the batch must
        # move from the *applied* position, not an intermediate one.
        batch, noops = batcher.assemble([(1, (0.3, 0.3))], timestamp=5)
        assert noops == 0
        assert batch.to_object_updates() == (
            move_update(1, (0.1, 0.1), (0.3, 0.3)),
        )
        assert batch.timestamp == 5
        assert batcher.positions[1] == (0.3, 0.3)

    def test_unknown_object_becomes_appearance(self):
        batcher = CycleBatcher()
        batch, _ = batcher.assemble([(7, (0.2, 0.2))])
        assert batch.to_object_updates() == (appear_update(7, (0.2, 0.2)),)

    def test_offline_target_becomes_disappearance(self):
        batcher = CycleBatcher()
        batcher.prime([(7, (0.2, 0.2))])
        batch, _ = batcher.assemble([(7, None)])
        assert batch.to_object_updates() == (disappear_update(7, (0.2, 0.2)),)
        assert 7 not in batcher.positions

    def test_annihilation_and_noop_are_skipped(self):
        batcher = CycleBatcher()
        batcher.prime([(1, (0.4, 0.4))])
        batch, noops = batcher.assemble([(9, None), (1, (0.4, 0.4))])
        assert len(batch) == 0
        assert noops == 2

    def test_query_updates_pass_through(self):
        from repro.updates import QueryUpdateKind

        batcher = CycleBatcher()
        qu = QueryUpdate(5, QueryUpdateKind.INSERT, (0.5, 0.5), 2)
        batch, _ = batcher.assemble([], [qu], timestamp=1)
        assert batch.query_updates == (qu,)


def test_feed_events_typecheck():
    """Feeds only ever yield the three event types."""
    workload = BrinkhoffGenerator(SPEC).generate()
    for event in WorkloadFeed(workload).events():
        assert isinstance(event, (ObjectUpdate, QueryUpdate, CycleMark))
