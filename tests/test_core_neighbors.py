"""Unit tests for the best_NN list (repro.core.neighbors)."""

import math

import pytest

from repro.core.neighbors import NeighborList


class TestAdd:
    def test_fills_to_capacity(self):
        nn = NeighborList(3)
        assert nn.add(0.5, 1)
        assert nn.add(0.3, 2)
        assert nn.add(0.7, 3)
        assert nn.is_full
        assert [oid for _d, oid in nn.entries()] == [2, 1, 3]

    def test_rejects_worse_when_full(self):
        nn = NeighborList(2)
        nn.add(0.1, 1)
        nn.add(0.2, 2)
        assert not nn.add(0.9, 3)
        assert 3 not in nn

    def test_evicts_worst_when_better_arrives(self):
        nn = NeighborList(2)
        nn.add(0.1, 1)
        nn.add(0.5, 2)
        assert nn.add(0.3, 3)
        assert 2 not in nn
        assert nn.entries() == [(0.1, 1), (0.3, 3)]

    def test_tie_broken_by_oid(self):
        nn = NeighborList(1)
        nn.add(0.5, 10)
        # Same distance, smaller id wins.
        assert nn.add(0.5, 3)
        assert nn.entries() == [(0.5, 3)]
        # Same distance, larger id loses.
        assert not nn.add(0.5, 20)

    def test_duplicate_oid_raises(self):
        nn = NeighborList(3)
        nn.add(0.5, 1)
        with pytest.raises(KeyError):
            nn.add(0.4, 1)

    def test_k_below_one_raises(self):
        with pytest.raises(ValueError):
            NeighborList(0)


class TestKthDist:
    def test_inf_while_underfull(self):
        nn = NeighborList(3)
        nn.add(0.5, 1)
        assert math.isinf(nn.kth_dist)

    def test_equals_last_entry_when_full(self):
        nn = NeighborList(2)
        nn.add(0.2, 1)
        nn.add(0.6, 2)
        assert nn.kth_dist == 0.6

    def test_shrinks_as_better_candidates_arrive(self):
        nn = NeighborList(2)
        nn.add(0.8, 1)
        nn.add(0.9, 2)
        nn.add(0.1, 3)
        nn.add(0.2, 4)
        assert nn.kth_dist == 0.2


class TestMembership:
    def test_contains_and_dist_of(self):
        nn = NeighborList(2)
        nn.add(0.4, 7)
        assert 7 in nn
        assert nn.dist_of(7) == 0.4
        assert 8 not in nn

    def test_dist_of_missing_raises(self):
        nn = NeighborList(2)
        with pytest.raises(KeyError):
            nn.dist_of(1)

    def test_len_and_iter(self):
        nn = NeighborList(3)
        nn.add(0.2, 1)
        nn.add(0.1, 2)
        assert len(nn) == 2
        assert list(nn) == [(0.1, 2), (0.2, 1)]

    def test_worst(self):
        nn = NeighborList(3)
        nn.add(0.2, 1)
        nn.add(0.9, 2)
        assert nn.worst() == (0.9, 2)


class TestUpdateDist:
    def test_reorders(self):
        nn = NeighborList(3)
        nn.add(0.1, 1)
        nn.add(0.2, 2)
        nn.add(0.3, 3)
        nn.update_dist(1, 0.25)
        assert [oid for _d, oid in nn.entries()] == [2, 1, 3]
        assert nn.dist_of(1) == 0.25

    def test_update_to_same_dist(self):
        nn = NeighborList(2)
        nn.add(0.5, 1)
        nn.update_dist(1, 0.5)
        assert nn.entries() == [(0.5, 1)]

    def test_update_missing_raises(self):
        nn = NeighborList(2)
        with pytest.raises(KeyError):
            nn.update_dist(1, 0.3)


class TestRemove:
    def test_remove_returns_distance(self):
        nn = NeighborList(2)
        nn.add(0.4, 9)
        assert nn.remove(9) == 0.4
        assert 9 not in nn
        assert len(nn) == 0

    def test_remove_missing_raises(self):
        nn = NeighborList(2)
        with pytest.raises(KeyError):
            nn.remove(1)

    def test_discard(self):
        nn = NeighborList(2)
        nn.add(0.4, 9)
        assert nn.discard(9)
        assert not nn.discard(9)

    def test_underfull_after_removal_reports_inf(self):
        nn = NeighborList(2)
        nn.add(0.1, 1)
        nn.add(0.2, 2)
        nn.remove(2)
        assert math.isinf(nn.kth_dist)


class TestReplace:
    def test_keeps_k_best(self):
        nn = NeighborList(2)
        nn.replace([(0.9, 1), (0.1, 2), (0.5, 3)])
        assert nn.entries() == [(0.1, 2), (0.5, 3)]

    def test_deduplicates_keeping_best_distance(self):
        nn = NeighborList(3)
        nn.replace([(0.9, 1), (0.2, 1), (0.5, 3)])
        assert nn.entries() == [(0.2, 1), (0.5, 3)]

    def test_replace_with_fewer_than_k(self):
        nn = NeighborList(5)
        nn.replace([(0.3, 1)])
        assert len(nn) == 1
        assert math.isinf(nn.kth_dist)

    def test_replace_clears_previous(self):
        nn = NeighborList(2)
        nn.add(0.1, 1)
        nn.replace([(0.2, 2)])
        assert 1 not in nn
        assert 2 in nn


class TestClear:
    def test_clear(self):
        nn = NeighborList(2)
        nn.add(0.1, 1)
        nn.clear()
        assert len(nn) == 0
        assert 1 not in nn
        assert math.isinf(nn.kth_dist)
