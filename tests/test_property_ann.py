"""Property-based tests: aggregate-NN monitoring (Section 5).

For every aggregate function, every generated query-point set and every
generated update stream, the CPM ANN result must match a brute-force
aggregate-distance scan.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpm import CPMMonitor
from repro.geometry.aggregates import adist
from repro.updates import ObjectUpdate

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
point = st.tuples(coord, coord)
aggregate = st.sampled_from(["sum", "min", "max"])


def brute_adists(positions, query_points, k, fn):
    dists = sorted(adist(p, query_points, fn) for p in positions.values())
    return dists[:k]


def close(a, b, tol=1e-9):
    return len(a) == len(b) and all(abs(x - y) <= tol for x, y in zip(a, b))


@given(
    st.lists(point, min_size=0, max_size=30),
    st.lists(point, min_size=1, max_size=5),
    st.integers(min_value=1, max_value=4),
    aggregate,
    st.integers(min_value=2, max_value=10),
)
@settings(max_examples=150, deadline=None)
def test_ann_search_matches_brute_force(objects, query_points, k, fn, cells):
    monitor = CPMMonitor(cells_per_axis=cells)
    positions = dict(enumerate(objects))
    monitor.load_objects(positions.items())
    got = monitor.install_ann_query(0, query_points, k=k, fn=fn)
    assert close([d for d, _ in got], brute_adists(positions, query_points, k, fn))


@st.composite
def ann_scripts(draw):
    n_initial = draw(st.integers(min_value=0, max_value=18))
    initial = {oid: draw(point) for oid in range(n_initial)}
    n_batches = draw(st.integers(min_value=1, max_value=4))
    batches = []
    alive = set(initial)
    next_oid = n_initial
    for _ in range(n_batches):
        events = []
        used = set()
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            kind = draw(st.sampled_from(["move", "appear", "disappear"]))
            if kind == "move" and alive - used:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("move", oid, draw(point)))
                used.add(oid)
            elif kind == "disappear" and alive - used:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("disappear", oid, None))
                used.add(oid)
                alive.discard(oid)
            else:
                events.append(("appear", next_oid, draw(point)))
                alive.add(next_oid)
                used.add(next_oid)
                next_oid += 1
        batches.append(events)
    return initial, batches


@given(
    ann_scripts(),
    st.lists(point, min_size=1, max_size=4),
    st.integers(min_value=1, max_value=3),
    aggregate,
)
@settings(max_examples=80, deadline=None)
def test_ann_monitoring_under_any_stream(script, query_points, k, fn):
    initial, batches = script
    monitor = CPMMonitor(cells_per_axis=6)
    monitor.load_objects(initial.items())
    positions = dict(initial)
    monitor.install_ann_query(0, query_points, k=k, fn=fn)
    for events in batches:
        updates = []
        for kind, oid, new in events:
            if kind == "move":
                updates.append(ObjectUpdate(oid, positions[oid], new))
                positions[oid] = new
            elif kind == "appear":
                updates.append(ObjectUpdate(oid, None, new))
                positions[oid] = new
            else:
                updates.append(ObjectUpdate(oid, positions.pop(oid), None))
        monitor.process(updates)
        assert close(
            [d for d, _ in monitor.result(0)],
            brute_adists(positions, query_points, k, fn),
        )


@given(
    st.lists(point, min_size=1, max_size=25),
    point,
    st.tuples(
        st.floats(min_value=0.0, max_value=0.6),
        st.floats(min_value=0.0, max_value=0.6),
    ),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=100, deadline=None)
def test_constrained_search_matches_filtered_brute_force(objects, q, corner, k):
    from repro.geometry.rects import Rect

    region = Rect(corner[0], corner[1], corner[0] + 0.4, corner[1] + 0.4)
    monitor = CPMMonitor(cells_per_axis=8)
    positions = dict(enumerate(objects))
    monitor.load_objects(positions.items())
    got = monitor.install_constrained_query(0, q, region, k=k)
    expected = sorted(
        math.hypot(x - q[0], y - q[1])
        for (x, y) in positions.values()
        if region.contains_point(x, y)
    )[:k]
    assert close([d for d, _ in got], expected)
