"""Tests for the SEA-CNN baseline monitor (answer-region book-keeping)."""

import math
import random

import pytest

from repro.baselines.sea import SeaCnnMonitor
from repro.updates import (
    QueryUpdate,
    QueryUpdateKind,
    appear_update,
    disappear_update,
    move_update,
)
from tests.conftest import brute_knn, scatter


def fresh(n_objects=60, cells=8, seed=5):
    m = SeaCnnMonitor(cells_per_axis=cells)
    objs = scatter(n_objects, seed=seed)
    m.load_objects(objs)
    return m, dict(objs)


class TestInstall:
    @pytest.mark.parametrize("k", [1, 4, 9])
    def test_initial_result(self, k):
        m, positions = fresh()
        assert m.install_query(0, (0.5, 0.5), k) == brute_knn(positions, (0.5, 0.5), k)

    def test_answer_region_marks_match_circle(self):
        m, _ = fresh()
        m.install_query(0, (0.5, 0.5), 3)
        best = m.result(0)[-1][0]
        expected = set(m.grid.cells_in_circle((0.5, 0.5), best))
        assert m.answer_region_cells(0) == expected

    def test_double_install_raises(self):
        m, _ = fresh()
        m.install_query(0, (0.5, 0.5), 1)
        with pytest.raises(KeyError):
            m.install_query(0, (0.4, 0.4), 1)


class TestCaseClassification:
    def test_case_i_incomer_rescans_answer_region(self):
        m, positions = fresh(n_objects=200, cells=16)
        m.install_query(0, (0.5, 0.5), 2)
        far = max(
            positions, key=lambda o: math.hypot(
                positions[o][0] - 0.5, positions[o][1] - 0.5
            )
        )
        old = positions[far]
        m.reset_stats()
        m.process([move_update(far, old, (0.5001, 0.5001))])
        positions[far] = (0.5001, 0.5001)
        # SEA rescans the answer region (the paper's criticism: CPM would
        # have answered from the update alone).
        assert m.stats.cell_scans > 0
        assert m.result(0) == brute_knn(positions, (0.5, 0.5), 2)

    def test_case_ii_outgoing_nn(self):
        m, positions = fresh()
        m.install_query(0, (0.5, 0.5), 2)
        nn_oid = m.result(0)[0][1]
        old = positions[nn_oid]
        m.process([move_update(nn_oid, old, (0.05, 0.95))])
        positions[nn_oid] = (0.05, 0.95)
        assert m.result(0) == brute_knn(positions, (0.5, 0.5), 2)

    def test_case_iii_query_move(self):
        m, positions = fresh()
        m.install_query(0, (0.5, 0.5), 2)
        m.process([], [QueryUpdate(0, QueryUpdateKind.MOVE, (0.6, 0.6), 2)])
        assert m.result(0) == brute_knn(positions, (0.6, 0.6), 2)

    def test_case_iii_long_query_move(self):
        m, positions = fresh()
        m.install_query(0, (0.1, 0.1), 2)
        m.process([], [QueryUpdate(0, QueryUpdateKind.MOVE, (0.9, 0.9), 2)])
        assert m.result(0) == brute_knn(positions, (0.9, 0.9), 2)

    def test_offline_nn_falls_back_to_fresh_search(self):
        m, positions = fresh()
        m.install_query(0, (0.5, 0.5), 2)
        nn_oid = m.result(0)[0][1]
        m.process([disappear_update(nn_oid, positions[nn_oid])])
        del positions[nn_oid]
        assert m.result(0) == brute_knn(positions, (0.5, 0.5), 2)

    def test_untouched_query_does_no_work(self):
        m, positions = fresh(n_objects=100, cells=16)
        m.install_query(0, (0.2, 0.2), 1)
        far = max(
            positions, key=lambda o: math.hypot(
                positions[o][0] - 0.2, positions[o][1] - 0.2
            )
        )
        old = positions[far]
        m.reset_stats()
        m.process([move_update(far, old, (old[0] + 0.001, old[1]))])
        # Neither old nor new cell is in q's answer region: zero scans.
        assert m.stats.cell_scans == 0


class TestMonitoring:
    def test_random_stream(self):
        m, positions = fresh()
        m.install_query(0, (0.5, 0.5), 3)
        m.install_query(1, (0.15, 0.85), 2)
        rng = random.Random(2)
        for t in range(10):
            updates = []
            for oid in rng.sample(list(positions), 15):
                old = positions[oid]
                new = (rng.random(), rng.random())
                positions[oid] = new
                updates.append(move_update(oid, old, new))
            m.process(updates)
            assert m.result(0) == brute_knn(positions, (0.5, 0.5), 3), t
            assert m.result(1) == brute_knn(positions, (0.15, 0.85), 2), t

    def test_marks_follow_best_dist(self):
        m, positions = fresh(n_objects=150, cells=16)
        m.install_query(0, (0.5, 0.5), 2)
        # Two outsiders move right next to q: the answer region shrinks.
        far = sorted(
            positions,
            key=lambda o: -math.hypot(positions[o][0] - 0.5, positions[o][1] - 0.5),
        )[:2]
        marked_before = len(m.answer_region_cells(0))
        m.process([
            move_update(far[0], positions[far[0]], (0.5001, 0.5)),
            move_update(far[1], positions[far[1]], (0.4999, 0.5)),
        ])
        assert len(m.answer_region_cells(0)) <= marked_before

    def test_underfull_query_monitors_everything(self):
        m = SeaCnnMonitor(cells_per_axis=8)
        m.load_objects([(1, (0.9, 0.9))])
        m.install_query(0, (0.1, 0.1), 3)
        assert len(m.result(0)) == 1
        m.process([appear_update(2, (0.2, 0.2))])
        assert len(m.result(0)) == 2
        m.process([appear_update(3, (0.05, 0.15)), appear_update(4, (0.5, 0.5))])
        result = m.result(0)
        assert len(result) == 3
        assert result[0][1] == 3

    def test_terminate_clears_marks(self):
        m, _ = fresh()
        m.install_query(0, (0.5, 0.5), 2)
        assert m.grid.marked_cells(0)
        m.process([], [QueryUpdate(0, QueryUpdateKind.TERMINATE)])
        assert not m.grid.marked_cells(0)
        assert m.query_ids() == []

    def test_move_with_new_k_restarts_query(self):
        m, positions = fresh()
        m.install_query(0, (0.5, 0.5), 2)
        m.process([], [QueryUpdate(0, QueryUpdateKind.MOVE, (0.5, 0.5), 5)])
        assert m.result(0) == brute_knn(positions, (0.5, 0.5), 5)
