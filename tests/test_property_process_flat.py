"""Property-based equivalence: ``process_flat`` == ``process``.

The columnar fast path's contract is byte-identity with the dataclass
path: same per-cycle changed sets, same results, and — for the monitors
with deterministic accounting — identical cell-access counters.
Hypothesis sweeps workload shapes (generator family, population, k,
speed, agility, grid granularity) across every engine: CPM, YPK-CNN and
SEA-CNN (native columnar loops over batch-addressed cell ids), brute
(default translating wrapper) and the sharded service (flat routing).

The golden acceptance check replays the PR 3 full-replay fixture
workload through ``process_flat`` and requires the byte-identical stream
(results at full float precision via ``repr`` round-tripping) and
counters the fixture recorded for ``process``.

Coalescing correctness rides here too: last-write-wins per object over a
cycle's updates must yield the same end-of-cycle results as the
uncoalesced stream (the property that makes the ingest buffer's
coalescing semantics-preserving).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute import BruteForceMonitor
from repro.baselines.sea import SeaCnnMonitor
from repro.baselines.ypk import YpkCnnMonitor
from repro.core.cpm import CPMMonitor
from repro.ingest.batcher import CycleBatcher
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.sharding import ShardedMonitor
from repro.updates import FlatUpdateBatch

workload_shapes = st.fixed_dictionaries(
    {
        "generator": st.sampled_from(["brinkhoff", "uniform"]),
        "n_objects": st.integers(min_value=30, max_value=120),
        "n_queries": st.integers(min_value=1, max_value=6),
        "k": st.integers(min_value=1, max_value=6),
        "timestamps": st.integers(min_value=1, max_value=6),
        "seed": st.integers(min_value=0, max_value=2**20),
        "object_speed": st.sampled_from(["slow", "medium", "fast"]),
        "query_agility": st.sampled_from([0.0, 0.3, 1.0]),
        "cells": st.sampled_from([4, 8, 16]),
    }
)


def _workload(shape):
    spec = WorkloadSpec(
        n_objects=shape["n_objects"],
        n_queries=shape["n_queries"],
        k=shape["k"],
        timestamps=shape["timestamps"],
        seed=shape["seed"],
        object_speed=shape["object_speed"],
        query_agility=shape["query_agility"],
    )
    if shape["generator"] == "brinkhoff":
        return BrinkhoffGenerator(spec).generate()
    return UniformGenerator(spec).generate()


def _install(monitor, workload):
    monitor.load_objects(sorted(workload.initial_objects.items()))
    for qid, point in sorted(workload.initial_queries.items()):
        monitor.install_query(qid, point, workload.spec.k)


def _counter_tuple(monitor):
    stats = monitor.stats
    return (
        stats.cell_scans,
        stats.objects_scanned,
        stats.inserts,
        stats.deletes,
        stats.mark_ops,
    )


@given(shape=workload_shapes)
@settings(max_examples=25, deadline=None)
def test_cpm_process_flat_is_byte_identical(shape):
    workload = _workload(shape)
    cells = shape["cells"]
    row = CPMMonitor(cells_per_axis=cells)
    flat = CPMMonitor(cells_per_axis=cells)
    _install(row, workload)
    _install(flat, workload)
    for batch in workload.batches:
        expect = row.process(batch.object_updates, batch.query_updates)
        got = flat.process_flat(FlatUpdateBatch.from_batch(batch))
        assert got == expect, batch.timestamp
        assert flat.result_table() == row.result_table(), batch.timestamp
        assert flat.object_count == row.object_count
    assert _counter_tuple(flat) == _counter_tuple(row)


@given(
    shape=workload_shapes,
    engine=st.sampled_from(["YPK-CNN", "SEA-CNN", "brute"]),
)
@settings(max_examples=15, deadline=None)
def test_wrapped_engines_process_flat_matches_process(shape, engine):
    """Every engine's columnar cycle — the YPK/SEA native loops and
    brute's default translating wrapper — must be exactly ``process``
    over the same stream: changed sets, results and counters."""

    def build():
        cells = shape["cells"]
        if engine == "YPK-CNN":
            return YpkCnnMonitor(cells_per_axis=cells)
        if engine == "SEA-CNN":
            return SeaCnnMonitor(cells_per_axis=cells)
        return BruteForceMonitor()

    workload = _workload(shape)
    row = build()
    flat = build()
    _install(row, workload)
    _install(flat, workload)
    for batch in workload.batches:
        expect = row.process(batch.object_updates, batch.query_updates)
        got = flat.process_flat(FlatUpdateBatch.from_batch(batch))
        assert got == expect, batch.timestamp
        assert flat.result_table() == row.result_table(), batch.timestamp
    assert _counter_tuple(flat) == _counter_tuple(row)


@given(shape=workload_shapes, n_shards=st.sampled_from([1, 2, 4]))
@settings(max_examples=10, deadline=None)
def test_sharded_process_flat_matches_single_engine(shape, n_shards):
    workload = _workload(shape)
    cells = shape["cells"]
    single = CPMMonitor(cells_per_axis=cells)
    sharded = ShardedMonitor(n_shards, cells_per_axis=cells)
    _install(single, workload)
    _install(sharded, workload)
    for batch in workload.batches:
        expect = single.process(batch.object_updates, batch.query_updates)
        got = sharded.process_flat(FlatUpdateBatch.from_batch(batch))
        assert got == expect, batch.timestamp
        assert sharded.result_table() == single.result_table(), batch.timestamp
    sharded.close()


@given(shape=workload_shapes)
@settings(max_examples=15, deadline=None)
def test_coalesced_stream_matches_uncoalesced_end_state(shape):
    """Last-write-wins coalescing per oid is semantics-preserving: folding
    each object's updates across a window of cycles into one re-based
    transition yields the identical end-of-window state."""
    workload = _workload(shape)
    cells = shape["cells"]
    raw = CPMMonitor(cells_per_axis=cells)
    coalesced = CPMMonitor(cells_per_axis=cells)
    _install(raw, workload)
    _install(coalesced, workload)

    # Raw path: every batch as generated.
    for batch in workload.batches:
        raw.process(batch.object_updates, batch.query_updates)

    # Coalesced path: fold the whole stream's object updates through a
    # last-write-wins target table (exactly what IngestBuffer keeps),
    # re-base through the batcher, then apply as ONE cycle per query
    # window.  Query updates are order-sensitive, so the fold window
    # breaks at every batch that carries them.
    batcher = CycleBatcher()
    batcher.prime(sorted(workload.initial_objects.items()))
    targets: dict = {}
    for batch in workload.batches:
        for upd in batch.object_updates:
            targets.pop(upd.oid, None)  # re-insert to refresh arrival order
            targets[upd.oid] = upd.new
        if batch.query_updates:
            flat, _ = batcher.assemble(
                list(targets.items()), batch.query_updates, batch.timestamp
            )
            targets.clear()
            coalesced.process_flat(flat)
    if targets:
        flat, _ = batcher.assemble(list(targets.items()), (), 0)
        coalesced.process_flat(flat)

    assert coalesced.result_table() == raw.result_table()
    assert coalesced.object_count == raw.object_count


def test_golden_fixture_replays_byte_identically_through_process_flat():
    """Acceptance: the PR 3 golden stream — recorded with ``process`` —
    is reproduced byte-identically by the columnar fast path."""
    from tests.test_replay_golden import GOLDEN_PATH, GRID, SPEC_OVERRIDES

    from repro.experiments.common import make_workload, scaled_spec

    golden = json.loads(GOLDEN_PATH.read_text())
    spec = scaled_spec(1.0, **SPEC_OVERRIDES)
    workload = make_workload(spec)
    monitor = CPMMonitor(GRID, bounds=spec.bounds)
    monitor.load_objects(sorted(workload.initial_objects.items()))
    initial = {
        str(qid): [
            [repr(d), oid] for d, oid in monitor.install_query(qid, point, spec.k)
        ]
        for qid, point in sorted(workload.initial_queries.items())
    }
    assert initial == golden["initial"]
    for batch, expect in zip(workload.batches, golden["cycles"]):
        changed = monitor.process_flat(FlatUpdateBatch.from_batch(batch))
        got = {
            str(qid): [[repr(d), oid] for d, oid in monitor.result(qid)]
            for qid in sorted(changed)
        }
        assert got == expect["changed"], batch.timestamp
    stats = monitor.stats
    assert {
        "cell_scans": stats.cell_scans,
        "objects_scanned": stats.objects_scanned,
        "inserts": stats.inserts,
        "deletes": stats.deletes,
        "mark_ops": stats.mark_ops,
    } == golden["counters"]
