"""Tests for aggregate-NN monitoring (Section 5: sum / min / max)."""

import math
import random

import pytest

from repro.core.cpm import CPMMonitor
from repro.core.strategies import AggregateNNStrategy
from repro.geometry.aggregates import adist
from repro.updates import appear_update, disappear_update, move_update
from tests.conftest import scatter


def brute_ann(positions, query_points, k, fn):
    entries = sorted(
        (adist(p, query_points, fn), oid) for oid, p in positions.items()
    )
    return entries[:k]


def fresh(n_objects=70, cells=8, seed=8):
    monitor = CPMMonitor(cells_per_axis=cells)
    objs = scatter(n_objects, seed=seed)
    monitor.load_objects(objs)
    return monitor, dict(objs)


QUERY_SETS = [
    [(0.3, 0.3), (0.6, 0.4), (0.45, 0.7)],          # triangle (Figure 5.1)
    [(0.1, 0.1), (0.9, 0.9)],                        # spread diagonal
    [(0.48, 0.52)],                                  # single point
    [(0.2, 0.8), (0.2, 0.8)],                        # duplicated points
    [(0.05, 0.5), (0.95, 0.5), (0.5, 0.05), (0.5, 0.95)],  # wide MBR
]


class TestAnnSearch:
    @pytest.mark.parametrize("fn", ["sum", "min", "max"])
    @pytest.mark.parametrize("points", QUERY_SETS)
    def test_matches_brute_force(self, fn, points):
        monitor, positions = fresh()
        result = monitor.install_ann_query(0, points, k=3, fn=fn)
        assert result == brute_ann(positions, points, 3, fn)

    @pytest.mark.parametrize("fn", ["sum", "min", "max"])
    def test_various_k(self, fn):
        monitor, positions = fresh()
        points = QUERY_SETS[0]
        for qid, k in enumerate([1, 2, 8, 16]):
            assert monitor.install_ann_query(qid, points, k=k, fn=fn) == brute_ann(
                positions, points, k, fn
            )

    def test_single_point_sum_equals_plain_nn(self):
        monitor, _ = fresh()
        ann = monitor.install_ann_query(0, [(0.37, 0.59)], k=4, fn="sum")
        nn = monitor.install_query(1, (0.37, 0.59), 4)
        assert ann == nn

    def test_mbr_spanning_many_cells(self):
        monitor, positions = fresh(cells=16)
        points = [(0.05, 0.05), (0.95, 0.95)]
        assert monitor.install_ann_query(0, points, k=2, fn="sum") == brute_ann(
            positions, points, 2, "sum"
        )

    def test_k_exceeding_population(self):
        monitor = CPMMonitor(cells_per_axis=4)
        monitor.load_objects([(1, (0.5, 0.5)), (2, (0.7, 0.7))])
        result = monitor.install_ann_query(0, [(0.4, 0.4), (0.6, 0.6)], k=5, fn="max")
        assert len(result) == 2


class TestAnnMonitoring:
    @pytest.mark.parametrize("fn", ["sum", "min", "max"])
    def test_random_update_stream(self, fn):
        rng = random.Random(hash(fn) % 1000)
        monitor, positions = fresh()
        points = QUERY_SETS[0]
        monitor.install_ann_query(0, points, k=3, fn=fn)
        for t in range(10):
            updates = []
            for oid in rng.sample(list(positions), 15):
                old = positions[oid]
                new = (
                    min(max(old[0] + rng.uniform(-0.2, 0.2), 0.0), 1.0),
                    min(max(old[1] + rng.uniform(-0.2, 0.2), 0.0), 1.0),
                )
                positions[oid] = new
                updates.append(move_update(oid, old, new))
            monitor.process(updates)
            assert monitor.result(0) == brute_ann(positions, points, 3, fn), (fn, t)

    def test_best_ann_disappears(self):
        monitor, positions = fresh()
        points = QUERY_SETS[1]
        monitor.install_ann_query(0, points, k=2, fn="sum")
        best_oid = monitor.result(0)[0][1]
        monitor.process([disappear_update(best_oid, positions[best_oid])])
        del positions[best_oid]
        assert monitor.result(0) == brute_ann(positions, points, 2, "sum")

    def test_incoming_object_handled_without_rescan(self):
        monitor, positions = fresh()
        points = [(0.45, 0.45), (0.55, 0.55)]
        monitor.install_ann_query(0, points, k=1, fn="sum")
        monitor.reset_stats()
        monitor.process([appear_update(999, (0.5, 0.5))])
        positions[999] = (0.5, 0.5)
        assert monitor.result(0)[0][1] == 999
        assert monitor.stats.cell_scans == 0
        assert monitor.result(0) == brute_ann(positions, points, 1, "sum")

    def test_mixed_ann_and_point_queries(self):
        rng = random.Random(4)
        monitor, positions = fresh()
        points = QUERY_SETS[0]
        monitor.install_ann_query(0, points, k=2, fn="max")
        monitor.install_query(1, (0.5, 0.5), 3)
        for _ in range(6):
            updates = []
            for oid in rng.sample(list(positions), 10):
                old = positions[oid]
                new = (rng.random(), rng.random())
                positions[oid] = new
                updates.append(move_update(oid, old, new))
            monitor.process(updates)
            assert monitor.result(0) == brute_ann(positions, points, 2, "max")
            from tests.conftest import brute_knn

            assert monitor.result(1) == brute_knn(positions, (0.5, 0.5), 3)


class TestAnnInfluenceRegion:
    def test_influence_region_is_iso_adist_contour(self):
        """Cells with amindist < best_dist must all be marked (they are the
        cells whose updates can change the result)."""
        monitor, _ = fresh()
        points = QUERY_SETS[0]
        for fn in ("sum", "min", "max"):
            monitor_f = CPMMonitor(cells_per_axis=8)
            monitor_f.load_objects(scatter(70, seed=8))
            monitor_f.install_ann_query(0, points, k=3, fn=fn)
            best = monitor_f.best_dist(0)
            strategy = monitor_f.query_state(0).strategy
            marked = set(monitor_f.grid.marked_cells(0))
            strict = {
                (i, j)
                for i, j in monitor_f.grid.all_cells()
                if strategy.cell_key(monitor_f.grid, i, j) < best - 1e-12
            }
            assert strict <= marked, fn

    def test_min_region_looks_like_union_of_circles(self):
        """For f=min the influence region is the union of per-point circles
        (Figure 5.2a)."""
        monitor, _ = fresh(n_objects=120)
        points = [(0.2, 0.2), (0.8, 0.8)]
        monitor.install_ann_query(0, points, k=1, fn="min")
        best = monitor.best_dist(0)
        for i, j in monitor.grid.marked_cells(0):
            assert min(
                monitor.grid.mindist(i, j, q) for q in points
            ) <= best + 1e-12
