"""Flat delta capture: ``process_deltas_flat`` pins (ROADMAP item).

The columnar delta path must be byte-identical to the dataclass delta
path — same delta objects, same encoded wire frames, same deterministic
counters — and ``MonitoringService.tick_flat`` must keep the columnar
apply when subscribers are listening (no ``to_object_updates`` fallback).
"""

import pytest

from repro.api import wire
from repro.core.cpm import CPMMonitor
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.service import MonitoringService
from repro.service.sharding import ShardedMonitor
from repro.updates import FlatUpdateBatch

SPEC = WorkloadSpec(n_objects=180, n_queries=5, k=3, timestamps=6, seed=23)
CELLS = 16


@pytest.fixture(scope="module")
def workload():
    return UniformGenerator(SPEC).generate()


def loaded(monitor, workload):
    monitor.load_objects(workload.initial_objects.items())
    for qid, point in workload.initial_queries.items():
        monitor.install_query(qid, point, SPEC.k)
    monitor.reset_stats()
    return monitor


def replay_deltas(monitor, workload, flat: bool):
    """One delta map per cycle, plus the final counter snapshot."""
    stream = []
    for batch in workload.batches:
        if flat:
            deltas = monitor.process_deltas_flat(FlatUpdateBatch.from_batch(batch))
        else:
            deltas = monitor.process_deltas(
                batch.object_updates, batch.query_updates
            )
        stream.append(deltas)
    return stream, monitor.stats.snapshot()


class TestCpmFlatDeltas:
    def test_flat_deltas_byte_identical_to_row_deltas(self, workload):
        row_stream, row_stats = replay_deltas(
            loaded(CPMMonitor(cells_per_axis=CELLS), workload), workload, flat=False
        )
        flat_stream, flat_stats = replay_deltas(
            loaded(CPMMonitor(cells_per_axis=CELLS), workload), workload, flat=True
        )
        assert flat_stats == row_stats
        assert len(flat_stream) == len(row_stream)
        for t, (flat_deltas, row_deltas) in enumerate(
            zip(flat_stream, row_stream)
        ):
            assert flat_deltas.keys() == row_deltas.keys(), t
            for qid in row_deltas:
                # Dataclass equality *and* wire-frame byte equality.
                assert flat_deltas[qid] == row_deltas[qid], (t, qid)
                assert wire.encode_delta(t, flat_deltas[qid]) == wire.encode_delta(
                    t, row_deltas[qid]
                )
        assert any(d for d in row_stream), "workload produced no deltas"

    def test_flat_deltas_not_reentrant(self, workload):
        monitor = loaded(CPMMonitor(cells_per_axis=CELLS), workload)
        batch = FlatUpdateBatch.from_batch(workload.batches[0])
        monitor._delta_log = {}
        try:
            with pytest.raises(RuntimeError, match="re-entrant"):
                monitor.process_deltas_flat(batch)
        finally:
            monitor._delta_log = None


class TestShardedFlatDeltas:
    def test_sharded_flat_deltas_match_single_engine(self, workload):
        single_stream, _ = replay_deltas(
            loaded(CPMMonitor(cells_per_axis=CELLS), workload), workload, flat=True
        )
        sharded = loaded(ShardedMonitor(2, cells_per_axis=CELLS), workload)
        try:
            sharded_stream, _ = replay_deltas(sharded, workload, flat=True)
        finally:
            sharded.close()
        assert len(sharded_stream) == len(single_stream)
        for t, (got, want) in enumerate(zip(sharded_stream, single_stream)):
            assert got == want, t


class TestTickFlatStreaming:
    def test_tick_flat_keeps_columnar_apply_with_subscribers(
        self, workload, monkeypatch
    ):
        """The streamed tick_flat path must never translate the batch
        back to ObjectUpdate rows (the pre-PR5 fallback)."""
        monitor = loaded(CPMMonitor(cells_per_axis=CELLS), workload)
        service = MonitoringService(monitor)
        received = []
        service.subscribe(lambda ts, d: received.append((ts, d.qid)))
        monkeypatch.setattr(
            FlatUpdateBatch,
            "to_object_updates",
            lambda self: pytest.fail("tick_flat fell back to the row encoding"),
        )
        for batch in workload.batches:
            service.tick_flat(FlatUpdateBatch.from_batch(batch))
        assert received, "no deltas streamed"

    def test_tick_flat_streams_same_deltas_as_tick(self, workload):
        row_service = MonitoringService(
            loaded(CPMMonitor(cells_per_axis=CELLS), workload)
        )
        flat_service = MonitoringService(
            loaded(CPMMonitor(cells_per_axis=CELLS), workload)
        )
        row_lines, flat_lines = [], []
        row_service.subscribe(
            lambda ts, d: row_lines.append(wire.encode_delta(ts, d))
        )
        flat_service.subscribe(
            lambda ts, d: flat_lines.append(wire.encode_delta(ts, d))
        )
        for batch in workload.batches:
            row_changed = row_service.tick_batch(batch)
            flat_changed = flat_service.tick_flat(FlatUpdateBatch.from_batch(batch))
            assert row_changed == flat_changed
        assert row_lines == flat_lines
        assert row_lines

    def test_tick_report_times_publish_separately(self, workload):
        service = MonitoringService(
            loaded(CPMMonitor(cells_per_axis=CELLS), workload)
        )
        plain = service.tick_report(FlatUpdateBatch.from_batch(workload.batches[0]))
        assert not plain.streamed
        assert plain.publish_sec == 0.0
        assert plain.process_sec > 0.0
        service.subscribe(lambda ts, d: None)
        streamed = service.tick_report(
            FlatUpdateBatch.from_batch(workload.batches[1])
        )
        assert streamed.streamed
        assert streamed.process_sec > 0.0
        assert streamed.publish_sec >= 0.0
