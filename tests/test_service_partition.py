"""Unit tests for the partition subsystem: sentinels, pulls, sync rows,
eviction, live query migration, full-fidelity capture, and the
``ShardPlan`` edge cases surfaced by halo addressing."""

import pytest

from repro.core.cpm import CPMMonitor
from repro.obs.metrics import MetricsRegistry
from repro.service.executor import SerialShardExecutor
from repro.service.partition import (
    PartitionedMonitor,
    PartitionShardEngine,
    _HaloCell,
)
from repro.service.sharding import ShardPlan
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind

CELLS = 8


def _move(oid, old, new):
    return ObjectUpdate(oid, old, new)


# ----------------------------------------------------------------------
# ShardPlan edge cases (halo addressing relies on all three)
# ----------------------------------------------------------------------


class TestShardPlanEdges:
    def test_single_column_blocks(self):
        plan = ShardPlan.build(CELLS, CELLS)
        for s in range(CELLS):
            assert plan.owned_columns(s) == range(s, s + 1)
            assert plan.shard_of_column(s) == s

    def test_more_shards_than_columns_refused(self):
        with pytest.raises(ValueError, match="cannot split"):
            ShardPlan.build(CELLS + 1, CELLS)

    def test_block_edge_columns(self):
        plan = ShardPlan.build(3, CELLS)  # blocks 3/3/2: starts 0, 3, 6
        assert plan.col_starts == (0, 3, 6)
        for s in range(1, plan.n_shards):
            edge = plan.col_starts[s]
            assert plan.shard_of_column(edge) == s
            assert plan.shard_of_column(edge - 1) == s - 1

    def test_boundary_points_on_block_edges(self):
        plan = ShardPlan.build(4, CELLS)
        for s in range(1, plan.n_shards):
            x = plan.x0 + plan.col_starts[s] * plan.delta
            # A point exactly on a block's left edge belongs to that block
            # (cell_index floors), and a nudge below belongs to the left
            # neighbor — the bisect must not be off by one either way.
            assert plan.shard_of_point(x, 0.5) == s
            assert plan.shard_of_point(x - 1e-9, 0.5) == s - 1

    def test_clamping_at_workspace_edges(self):
        plan = ShardPlan.build(4, CELLS)
        assert plan.shard_of_point(-10.0, 0.5) == 0
        assert plan.shard_of_point(10.0, 0.5) == plan.n_shards - 1
        assert plan.shard_of_column(-3) == 0
        assert plan.shard_of_column(plan.cols + 3) == plan.n_shards - 1


# ----------------------------------------------------------------------
# Shard engine: sentinels, pulls, leave rows
# ----------------------------------------------------------------------


class TestPartitionShardEngine:
    def test_untracked_columns_hold_sentinels(self):
        engine = PartitionShardEngine(CELLS, shard=0, track_lo=0, track_hi=4)
        grid = engine._grid
        for i in range(grid.cols):
            for j in range(grid.rows):
                cell = grid._cells[i * grid.rows + j]
                if i < 4:
                    assert cell is None
                else:
                    assert type(cell) is _HaloCell

    def test_sentinel_access_pulls_and_registers(self):
        engine = PartitionShardEngine(CELLS, shard=0, track_lo=0, track_hi=4)
        pulled = []

        def fake_pull(cid):
            pulled.append(cid)
            return (7,), (0.9,), (0.5,)

        engine.bind_pull_transport(fake_pull)
        grid = engine._grid
        cid = grid.cell_id(0.9, 0.5)
        cell = grid._cells[cid]
        assert list(cell.oids) == [7]  # attribute access materializes
        assert pulled == [cid]
        assert cid in engine._dyn_tracked
        assert engine._object_cells[7] == cid
        assert type(grid._cells[cid]) is not _HaloCell
        # Install charges no counters: the single engine never performs
        # this storage motion.
        assert engine.stats.inserts == 0 and engine.stats.cell_scans == 0

    def test_unbound_pull_raises(self):
        engine = PartitionShardEngine(CELLS, shard=0, track_lo=0, track_hi=4)
        cid = engine._grid.cell_id(0.9, 0.5)
        with pytest.raises(RuntimeError, match="no pull transport"):
            _ = engine._grid._cells[cid].oids

    def test_dense_store_required(self):
        with pytest.raises(ValueError, match="dense"):
            PartitionShardEngine(2048, shard=0, track_lo=0, track_hi=1)


# ----------------------------------------------------------------------
# Coordinator: fan-out, sync rows, eviction, interest release
# ----------------------------------------------------------------------


class TestPartitionedMonitor:
    def test_rows_fan_only_to_tracking_shards(self):
        part = PartitionedMonitor(4, CELLS, halo=0)
        part.load_objects([(1, (0.05, 0.5)), (2, (0.95, 0.5))])
        engines = part.executor.monitors()
        assert engines[0].object_count == 1
        assert engines[3].object_count == 1
        assert engines[1].object_count == 0
        # A same-cell move touches one column: exactly one shard sees it.
        before = part.partition_stats()
        part.process([_move(1, (0.05, 0.5), (0.06, 0.5))])
        after = part.partition_stats()
        assert after["fanout_rows"] - before["fanout_rows"] == 1
        assert after["sync_rows"] == before["sync_rows"]

    def test_halo_columns_receive_border_updates(self):
        part = PartitionedMonitor(2, CELLS, halo=1)
        # Column 3 is owned by shard 0 but inside shard 1's halo.
        x_owned_0 = 3.5 / CELLS
        part.load_objects([(1, (x_owned_0, 0.5))])
        engines = part.executor.monitors()
        assert engines[0].object_count == 1
        assert engines[1].object_count == 1  # halo copy
        stats = part.partition_stats()
        assert stats["sync_rows"] == 0  # load is not a cycle
        part.process([_move(1, (x_owned_0, 0.5), (x_owned_0, 0.6))])
        assert part.partition_stats()["sync_rows"] == 1  # second copy synced

    def test_store_counters_are_canonical(self):
        single = CPMMonitor(CELLS)
        part = PartitionedMonitor(4, CELLS, halo=1)
        objs = [(i, (i / 10 % 1.0, 0.3)) for i in range(8)]
        for m in (single, part):
            m.load_objects(objs)
            m.install_query(1, (0.42, 0.33), 3)
        ups = [_move(0, (0.0, 0.3), (0.77, 0.4)), ObjectUpdate(9, None, (0.5, 0.5))]
        assert part.process(ups) == single.process(ups)
        assert part.stats.snapshot() == single.stats.snapshot()

    def test_pulled_cells_evicted_when_unmarked(self):
        part = PartitionedMonitor(2, CELLS, halo=0)
        part.load_objects([(i, (i / 16 % 1.0, 0.5)) for i in range(16)])
        # A query on shard 0 whose k spans the whole workspace: the
        # search pulls far columns, then termination releases them.
        part.install_query(1, (0.1, 0.5), 12)
        stats = part.partition_stats()
        assert stats["pulls"] > 0
        assert part._dyn_mask  # interest registered
        engines = part.executor.monitors()
        assert engines[0]._dyn_tracked
        part.process([], [QueryUpdate(1, QueryUpdateKind.TERMINATE)])
        assert not engines[0]._dyn_tracked  # evicted at cycle finish
        assert not part._dyn_mask  # interest released
        assert part.partition_stats()["evictions"] > 0

    def test_query_updates_only_cycle(self):
        single = CPMMonitor(CELLS)
        part = PartitionedMonitor(2, CELLS)
        objs = [(i, (i / 8 % 1.0, 0.5)) for i in range(8)]
        for m in (single, part):
            m.load_objects(objs)
        qus = [QueryUpdate(1, QueryUpdateKind.INSERT, (0.3, 0.5), 2)]
        assert part.process_deltas([], qus) == single.process_deltas([], qus)
        assert part.stats.snapshot() == single.stats.snapshot()

    def test_close_context_manager(self):
        with PartitionedMonitor(2, CELLS) as part:
            part.load_objects([(1, (0.2, 0.2))])
            assert part.object_count == 1


# ----------------------------------------------------------------------
# Live query migration
# ----------------------------------------------------------------------


class TestQueryMigration:
    def _setup(self, metrics=None, halo=1):
        part = PartitionedMonitor(2, CELLS, halo=halo, metrics=metrics)
        single = CPMMonitor(CELLS)
        objs = [(i, ((i % 16) / 16 + 1 / 32, (i // 16) / 4 + 0.1)) for i in range(48)]
        for m in (single, part):
            m.load_objects(objs)
            m.install_query(1, (0.45, 0.5), 3)
        return part, single

    def test_cross_boundary_move_migrates(self):
        registry = MetricsRegistry()
        part, single = self._setup(metrics=registry)
        assert part.query_shard(1) == 0
        qus = [QueryUpdate(1, QueryUpdateKind.MOVE, (0.55, 0.5), 3)]
        assert part.process_deltas([], qus) == single.process_deltas([], qus)
        assert part.query_shard(1) == 1
        assert part.partition_stats()["migrations"] == 1
        assert registry.snapshot()["repro_query_migrations_total"] == 1
        assert part.result_table() == single.result_table()
        assert part.stats.snapshot() == single.stats.snapshot()

    def test_short_move_runs_pull_free(self):
        """The carried visit list prefetches the neighborhood, so a short
        cross-boundary move re-searches without a single on-demand pull."""
        part, single = self._setup()
        pulls_before = part.partition_stats()["pulls"]
        qus = [QueryUpdate(1, QueryUpdateKind.MOVE, (0.52, 0.5), 3)]
        part.process([], qus)
        single.process([], qus)
        stats = part.partition_stats()
        assert stats["migrations"] == 1
        assert stats["prefetch_cells"] > 0
        assert stats["pulls"] == pulls_before
        assert part.result_table() == single.result_table()
        assert part.stats.snapshot() == single.stats.snapshot()

    def test_same_shard_move_does_not_migrate(self):
        part, single = self._setup()
        qus = [QueryUpdate(1, QueryUpdateKind.MOVE, (0.40, 0.5), 3)]
        assert part.process_deltas([], qus) == single.process_deltas([], qus)
        assert part.partition_stats()["migrations"] == 0
        assert part.query_shard(1) == 0

    def test_migrate_out_in_round_trip_carries_bookkeeping(self):
        part, _ = self._setup()
        executor = part.executor
        src = part.query_shard(1)
        engines = executor.monitors()
        state_before = engines[src]._queries[1]
        entries = state_before.nn.entries()
        visit = list(state_before.visit_cids)
        carried = part._call(src, "migrate_out_query", 1)
        assert carried["entries"] == entries
        assert carried["visit_cids"] == visit
        assert 1 not in engines[src]._queries
        dst = 1 - src
        prefetch = part._build_prefetch(carried, dst)
        part._call(dst, "migrate_in_query", carried, prefetch)
        state_after = engines[dst]._queries[1]
        assert state_after.nn.entries() == entries
        assert list(state_after.visit_cids) == visit
        assert state_after.marked_upto == state_before.marked_upto
        assert state_after.best_dist == state_before.best_dist
        part._query_shard[1] = dst
        assert part.result(1) == entries

    def test_stacked_updates_fall_back_to_split(self):
        """Two updates for one query in a batch use the inherited
        TERMINATE+INSERT routing — still byte-identical, not migrated."""
        part, single = self._setup()
        qus = [
            QueryUpdate(1, QueryUpdateKind.MOVE, (0.55, 0.5), 3),
            QueryUpdate(1, QueryUpdateKind.MOVE, (0.45, 0.5), 3),
        ]
        assert part.process_deltas([], qus) == single.process_deltas([], qus)
        assert part.partition_stats()["migrations"] == 0
        assert part.result_table() == single.result_table()


# ----------------------------------------------------------------------
# Full-fidelity capture/restore
# ----------------------------------------------------------------------


class TestCaptureRestore:
    def test_round_trip_is_counter_exact(self):
        part = PartitionedMonitor(2, CELLS, executor=SerialShardExecutor())
        part.load_objects([(i, (i / 12 % 1.0, 0.4)) for i in range(12)])
        part.install_query(1, (0.3, 0.4), 4)
        part.process([_move(2, (2 / 12, 0.4), (0.31, 0.41))])
        engines = part.executor.monitors()
        for shard, engine in enumerate(engines):
            snap = engine.capture_state()
            fresh = PartitionShardEngine(
                CELLS,
                shard=shard,
                track_lo=engine.track_lo,
                track_hi=engine.track_hi,
            )
            fresh.restore_state(snap)
            assert fresh.result_table() == engine.result_table()
            assert fresh.object_count == engine.object_count
            assert fresh._dyn_tracked == engine._dyn_tracked
            assert fresh._grid._mark_count == engine._grid._mark_count
            q_old = engine._queries.get(1)
            q_new = fresh._queries.get(1)
            assert (q_old is None) == (q_new is None)
            if q_old is not None:
                assert list(q_new.visit_cids) == list(q_old.visit_cids)
                assert q_new.marked_upto == q_old.marked_upto
                assert list(q_new.heap._heap) == list(q_old.heap._heap)

    def test_restore_refuses_populated_engine(self):
        engine = PartitionShardEngine(CELLS, shard=0, track_lo=0, track_hi=CELLS)
        engine.load_objects([(1, (0.2, 0.2))])
        snap = engine.capture_state()
        with pytest.raises(RuntimeError, match="empty engine"):
            engine.restore_state(snap)

    def test_restore_refuses_foreign_capture(self):
        engine = PartitionShardEngine(CELLS, shard=0, track_lo=0, track_hi=CELLS)
        with pytest.raises(ValueError, match="partition captures"):
            engine.restore_state({"cells": {}})
