"""Tests for constrained NN monitoring (Figure 5.3)."""

import math
import random

import pytest

from repro.core.cpm import CPMMonitor
from repro.geometry.rects import Rect
from repro.updates import appear_update, move_update
from tests.conftest import scatter


def brute_constrained(positions, q, k, region):
    entries = sorted(
        (math.hypot(x - q[0], y - q[1]), oid)
        for oid, (x, y) in positions.items()
        if region.contains_point(x, y)
    )
    return entries[:k]


def fresh(n_objects=80, cells=8, seed=12):
    monitor = CPMMonitor(cells_per_axis=cells)
    objs = scatter(n_objects, seed=seed)
    monitor.load_objects(objs)
    return monitor, dict(objs)


class TestConstrainedSearch:
    def test_northeast_sector(self):
        """The paper's example: monitor the NN to the northeast of q."""
        monitor, positions = fresh()
        q = (0.5, 0.5)
        region = Rect(0.5, 0.5, 1.0, 1.0)
        result = monitor.install_constrained_query(0, q, region, k=1)
        assert result == brute_constrained(positions, q, 1, region)
        # The unconstrained NN differs when it lies outside the region.
        x, y = positions[result[0][1]]
        assert x >= 0.5 and y >= 0.5

    @pytest.mark.parametrize(
        "region",
        [
            Rect(0.0, 0.0, 0.5, 0.5),
            Rect(0.25, 0.25, 0.75, 0.75),
            Rect(0.8, 0.0, 1.0, 1.0),
            Rect(0.0, 0.9, 1.0, 1.0),
        ],
    )
    def test_various_regions(self, region):
        monitor, positions = fresh()
        q = (0.5, 0.5)
        result = monitor.install_constrained_query(0, q, region, k=3)
        assert result == brute_constrained(positions, q, 3, region)

    def test_query_outside_region(self):
        monitor, positions = fresh()
        q = (0.1, 0.1)
        region = Rect(0.6, 0.6, 1.0, 1.0)
        result = monitor.install_constrained_query(0, q, region, k=2)
        assert result == brute_constrained(positions, q, 2, region)

    def test_empty_region_gives_empty_result(self):
        monitor, _ = fresh()
        region = Rect(0.45, 0.45, 0.4500001, 0.4500001)
        result = monitor.install_constrained_query(0, (0.5, 0.5), region, k=2)
        # Possibly empty: no object inside the sliver region.
        assert all(
            region.contains_point(*pos)
            for pos in []
        )
        assert isinstance(result, list)

    def test_skips_cells_outside_region(self):
        monitor, _ = fresh(n_objects=200, cells=16)
        region = Rect(0.5, 0.5, 1.0, 1.0)
        monitor.install_constrained_query(0, (0.5, 0.5), region, k=1)
        state = monitor.query_state(0)
        for i, j in state.visit_cells:
            x0, y0, x1, y1 = monitor.grid.cell_rect(i, j)
            assert region.intersects_bounds(x0, y0, x1, y1)


class TestConstrainedMonitoring:
    def test_object_leaving_region_evicted(self):
        monitor, positions = fresh()
        q = (0.5, 0.5)
        region = Rect(0.5, 0.5, 1.0, 1.0)
        monitor.install_constrained_query(0, q, region, k=2)
        nn_oid = monitor.result(0)[0][1]
        old = positions[nn_oid]
        # The object moves close to q but OUTSIDE the region: it must leave
        # the result even though its distance shrank.
        monitor.process([move_update(nn_oid, old, (0.49, 0.49))])
        positions[nn_oid] = (0.49, 0.49)
        assert nn_oid not in [oid for _d, oid in monitor.result(0)]
        assert monitor.result(0) == brute_constrained(positions, q, 2, region)

    def test_object_entering_region_becomes_candidate(self):
        monitor, positions = fresh()
        q = (0.5, 0.5)
        region = Rect(0.5, 0.5, 1.0, 1.0)
        monitor.install_constrained_query(0, q, region, k=2)
        monitor.process([appear_update(999, (0.51, 0.51))])
        positions[999] = (0.51, 0.51)
        assert monitor.result(0)[0][1] == 999
        assert monitor.result(0) == brute_constrained(positions, q, 2, region)

    def test_random_stream_stays_correct(self):
        rng = random.Random(31)
        monitor, positions = fresh()
        q = (0.4, 0.6)
        region = Rect(0.3, 0.3, 0.9, 0.9)
        monitor.install_constrained_query(0, q, region, k=3)
        for t in range(10):
            updates = []
            for oid in rng.sample(list(positions), 20):
                old = positions[oid]
                new = (rng.random(), rng.random())
                positions[oid] = new
                updates.append(move_update(oid, old, new))
            monitor.process(updates)
            assert monitor.result(0) == brute_constrained(positions, q, 3, region), t
