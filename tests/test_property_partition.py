"""Property-based tests: the conceptual partition invariants.

The correctness proof of Section 3.1 rests on two structural facts that
must hold for *every* grid size and core block:

1. the direction rectangles plus the core tile the grid exactly once;
2. Lemma 3.1 / Corollaries 5.1-5.2 — the strip keys form an arithmetic
   progression, and each strip key lower-bounds all its cells' keys.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import DIRECTIONS, ConceptualPartition
from repro.core.strategies import AggregateNNStrategy, PointNNStrategy
from repro.grid.grid import Grid


@st.composite
def grids_and_cores(draw):
    cols = draw(st.integers(min_value=1, max_value=14))
    rows = draw(st.integers(min_value=1, max_value=14))
    i_lo = draw(st.integers(min_value=0, max_value=cols - 1))
    i_hi = draw(st.integers(min_value=i_lo, max_value=cols - 1))
    j_lo = draw(st.integers(min_value=0, max_value=rows - 1))
    j_hi = draw(st.integers(min_value=j_lo, max_value=rows - 1))
    return ConceptualPartition(i_lo, i_hi, j_lo, j_hi, cols, rows)


@given(grids_and_cores())
@settings(max_examples=200, deadline=None)
def test_partition_tiles_grid_exactly_once(partition):
    counts: dict = {}
    for direction in DIRECTIONS:
        level = 0
        while partition.exists(direction, level):
            for cell in partition.strip_cells(direction, level):
                counts[cell] = counts.get(cell, 0) + 1
            level += 1
    for cell in partition.core_cells():
        counts[cell] = counts.get(cell, 0) + 1
    assert len(counts) == partition.cols * partition.rows
    assert all(c == 1 for c in counts.values())


@given(grids_and_cores())
@settings(max_examples=100, deadline=None)
def test_strip_cells_stay_inside_grid(partition):
    for direction in DIRECTIONS:
        level = 0
        while partition.exists(direction, level):
            for i, j in partition.strip_cells(direction, level):
                assert 0 <= i < partition.cols
                assert 0 <= j < partition.rows
            level += 1


@given(
    st.integers(min_value=2, max_value=32),
    st.floats(min_value=0.001, max_value=0.999),
    st.floats(min_value=0.001, max_value=0.999),
)
@settings(max_examples=150, deadline=None)
def test_lemma_3_1_key_recurrence(cells, qx, qy):
    """mindist(DIR_{j+1}, q) == mindist(DIR_j, q) + delta, exactly."""
    grid = Grid(cells)
    strategy = PointNNStrategy(qx, qy)
    partition = strategy.partition(grid)
    step = strategy.level_step(grid)
    for direction in DIRECTIONS:
        if not partition.exists(direction, 0):
            continue
        key = strategy.strip_key0(grid, partition, direction)
        level = 0
        while partition.exists(direction, level):
            # The strip key lower-bounds every cell in the strip, and the
            # bound is tight for the cell nearest the query's projection.
            cell_keys = [
                strategy.cell_key(grid, i, j)
                for i, j in partition.strip_cells(direction, level)
            ]
            assert min(cell_keys) >= key - 1e-12
            assert min(cell_keys) <= key + 1e-12  # tightness (arm spans q)
            key += step
            level += 1


@given(
    st.integers(min_value=2, max_value=16),
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=0.99),
            st.floats(min_value=0.01, max_value=0.99),
        ),
        min_size=1,
        max_size=5,
    ),
    st.sampled_from(["sum", "min", "max"]),
)
@settings(max_examples=100, deadline=None)
def test_corollaries_5_1_and_5_2(cells, points, fn):
    """amindist(DIR_{j+1}, Q) == amindist(DIR_j, Q) + step, where step is
    m*delta for sum and delta for min/max."""
    grid = Grid(cells)
    strategy = AggregateNNStrategy(points, fn)
    partition = strategy.partition(grid)
    step = strategy.level_step(grid)
    expected_step = len(points) * grid.delta if fn == "sum" else grid.delta
    assert abs(step - expected_step) < 1e-12
    for direction in DIRECTIONS:
        if not partition.exists(direction, 0):
            continue
        key = strategy.strip_key0(grid, partition, direction)
        level = 0
        while partition.exists(direction, level):
            cell_keys = [
                strategy.cell_key(grid, i, j)
                for i, j in partition.strip_cells(direction, level)
            ]
            # Lower bound (correctness requirement).
            assert min(cell_keys) >= key - 1e-9
            key += step
            level += 1


@given(grids_and_cores())
@settings(max_examples=100, deadline=None)
def test_owner_of_agrees_with_enumeration(partition):
    for i in range(partition.cols):
        for j in range(partition.rows):
            owner = partition.owner_of((i, j))
            if owner is None:
                assert partition.i_lo <= i <= partition.i_hi
                assert partition.j_lo <= j <= partition.j_hi
            else:
                direction, level = owner
                assert (i, j) in set(partition.strip_cells(direction, level))
