"""Regression tests for the boundary floating-point incident.

Found by hypothesis: an object exactly on the workspace edge is clamped
into the last row/column cell, whose naively computed rectangle can end a
few ulps *before* the edge.  The cell's mindist then exceeds the object's
true distance, which breaks the invariant ``mindist(c, q) <= dist(p, q)``
for ``p`` in ``c`` — and, downstream, unmarked the cell housing a query's
current NN, making that NN's departure invisible.

Fixes under test:
* ``Grid.cell_rect`` extends the last column/row to the exact bounds;
* ``reconcile_marks`` / SEA-CNN marking keep ``boundary_epsilon`` slack.
"""

import pytest

from repro.baselines.sea import SeaCnnMonitor
from repro.core.cpm import CPMMonitor
from repro.grid.grid import Grid
from repro.updates import ObjectUpdate


class TestCellRectBoundary:
    def test_last_cells_reach_the_workspace_edge(self):
        grid = Grid(6)  # delta = 1/6: 6*(1/6) != 1.0 in floating point
        *_rest, x1, y1 = grid.cell_rect(5, 5)
        assert x1 == 1.0
        assert y1 == 1.0

    def test_boundary_object_has_zero_mindist_in_its_cell(self):
        grid = Grid(6)
        cell = grid.cell_of(0.0, 1.0)
        assert grid.mindist(cell[0], cell[1], (0.0, 1.0)) == 0.0

    def test_boundary_epsilon_positive_and_scales(self):
        small = Grid(8)
        big = Grid(8, bounds=(0.0, 0.0, 1000.0, 1000.0))
        assert 0.0 < small.boundary_epsilon < big.boundary_epsilon


class TestHypothesisCounterexample:
    """The exact falsifying example hypothesis produced."""

    def scenario(self, monitor):
        monitor.load_objects([(0, (0.0, 0.0)), (1, (0.0, 1.0)), (2, (0.0, 0.0))])
        monitor.install_query(0, (0.0, 1.0), 1)
        assert monitor.result(0) == [(0.0, 1)]
        monitor.process([
            ObjectUpdate(0, (0.0, 0.0), (0.0, 0.0)),
            ObjectUpdate(1, (0.0, 1.0), (0.0, 0.0)),
        ])
        assert monitor.result(0) == [(1.0, 0)]

    def test_cpm(self):
        self.scenario(CPMMonitor(cells_per_axis=6))

    def test_sea(self):
        self.scenario(SeaCnnMonitor(cells_per_axis=6))

    def test_cpm_zero_best_dist_keeps_query_cell_marked(self):
        monitor = CPMMonitor(cells_per_axis=6)
        monitor.load_objects([(1, (0.0, 1.0))])
        monitor.install_query(0, (0.0, 1.0), 1)
        # best_dist == 0.0, yet the query/NN cell must stay in the
        # influence region.
        assert monitor.query_state(0).marked_upto >= 1
        cq = monitor.grid.cell_of(0.0, 1.0)
        assert cq in set(monitor.influence_cells(0))


class TestCornerClusters:
    @pytest.mark.parametrize("corner", [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)])
    def test_nn_departure_from_corner_detected(self, corner):
        monitor = CPMMonitor(cells_per_axis=6)
        far = (abs(corner[0] - 0.5), abs(corner[1] - 0.5))
        monitor.load_objects([(1, corner), (2, far)])
        monitor.install_query(0, corner, 1)
        assert monitor.result(0)[0][1] == 1
        monitor.process([ObjectUpdate(1, corner, far)])
        # Object 1 left the corner; the result must notice.
        assert monitor.result(0)[0][0] > 0.0
