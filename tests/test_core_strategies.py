"""Unit tests for the query-geometry strategies (Sections 3 and 5)."""

import math

import pytest

from repro.core.partition import DIRECTIONS, DOWN, LEFT, RIGHT, UP
from repro.core.strategies import (
    AggregateNNStrategy,
    ConstrainedStrategy,
    PointNNStrategy,
)
from repro.geometry.rects import Rect
from repro.grid.grid import Grid


@pytest.fixture
def grid() -> Grid:
    return Grid(8)  # delta = 0.125


class TestPointNNStrategy:
    def test_dist_is_euclidean(self):
        s = PointNNStrategy(0.0, 0.0)
        assert s.dist(3.0, 4.0) == 5.0

    def test_accepts_everything(self):
        s = PointNNStrategy(0.5, 0.5)
        assert s.accepts(0.0, 0.0)
        assert s.accepts(100.0, -100.0)

    def test_core_range_is_query_cell(self, grid):
        s = PointNNStrategy(0.3, 0.7)
        assert s.core_range(grid) == (2, 2, 5, 5)

    def test_cell_key_matches_grid_mindist(self, grid):
        s = PointNNStrategy(0.3, 0.7)
        for i in range(8):
            for j in range(8):
                assert s.cell_key(grid, i, j) == grid.mindist(i, j, (0.3, 0.7))

    def test_strip_key0_is_perpendicular_gap(self, grid):
        # q at (0.30, 0.70): cell (2, 5) covers [0.25,0.375)x[0.625,0.75).
        s = PointNNStrategy(0.30, 0.70)
        part = s.partition(grid)
        assert s.strip_key0(grid, part, UP) == pytest.approx(0.75 - 0.70)
        assert s.strip_key0(grid, part, DOWN) == pytest.approx(0.70 - 0.625)
        assert s.strip_key0(grid, part, RIGHT) == pytest.approx(0.375 - 0.30)
        assert s.strip_key0(grid, part, LEFT) == pytest.approx(0.30 - 0.25)

    def test_opposite_strip_keys_sum_to_delta(self, grid):
        # As in the Figure 3.2a example: U0+D0 = L0+R0 = delta.
        s = PointNNStrategy(0.41, 0.83)
        part = s.partition(grid)
        up = s.strip_key0(grid, part, UP)
        down = s.strip_key0(grid, part, DOWN)
        left = s.strip_key0(grid, part, LEFT)
        right = s.strip_key0(grid, part, RIGHT)
        assert up + down == pytest.approx(grid.delta)
        assert left + right == pytest.approx(grid.delta)

    def test_strip_key_lower_bounds_cells(self, grid):
        # Lemma 3.1 usage: strip key must lower-bound every cell in it.
        s = PointNNStrategy(0.55, 0.45)
        part = s.partition(grid)
        step = s.level_step(grid)
        for direction in DIRECTIONS:
            key = s.strip_key0(grid, part, direction)
            level = 0
            while part.exists(direction, level):
                for i, j in part.strip_cells(direction, level):
                    assert s.cell_key(grid, i, j) >= key - 1e-12
                key += step
                level += 1

    def test_level_step_is_delta(self, grid):
        assert PointNNStrategy(0.5, 0.5).level_step(grid) == grid.delta

    def test_reference_point(self):
        assert PointNNStrategy(0.2, 0.8).reference_point() == (0.2, 0.8)


class TestAggregateNNStrategy:
    POINTS = [(0.2, 0.2), (0.4, 0.3), (0.3, 0.55)]

    def test_empty_points_raises(self):
        with pytest.raises(ValueError):
            AggregateNNStrategy([], "sum")

    def test_dist_sum(self):
        s = AggregateNNStrategy(self.POINTS, "sum")
        p = (0.5, 0.5)
        expected = sum(math.hypot(p[0] - x, p[1] - y) for x, y in self.POINTS)
        assert s.dist(*p) == pytest.approx(expected)

    def test_dist_min_max(self):
        p = (0.5, 0.5)
        dists = [math.hypot(p[0] - x, p[1] - y) for x, y in self.POINTS]
        assert AggregateNNStrategy(self.POINTS, "min").dist(*p) == pytest.approx(min(dists))
        assert AggregateNNStrategy(self.POINTS, "max").dist(*p) == pytest.approx(max(dists))

    def test_mbr(self):
        s = AggregateNNStrategy(self.POINTS, "sum")
        m = s.mbr
        assert (m.x0, m.y0, m.x1, m.y1) == (0.2, 0.2, 0.4, 0.55)

    def test_core_range_covers_mbr(self, grid):
        s = AggregateNNStrategy(self.POINTS, "sum")
        i_lo, i_hi, j_lo, j_hi = s.core_range(grid)
        assert (i_lo, j_lo) == grid.cell_of(0.2, 0.2)
        assert (i_hi, j_hi) == grid.cell_of(0.4, 0.55)
        assert i_lo <= i_hi and j_lo <= j_hi

    def test_cell_key_is_amindist(self, grid):
        for fn in ("sum", "min", "max"):
            s = AggregateNNStrategy(self.POINTS, fn)
            mindists = [grid.mindist(6, 6, q) for q in self.POINTS]
            expected = {"sum": sum, "min": min, "max": max}[fn](mindists)
            assert s.cell_key(grid, 6, 6) == pytest.approx(expected)

    def test_cell_key_lower_bounds_adist(self, grid):
        # amindist(c, Q) <= adist(p, Q) for any p in c.
        import random

        rng = random.Random(9)
        for fn in ("sum", "min", "max"):
            s = AggregateNNStrategy(self.POINTS, fn)
            for _ in range(40):
                i, j = rng.randrange(8), rng.randrange(8)
                x0, y0, x1, y1 = grid.cell_rect(i, j)
                px, py = rng.uniform(x0, x1), rng.uniform(y0, y1)
                assert s.cell_key(grid, i, j) <= s.dist(px, py) + 1e-12

    def test_strip_key0_lower_bounds_strip_cells(self, grid):
        for fn in ("sum", "min", "max"):
            s = AggregateNNStrategy(self.POINTS, fn)
            part = s.partition(grid)
            step = s.level_step(grid)
            for direction in DIRECTIONS:
                if not part.exists(direction, 0):
                    continue
                key = s.strip_key0(grid, part, direction)
                level = 0
                while part.exists(direction, level):
                    for i, j in part.strip_cells(direction, level):
                        assert s.cell_key(grid, i, j) >= key - 1e-12
                    key += step
                    level += 1

    def test_level_step_corollaries(self, grid):
        # Corollary 5.1: sum steps by m * delta; 5.2: min/max step by delta.
        m = len(self.POINTS)
        assert AggregateNNStrategy(self.POINTS, "sum").level_step(grid) == pytest.approx(
            m * grid.delta
        )
        assert AggregateNNStrategy(self.POINTS, "min").level_step(grid) == pytest.approx(
            grid.delta
        )
        assert AggregateNNStrategy(self.POINTS, "max").level_step(grid) == pytest.approx(
            grid.delta
        )

    def test_single_point_sum_equals_point_nn(self, grid):
        ann = AggregateNNStrategy([(0.3, 0.7)], "sum")
        nn = PointNNStrategy(0.3, 0.7)
        assert ann.dist(0.9, 0.1) == pytest.approx(nn.dist(0.9, 0.1))
        assert ann.core_range(grid) == nn.core_range(grid)
        part = ann.partition(grid)
        for direction in DIRECTIONS:
            assert ann.strip_key0(grid, part, direction) == pytest.approx(
                nn.strip_key0(grid, part, direction)
            )

    def test_reference_point_is_mbr_center(self):
        s = AggregateNNStrategy([(0.2, 0.2), (0.4, 0.6)], "sum")
        assert s.reference_point() == (pytest.approx(0.3), pytest.approx(0.4))


class TestConstrainedStrategy:
    def test_accepts_filters_region(self):
        s = ConstrainedStrategy(PointNNStrategy(0.5, 0.5), Rect(0.5, 0.5, 1.0, 1.0))
        assert s.accepts(0.7, 0.7)
        assert not s.accepts(0.3, 0.7)
        assert s.accepts(0.5, 0.5)  # border inclusive

    def test_dist_unchanged(self):
        inner = PointNNStrategy(0.0, 0.0)
        s = ConstrainedStrategy(inner, Rect(0.0, 0.0, 1.0, 1.0))
        assert s.dist(0.3, 0.4) == inner.dist(0.3, 0.4)

    def test_cell_allowed_by_intersection(self, grid):
        s = ConstrainedStrategy(
            PointNNStrategy(0.5, 0.5), Rect(0.5, 0.5, 1.0, 1.0)
        )
        assert s.cell_allowed(grid, 7, 7)
        assert not s.cell_allowed(grid, 0, 0)
        # Cell touching the region border counts as intersecting.
        assert s.cell_allowed(grid, 3, 3)

    def test_no_nesting(self):
        inner = ConstrainedStrategy(PointNNStrategy(0.5, 0.5), Rect(0, 0, 1, 1))
        with pytest.raises(TypeError):
            ConstrainedStrategy(inner, Rect(0, 0, 1, 1))

    def test_wraps_aggregate(self, grid):
        s = ConstrainedStrategy(
            AggregateNNStrategy([(0.2, 0.2), (0.3, 0.3)], "max"),
            Rect(0.0, 0.0, 0.5, 0.5),
        )
        assert s.accepts(0.4, 0.4)
        assert not s.accepts(0.6, 0.4)
        assert s.level_step(grid) == grid.delta
