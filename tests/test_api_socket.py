"""End-to-end socket tests: server + client in-process over localhost.

The headline check pins the acceptance criterion of the wire protocol:
a remote client registering queries and streaming a workload receives a
delta stream **byte-equivalent** (as encoded ndjson frames) to an
in-process Session subscribing on the same workload.
"""

import socket
import threading
import time

import pytest

from repro.api import wire
from repro.api.client import Client, RemoteError
from repro.api.queries import (
    ConstrainedKnnSpec,
    FilteredKnnSpec,
    KnnSpec,
    RangeSpec,
)
from repro.api.server import MonitorSocketServer
from repro.api.session import Session
from repro.core.cpm import CPMMonitor
from repro.ingest.driver import IngestDriver
from repro.ingest.feeds import SocketFeed, WorkloadFeed, push_feed_to_socket
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.service import MonitoringService
from repro.service.subscriptions import SlowConsumerPolicy
from repro.updates import ObjectUpdate

SPEC = WorkloadSpec(
    n_objects=120, n_queries=4, k=3, timestamps=5, seed=17, query_agility=0.0
)
CELLS = 16


@pytest.fixture(scope="module")
def workload():
    return UniformGenerator(SPEC).generate()


@pytest.fixture()
def endpoint(workload):
    """A served session preloaded with the workload's objects."""
    session = Session(CPMMonitor(cells_per_axis=CELLS))
    session.load_objects(workload.initial_objects.items())
    server = MonitorSocketServer(session, name="test-server")
    host, port = server.start()
    try:
        yield session, server, host, port
    finally:
        server.stop()


class TestEndToEnd:
    def test_remote_stream_matches_direct_drive_byte_for_byte(
        self, workload, endpoint
    ):
        _session, _server, host, port = endpoint
        queries = sorted(workload.initial_queries.items())

        with Client.connect(host, port) as client:
            remote: dict[int, list[str]] = {}
            handles = []
            for qid, point in queries:
                handle = client.register(KnnSpec(point=point, k=SPEC.k), qid=qid)
                lines: list[str] = []
                handle.subscribe(
                    lambda ts, d, _lines=lines: _lines.append(
                        wire.encode_delta(ts, d)
                    )
                )
                remote[qid] = lines
                handles.append(handle)
            for batch in workload.batches:
                client.send_updates(batch.object_updates)
                client.tick(timestamp=batch.timestamp)

        # Direct drive: same workload, in-process Session.
        local_session = Session(CPMMonitor(cells_per_axis=CELLS))
        local_session.load_objects(workload.initial_objects.items())
        local: dict[int, list[str]] = {}
        for qid, point in queries:
            handle = local_session.register(KnnSpec(point=point, k=SPEC.k), qid=qid)
            lines = []
            handle.subscribe(
                lambda ts, d, _lines=lines: _lines.append(wire.encode_delta(ts, d))
            )
            local[qid] = lines
        for batch in workload.batches:
            local_session.tick_batch(batch)

        assert remote.keys() == local.keys()
        for qid in remote:
            assert remote[qid], f"query {qid} streamed nothing"
            assert remote[qid] == local[qid]

    def test_unwatched_query_deltas_never_cross_the_socket(
        self, workload, endpoint
    ):
        _session, _server, host, port = endpoint
        (qid_a, point_a), (qid_b, point_b) = sorted(
            workload.initial_queries.items()
        )[:2]
        with Client.connect(host, port) as client:
            frames: list[wire.Delta] = []
            client.delta_frame_log = frames
            a = client.register(KnnSpec(point=point_a, k=SPEC.k), qid=qid_a)
            client.register(KnnSpec(point=point_b, k=SPEC.k), qid=qid_b, watch=False)
            a.subscribe(lambda ts, d: None)
            for batch in workload.batches:
                client.send_updates(batch.object_updates)
                changed = client.tick(timestamp=batch.timestamp)
                assert isinstance(changed, set)
            assert frames, "watched query streamed nothing"
            assert {f.delta.qid for f in frames} == {qid_a}

    def test_remote_handle_operations(self, endpoint):
        _session, _server, host, port = endpoint
        with Client.connect(host, port) as client:
            handle = client.register(KnnSpec(point=(0.5, 0.5), k=2))
            assert len(handle.snapshot()) == 2
            drained = []
            handle.subscribe(lambda ts, d: drained.append(d))
            moved = handle.move((0.25, 0.25))
            assert moved == client.snapshot(handle.qid)
            assert handle.spec.point == (0.25, 0.25)
            handle.terminate()
            assert not handle.alive
            assert drained and drained[-1].terminated
            with pytest.raises(RuntimeError):
                handle.snapshot()

    def test_typed_specs_register_remotely(self, endpoint):
        session, _server, host, port = endpoint
        with Client.connect(host, port) as client:
            constrained = client.register(
                ConstrainedKnnSpec(
                    point=(0.5, 0.5), region=(0.0, 0.0, 0.5, 0.5), k=2
                )
            )
            ranged = client.register(RangeSpec(region=(0.4, 0.4, 0.7, 0.7)))
            assert constrained.snapshot() == session.snapshot(constrained.qid)
            assert ranged.snapshot() == session.snapshot(ranged.qid)
            constrained.terminate()
            ranged.terminate()

    def test_app_errors_come_back_as_remote_errors(self, endpoint):
        _session, _server, host, port = endpoint
        with Client.connect(host, port) as client:
            client.register(KnnSpec(point=(0.5, 0.5)), qid=123)
            with pytest.raises(RemoteError, match="already"):
                client.register(KnnSpec(point=(0.1, 0.1)), qid=123)
            # The connection survives application errors.
            assert client.snapshot(123) == client.handle(123).snapshot()

    def test_raw_query_move_keeps_subscription_alive(self, endpoint):
        """A raw MOVE query op must not reap the connection's topic
        (only TERMINATE kills it)."""
        from repro.updates import QueryUpdate, QueryUpdateKind

        _session, _server, host, port = endpoint
        with Client.connect(host, port) as client:
            seen = []
            handle = client.register(KnnSpec(point=(0.5, 0.5), k=2))
            handle.subscribe(lambda ts, d: seen.append((ts, d.qid)))
            client.send_query_update(
                QueryUpdate(
                    handle.qid, QueryUpdateKind.MOVE, (0.25, 0.25), 2
                )
            )
            client.tick(timestamp=1)
            moved_deltas = len(seen)
            assert moved_deltas >= 1  # the move itself streams
            # The topic must still be live on a later change.
            client.send_query_update(
                QueryUpdate(handle.qid, QueryUpdateKind.MOVE, (0.75, 0.75), 2)
            )
            client.tick(timestamp=2)
            assert len(seen) > moved_deltas

    def test_resubscribe_upgrades_include_unchanged(self, endpoint):
        """Re-subscribing with include_unchanged=True replaces the
        register-time watch instead of being silently dropped."""
        session, _server, host, port = endpoint
        with Client.connect(host, port) as client:
            handle = client.register(KnnSpec(point=(0.5, 0.5), k=2))
            [server_sub] = session.hub._by_qid[handle.qid]
            assert server_sub.include_unchanged is False
            handle.subscribe(lambda ts, d: None, include_unchanged=True)
            [server_sub] = session.hub._by_qid[handle.qid]
            assert server_sub.include_unchanged is True
            handle.terminate()

    def test_callback_exception_does_not_kill_connection(self, endpoint):
        _session, _server, host, port = endpoint
        with Client.connect(host, port) as client:
            handle = client.register(KnnSpec(point=(0.5, 0.5), k=2))

            def boom(ts, d):
                raise ValueError("dashboard bug")

            handle.subscribe(boom)
            handle.move((0.2, 0.2))  # publishes a delta -> callback raises
            assert client.callback_errors
            # The connection is still serviceable.
            assert client.snapshot(handle.qid) == handle.snapshot()

    def test_request_from_delta_callback_raises_instead_of_deadlocking(
        self, endpoint
    ):
        _session, _server, host, port = endpoint
        with Client.connect(host, port) as client:
            handle = client.register(KnnSpec(point=(0.5, 0.5), k=2))
            outcome = []

            def reenter(ts, d):
                try:
                    client.snapshot(handle.qid)
                    outcome.append("no error")
                except RemoteError as exc:
                    outcome.append(str(exc))

            handle.subscribe(reenter)
            handle.move((0.2, 0.2))
            assert outcome and "reader thread" in outcome[0]

    def test_future_version_frames_rejected_with_error_frame(self, endpoint):
        _session, _server, host, port = endpoint
        raw = socket.create_connection((host, port), timeout=10.0)
        try:
            reader = raw.makefile("r", encoding="utf-8", newline="\n")
            welcome = wire.decode_frame(reader.readline())
            assert type(welcome) is wire.Welcome
            assert wire.WIRE_VERSION in welcome.versions
            raw.sendall(b'{"v":99,"t":"tick","ts":0}\n')
            reply = wire.decode_frame(reader.readline())
            assert type(reply) is wire.Error
            assert "unsupported wire version" in reply.message
        finally:
            raw.close()


class TestFilteredAndSync:
    def test_tags_and_filtered_subscription_over_the_wire(self, endpoint):
        session, _server, host, port = endpoint
        with Client.connect(host, port) as client:
            client.send_updates(
                [
                    ObjectUpdate(9001, None, (0.45, 0.5)),
                    ObjectUpdate(9002, None, (0.55, 0.5)),
                    ObjectUpdate(9003, None, (0.5, 0.6)),
                ]
            )
            client.tick(timestamp=0)
            client.set_object_tags({9001: {"taxi"}, 9003: {"bus"}})
            handle = client.register(
                FilteredKnnSpec(point=(0.5, 0.5), k=3, tags=("taxi",))
            )
            assert [oid for _, oid in handle.snapshot()] == [9001]
            assert handle.snapshot() == session.snapshot(handle.qid)

            # The filter tracks remote tag changes: 9002 gains the tag
            # and moves -> it enters the streamed result.
            seen = []
            handle.subscribe(lambda ts, d: seen.append(d.result))
            client.set_object_tags({9002: {"taxi"}})
            client.send_updates([ObjectUpdate(9002, (0.55, 0.5), (0.54, 0.5))])
            client.tick(timestamp=1)
            assert seen
            assert [oid for _, oid in seen[-1]] == [9002, 9001]

    def test_cold_start_sync_adopts_session_state(self, workload, endpoint):
        session, _server, host, port = endpoint
        queries = sorted(workload.initial_queries.items())[:2]
        with Client.connect(host, port) as seeder:
            seeder.set_object_tags({1: {"taxi"}, 2: {"taxi", "xl"}})
            for qid, point in queries:
                seeder.register(KnnSpec(point=point, k=SPEC.k), qid=qid)

            with Client.connect(host, port) as late:
                state = late.sync(objects=True, watch=True)
                assert sorted(h.qid for h in state.handles) == [
                    qid for qid, _ in queries
                ]
                for handle in state.handles:
                    assert state.results[handle.qid] == session.snapshot(
                        handle.qid
                    )
                # Object prologue: full table, tags attached where set.
                assert len(state.objects) == len(workload.initial_objects)
                by_oid = {oid: (pos, tags) for oid, pos, tags in state.objects}
                assert by_oid[1][1] == ("taxi",)
                assert by_oid[2][1] == ("taxi", "xl")
                untagged = [t for _, t in by_oid.values() if t is None]
                assert len(untagged) == len(workload.initial_objects) - 2

                # watch=True upgraded the synced queries to live
                # subscriptions on this connection.
                frames: list[wire.Delta] = []
                late.delta_frame_log = frames
                batch = workload.batches[0]
                seeder.send_updates(batch.object_updates)
                seeder.tick(timestamp=batch.timestamp)
                deadline = time.monotonic() + 5.0
                while not frames and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert frames, "synced client received no deltas"
                assert {f.delta.qid for f in frames} <= {q for q, _ in queries}

    def test_sync_without_objects_skips_prologue(self, endpoint):
        _session, _server, host, port = endpoint
        with Client.connect(host, port) as client:
            client.register(KnnSpec(point=(0.5, 0.5), k=2))
            state = client.sync(objects=False, watch=False)
            assert state.objects == []
            assert len(state.handles) == 1


def _stalled_peer(host, port, qid, point, k, rcvbuf=2048):
    """A raw connection that registers a watched query, then stops
    reading — the slow consumer under test."""
    sock = socket.socket()
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
    sock.connect((host, port))
    reader = sock.makefile("r", encoding="utf-8", newline="\n")
    welcome = wire.decode_frame(reader.readline())
    assert type(welcome) is wire.Welcome
    register = wire.Register(
        spec=KnnSpec(point=point, k=k), qid=qid, watch=True
    )
    sock.sendall((wire.encode_frame(register) + "\n").encode())
    reply = wire.decode_frame(reader.readline())
    assert type(reply) is wire.Registered
    return sock, reader


def _drive_and_collect(host, port, *, ticks, register_peer_query):
    """Connect a healthy client, register qid 1 (watched) and qid 2
    (per ``register_peer_query``), drive ``ticks`` cycles of a toggling
    object, and return the encoded delta lines qid 1 streamed."""
    lines: list[str] = []
    with Client.connect(host, port) as client:
        client.send_updates(
            [
                ObjectUpdate(1, None, (0.52, 0.5)),
                ObjectUpdate(2, None, (0.9, 0.9)),
            ]
        )
        client.tick(timestamp=0)
        handle = client.register(KnnSpec(point=(0.5, 0.5), k=2), qid=1)
        handle.subscribe(
            lambda ts, d: lines.append(wire.encode_delta(ts, d))
        )
        if register_peer_query:
            client.register(
                KnnSpec(point=(0.45, 0.5), k=2), qid=2, watch=False
            )
        positions = [(0.55, 0.5), (0.6, 0.5)]
        old = (0.52, 0.5)
        start = time.monotonic()
        for i in range(ticks):
            new = positions[i % 2]
            client.send_updates([ObjectUpdate(1, old, new)])
            client.tick(timestamp=i + 1)
            old = new
        elapsed = time.monotonic() - start
        assert not client.lag_events, "healthy client must never lag"
    return lines, elapsed


class TestSlowConsumer:
    """A stalled reader must not stall the monitoring loop or disturb
    other connections' delta streams."""

    TICKS = 200

    def make_server(self, policy):
        session = Session(CPMMonitor(cells_per_axis=CELLS))
        server = MonitorSocketServer(
            session,
            name="stall-server",
            outbound_limit=8,
            slow_consumer=policy,
            sndbuf=4096,
        )
        host, port = server.start()
        return session, server, host, port

    def baseline_stream(self):
        """The healthy delta stream with no stalled peer attached."""
        _session, server, host, port = self.make_server(
            SlowConsumerPolicy.DISCONNECT
        )
        try:
            lines, _ = _drive_and_collect(
                host, port, ticks=self.TICKS, register_peer_query=True
            )
        finally:
            server.stop()
        return lines

    def test_disconnect_policy_isolates_stalled_reader(self):
        baseline = self.baseline_stream()
        _session, server, host, port = self.make_server(
            SlowConsumerPolicy.DISCONNECT
        )
        try:
            # The peer registers its own watched query first; the healthy
            # client then re-registers it as qid 2 is already taken --
            # so it only registers qid 1.
            stalled, reader = _stalled_peer(
                host, port, qid=2, point=(0.45, 0.5), k=2
            )
            lines, elapsed = _drive_and_collect(
                host, port, ticks=self.TICKS, register_peer_query=False
            )
            # The stalled reader never extends the healthy client's
            # cycle: 200 tick round-trips complete promptly.
            assert elapsed < 10.0
            # Healthy stream is byte-identical to a run with no stalled
            # peer attached at all.
            assert lines == baseline
            # The policy disconnected the stalled peer: draining what the
            # kernel buffered ends in EOF, not a live stream.
            stalled.settimeout(5.0)
            try:
                while stalled.recv(65536):
                    pass
                eof = True
            except (ConnectionError, OSError):
                eof = True
            assert eof
        finally:
            server.stop()

    def test_drop_and_snapshot_policy_sends_lagged_frames(self):
        baseline = self.baseline_stream()
        _session, server, host, port = self.make_server(
            SlowConsumerPolicy.DROP_AND_SNAPSHOT
        )
        try:
            stalled, reader = _stalled_peer(
                host, port, qid=2, point=(0.45, 0.5), k=2
            )
            lines, elapsed = _drive_and_collect(
                host, port, ticks=self.TICKS, register_peer_query=False
            )
            assert elapsed < 10.0
            assert lines == baseline
            # The stalled peer stays connected; when it finally reads, the
            # stream carries explicit lag markers for the shed deltas.
            stalled.settimeout(2.0)
            frames = []
            try:
                for line in reader:
                    frames.append(wire.decode_frame(line))
            except (TimeoutError, socket.timeout, ConnectionError, OSError):
                pass
            lagged = [f for f in frames if type(f) is wire.Lagged]
            assert lagged, "no lagged frame reached the slow consumer"
            assert all(f.dropped >= 1 for f in lagged)
        finally:
            stalled.close()
            server.stop()

    def test_lag_followup_snapshots_converge_a_drained_consumer(self):
        """Every ``lagged`` marker is followed by a fresh ``sync_query``
        snapshot per subscribed query, so replaying the stream — shed
        gaps and all — lands exactly on the authoritative result with no
        re-sync request from the consumer."""
        session, server, host, port = self.make_server(
            SlowConsumerPolicy.DROP_AND_SNAPSHOT
        )
        try:
            stalled, reader = _stalled_peer(
                host, port, qid=2, point=(0.45, 0.5), k=2
            )
            _drive_and_collect(
                host, port, ticks=self.TICKS, register_peer_query=False
            )
            # The run is over; drain the stalled peer's entire backlog.
            stalled.settimeout(2.0)
            frames = []
            try:
                for line in reader:
                    frames.append(wire.decode_frame(line))
            except (TimeoutError, socket.timeout, ConnectionError, OSError):
                pass
            lagged_at = [
                i for i, f in enumerate(frames) if type(f) is wire.Lagged
            ]
            assert lagged_at, "no lagged frame reached the slow consumer"
            # The follow-up snapshot rides directly behind its marker.
            for index in lagged_at:
                assert index + 1 < len(frames), "lagged marker had no follow-up"
                followup = frames[index + 1]
                assert type(followup) is wire.SyncQuery
                assert followup.qid == 2
            # Replay the stream the consumer saw: deltas apply their full
            # result, a shed gap is bridged by the pushed snapshot.
            mirror = None
            gap_open = False
            for frame in frames:
                kind = type(frame)
                if kind is wire.Lagged:
                    gap_open = True
                elif kind is wire.SyncQuery:
                    mirror = list(frame.result)
                    gap_open = False
                elif kind is wire.Delta and frame.delta.qid == 2:
                    mirror = list(frame.delta.result)
            assert not gap_open
            assert mirror == session.snapshot(2)
        finally:
            stalled.close()
            server.stop()


class TestSocketFeed:
    def test_socket_fed_ingest_matches_direct_replay(self, workload):
        """The ingest driver behind a SocketFeed reproduces a direct
        replay exactly (end state and per-cycle structure)."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def produce():
            conn, _ = listener.accept()
            try:
                push_feed_to_socket(WorkloadFeed(workload), conn, updates_per_frame=7)
            finally:
                conn.close()
                listener.close()

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        feed = SocketFeed.connect(
            "127.0.0.1",
            port,
            initial_objects=workload.initial_objects,
            initial_queries=workload.initial_queries,
        )
        monitor = CPMMonitor(cells_per_axis=CELLS)
        driver = IngestDriver(WorkloadFeed(workload), MonitoringService(monitor))
        socket_monitor = CPMMonitor(cells_per_axis=CELLS)
        socket_driver = IngestDriver(feed, MonitoringService(socket_monitor))
        driver.prime(k=SPEC.k)
        socket_driver.prime(k=SPEC.k)
        report = driver.run()
        socket_report = socket_driver.run()
        producer.join(timeout=10)
        feed.close()

        assert socket_report.n_cycles == report.n_cycles
        assert socket_report.total_applied == report.total_applied
        assert socket_monitor.result_table() == monitor.result_table()
        assert socket_monitor.stats.snapshot() == monitor.stats.snapshot()

    def test_socket_feed_rejects_foreign_frames(self):
        a, b = socket.socketpair()
        try:
            a.sendall(
                (wire.encode_frame(wire.GetSnapshot(qid=1)) + "\n").encode()
            )
            feed = SocketFeed(b)
            with pytest.raises(ValueError, match="not part of the"):
                next(iter(feed.events()))
        finally:
            a.close()
            b.close()

    def test_socket_feed_carries_initial_populations(self):
        feed = SocketFeed(
            None,
            initial_objects={1: (0.1, 0.2)},
            initial_queries={9: (0.5, 0.5)},
            install_ks={9: 4},
        )
        assert feed.initial_objects() == {1: (0.1, 0.2)}
        assert feed.initial_queries() == {9: (0.5, 0.5)}
        assert feed.install_k(9) == 4
        assert feed.install_k(8, default=2) == 2
