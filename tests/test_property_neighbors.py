"""Property-based tests for the NeighborList data structure."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbors import NeighborList

dist = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)


@given(st.lists(dist, max_size=60), st.integers(min_value=1, max_value=10))
@settings(max_examples=200, deadline=None)
def test_add_keeps_k_smallest(dists, k):
    nn = NeighborList(k)
    for oid, d in enumerate(dists):
        nn.add(d, oid)
    expected = sorted((d, oid) for oid, d in enumerate(dists))[:k]
    assert nn.entries() == expected


@given(st.lists(dist, min_size=1, max_size=40), st.integers(min_value=1, max_value=8))
@settings(max_examples=200, deadline=None)
def test_entries_always_sorted_and_capped(dists, k):
    nn = NeighborList(k)
    for oid, d in enumerate(dists):
        nn.add(d, oid)
    entries = nn.entries()
    assert entries == sorted(entries)
    assert len(entries) <= k


@given(
    st.lists(dist, min_size=3, max_size=30),
    st.integers(min_value=1, max_value=6),
    st.data(),
)
@settings(max_examples=150, deadline=None)
def test_update_and_remove_preserve_consistency(dists, k, data):
    nn = NeighborList(k)
    for oid, d in enumerate(dists):
        nn.add(d, oid)
    members = [oid for _d, oid in nn.entries()]
    # Re-key a member.
    victim = data.draw(st.sampled_from(members))
    new_dist = data.draw(dist)
    nn.update_dist(victim, new_dist)
    assert nn.dist_of(victim) == new_dist
    entries = nn.entries()
    assert entries == sorted(entries)
    # Remove a member.
    nn.remove(victim)
    assert victim not in nn
    entries = nn.entries()
    assert entries == sorted(entries)
    # The internal dict always mirrors the sorted list.
    assert {oid for _d, oid in entries} == {oid for _d, oid in nn}


@given(
    st.lists(st.tuples(dist, st.integers(min_value=0, max_value=100)), max_size=40),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=200, deadline=None)
def test_replace_equals_sorted_dedup_topk(pairs, k):
    nn = NeighborList(k)
    nn.replace(pairs)
    best: dict[int, float] = {}
    for d, oid in pairs:
        if oid not in best or d < best[oid]:
            best[oid] = d
    expected = sorted((d, oid) for oid, d in best.items())[:k]
    assert nn.entries() == expected


@given(st.lists(dist, max_size=30), st.integers(min_value=1, max_value=5))
@settings(max_examples=150, deadline=None)
def test_kth_dist_semantics(dists, k):
    nn = NeighborList(k)
    for oid, d in enumerate(dists):
        nn.add(d, oid)
    if len(dists) < k:
        assert math.isinf(nn.kth_dist)
    else:
        assert nn.kth_dist == sorted(dists)[k - 1]
