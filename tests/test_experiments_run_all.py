"""Smoke test for the aggregated experiment runner."""

import pathlib

from repro.experiments.run_all import run_all


class TestRunAll:
    def test_produces_full_report(self, tmp_path: pathlib.Path):
        report = run_all(scale=0.003)
        # Every section present.
        for heading in (
            "Figure 6.1",
            "Figure 6.2",
            "Figure 6.3",
            "Figure 6.4",
            "Figure 6.5",
            "Figure 6.6",
            "Footnote 6",
            "Ablations",
        ):
            assert heading in report
        # Every algorithm appears in the series.
        for name in ("CPM", "YPK-CNN", "SEA-CNN"):
            assert name in report
        # And it is valid markdown-ish: fenced blocks are balanced.
        assert report.count("```") % 2 == 0

    def test_cli_writes_file(self, tmp_path: pathlib.Path, capsys):
        from repro.experiments import run_all as mod

        out = tmp_path / "report.md"
        mod.main(["--scale", "0.003", "--out", str(out)])
        assert out.exists()
        text = out.read_text()
        assert "Figure 6.1" in text
