"""Tests for the experiment infrastructure and drivers (tiny scales).

Each figure driver runs end-to-end at a micro scale; shape assertions are
deliberately loose here (tight shape checks live in the benchmark suite,
which runs at meaningful scale).
"""

import pytest

from repro.experiments import common, reporting
from repro.experiments.common import (
    build_monitor,
    make_workload,
    run_algorithms,
    scaled_grid,
    scaled_spec,
)

TINY = 0.004  # N=400, n=20 — fast enough for unit tests


class TestScaledSpec:
    def test_paper_scale_reproduces_table_6_1(self):
        spec = scaled_spec(1.0)
        assert spec.n_objects == 100_000
        assert spec.n_queries == 5_000
        assert spec.k == 16
        assert spec.timestamps == 100

    def test_downscaling(self):
        spec = scaled_spec(0.05)
        assert spec.n_objects == 5_000
        assert spec.n_queries == 250
        assert 5 <= spec.timestamps <= 100

    def test_overrides(self):
        spec = scaled_spec(0.05, k=4, object_speed="fast")
        assert spec.k == 4
        assert spec.object_speed == "fast"

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled_spec(0.0)

    def test_scaled_grid_matches_density(self):
        # Full scale keeps the paper's 128; small scales shrink as sqrt.
        assert scaled_grid(1.0) == 128
        assert scaled_grid(0.25) == 64
        assert scaled_grid(0.01) == 16

    def test_scaled_grid_floor(self):
        assert scaled_grid(0.0001) == 16


class TestBuildMonitor:
    def test_known_algorithms(self):
        for name in ("CPM", "YPK-CNN", "SEA-CNN"):
            assert build_monitor(name, 16).name == name

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            build_monitor("QUADTREE", 16)


class TestRunAlgorithms:
    def test_produces_one_point_per_algorithm(self):
        spec = scaled_spec(TINY)
        workload = make_workload(spec)
        points = run_algorithms(workload, 16, "x", 1)
        assert [p.algorithm for p in points] == ["CPM", "YPK-CNN", "SEA-CNN"]
        assert all(p.report.timestamps == spec.timestamps for p in points)


class TestReporting:
    def test_format_table_alignment(self):
        table = reporting.format_table(
            ["a", "bb"], [[1, 2.5], [10, 0.001]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_render_result(self):
        spec = scaled_spec(TINY)
        workload = make_workload(spec)
        result = common.ExperimentResult(
            experiment="T", title="t", parameter="p"
        )
        result.points.extend(run_algorithms(workload, 16, "p", 7))
        text = reporting.render_result(result)
        assert "CPM" in text and "YPK-CNN" in text
        assert "7" in text


class TestFigureDrivers:
    def test_fig_6_1(self):
        from repro.experiments import fig_6_1

        result = fig_6_1.run(scale=TINY)
        assert result.values()  # at least one granularity
        assert set(result.algorithms()) == {"CPM", "YPK-CNN", "SEA-CNN"}
        for algo in result.algorithms():
            assert all(v > 0 for v in result.series(algo))

    def test_fig_6_2(self):
        from repro.experiments import fig_6_2

        res_a = fig_6_2.run_objects(scale=TINY)
        # Tiny scales may collapse adjacent paper sweep values.
        assert 3 <= len(res_a.values()) <= 5
        res_b = fig_6_2.run_queries(scale=TINY)
        assert len(res_b.values()) >= 3

    def test_fig_6_3(self):
        from repro.experiments import fig_6_3

        result = fig_6_3.run(scale=TINY)
        assert result.values()
        # Cell-access metric present for every algorithm.
        for algo in result.algorithms():
            assert all(v >= 0 for v in result.series(algo, "cell_accesses"))

    def test_fig_6_4(self):
        from repro.experiments import fig_6_4

        res_a = fig_6_4.run_object_speed(scale=TINY)
        assert res_a.values() == ["slow", "medium", "fast"]
        res_b = fig_6_4.run_query_speed(scale=TINY)
        assert res_b.values() == ["slow", "medium", "fast"]

    def test_fig_6_5(self):
        from repro.experiments import fig_6_5

        res_a = fig_6_5.run_object_agility(scale=TINY)
        assert res_a.values() == [0.1, 0.2, 0.3, 0.4, 0.5]

    def test_fig_6_6(self):
        from repro.experiments import fig_6_6

        res_a = fig_6_6.run_moving(scale=TINY)
        assert set(res_a.algorithms()) == {"CPM", "YPK-CNN"}  # SEA omitted
        res_b = fig_6_6.run_static(scale=TINY)
        assert set(res_b.algorithms()) == {"CPM", "YPK-CNN", "SEA-CNN"}

    def test_space_table(self):
        from repro.experiments import space_table

        experiment = space_table.run(scale=TINY)
        modeled = {r.method: r.modeled_units for r in experiment.modeled_full}
        # Footnote-6 ordering at paper-default size.
        assert modeled["YPK-CNN"] < modeled["SEA-CNN"] < modeled["CPM"]
        measured = {r.method: r.measured_units for r in experiment.measured_scaled}
        assert all(v > 0 for v in measured.values())

    def test_ablations(self):
        from repro.experiments import ablations

        result = ablations.run(scale=TINY)
        assert result.values() == ["full", "no-merge", "no-bookkeeping"]


class TestTable21Properties:
    """Table 2.1: capability matrix of the monitoring methods, asserted
    against the living implementations."""

    def test_all_methods_are_exact_nn_monitors(self):
        # (Exactness is established by the equivalence suites; here we
        # assert the interface-level properties.)
        from repro.baselines.sea import SeaCnnMonitor
        from repro.baselines.ypk import YpkCnnMonitor
        from repro.core.cpm import CPMMonitor
        from repro.monitor import ContinuousMonitor

        for cls in (CPMMonitor, YpkCnnMonitor, SeaCnnMonitor):
            assert issubclass(cls, ContinuousMonitor)

    def test_methods_are_centralized_main_memory(self):
        # All three process the full update stream centrally over an
        # in-memory grid: the grid object lives in process memory.
        from repro.grid.grid import Grid

        for name in ("CPM", "YPK-CNN", "SEA-CNN"):
            monitor = build_monitor(name, 8)
            assert isinstance(monitor.grid, Grid)

    def test_cpm_supports_query_types_baselines_do_not(self):
        from repro.core.cpm import CPMMonitor

        cpm = CPMMonitor(cells_per_axis=8)
        assert hasattr(cpm, "install_ann_query")
        assert hasattr(cpm, "install_constrained_query")
        for name in ("YPK-CNN", "SEA-CNN"):
            monitor = build_monitor(name, 8)
            assert not hasattr(monitor, "install_ann_query")
