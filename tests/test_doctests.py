"""Run the doctests embedded in public-module docstrings."""

import doctest

import pytest

import repro
import repro.geometry.aggregates
import repro.geometry.points
import repro.vis.ascii

MODULES_WITH_DOCTESTS = [
    repro.geometry.points,
    repro.geometry.aggregates,
    repro.vis.ascii,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    assert result.attempted >= 1, f"{module.__name__} lost its doctests"


def test_package_quickstart_docstring_runs():
    """The quickstart in the package docstring must actually work."""
    from repro import CPMMonitor, ObjectUpdate

    monitor = CPMMonitor(cells_per_axis=64)
    monitor.load_objects([(1, (0.10, 0.20)), (2, (0.70, 0.75))])
    initial = monitor.install_query(qid=0, point=(0.5, 0.5), k=1)
    assert initial[0][1] == 2
    monitor.process([ObjectUpdate(1, (0.10, 0.20), (0.51, 0.52))])
    assert monitor.result(0)[0][1] == 1


def test_readme_quickstart_numbers():
    """README's quickstart shows concrete distances; keep them honest."""
    import math

    from repro import CPMMonitor, ObjectUpdate

    monitor = CPMMonitor(cells_per_axis=64)
    monitor.load_objects([(1, (0.10, 0.20)), (2, (0.70, 0.75))])
    result = monitor.install_query(qid=0, point=(0.5, 0.5), k=1)
    assert result[0][0] == pytest.approx(math.hypot(0.2, 0.25))
    monitor.process([ObjectUpdate(1, (0.10, 0.20), (0.51, 0.52))])
    assert monitor.result(0)[0][0] == pytest.approx(math.hypot(0.01, 0.02))
