"""Property-based equivalence: partitioned service == single engine.

Same shape generation as ``test_property_sharded``, with the acceptance
criterion of the partition subsystem: for S ∈ {1, 2, 4, 8} the
partitioned monitor produces *byte-identical* per-cycle result tables,
changed sets and delta streams — and, **stronger than the replicated
tier**, byte-identical deterministic counters (the one coordinator
store's insert/delete tallies are canonical, and search/probe/mark work
happens exactly once, on the hosting shard).  The workload families
include cross-boundary query moves, so the live-migration path is
exercised throughout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpm import CPMMonitor
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.executor import ProcessShardExecutor
from repro.service.partition import PartitionedMonitor
from repro.service.sharding import ShardedMonitor

# Partitioned shards need cells >= shards (ShardPlan refuses otherwise),
# so the grid floor is 8 here where the replicated suite allows 4.
workload_shapes = st.fixed_dictionaries(
    {
        "generator": st.sampled_from(["brinkhoff", "uniform"]),
        "n_objects": st.integers(min_value=30, max_value=120),
        "n_queries": st.integers(min_value=1, max_value=6),
        "k": st.integers(min_value=1, max_value=6),
        "timestamps": st.integers(min_value=1, max_value=6),
        "seed": st.integers(min_value=0, max_value=2**20),
        "object_speed": st.sampled_from(["slow", "medium", "fast"]),
        "query_agility": st.sampled_from([0.0, 0.3, 1.0]),
        "cells": st.sampled_from([8, 16]),
        "n_shards": st.sampled_from([1, 2, 4, 8]),
        "halo": st.sampled_from([0, 1, 2]),
    }
)


def _generate(shape):
    spec = WorkloadSpec(
        n_objects=shape["n_objects"],
        n_queries=shape["n_queries"],
        k=shape["k"],
        timestamps=shape["timestamps"],
        seed=shape["seed"],
        object_speed=shape["object_speed"],
        query_agility=shape["query_agility"],
    )
    if shape["generator"] == "brinkhoff":
        return spec, BrinkhoffGenerator(spec).generate()
    return spec, UniformGenerator(spec).generate()


@given(shape=workload_shapes)
@settings(max_examples=25, deadline=None)
def test_partitioned_is_byte_identical_to_single_engine(shape):
    spec, workload = _generate(shape)
    cells = shape["cells"]
    single = CPMMonitor(cells_per_axis=cells)
    part = PartitionedMonitor(
        shape["n_shards"], cells_per_axis=cells, halo=shape["halo"]
    )

    single.load_objects(workload.initial_objects.items())
    part.load_objects(workload.initial_objects.items())
    assert part.stats.snapshot() == single.stats.snapshot()
    for qid, point in workload.initial_queries.items():
        assert part.install_query(qid, point, spec.k) == single.install_query(
            qid, point, spec.k
        )
    assert part.result_table() == single.result_table()
    assert part.stats.snapshot() == single.stats.snapshot()

    for batch in workload.batches:
        expect = single.process_deltas(batch.object_updates, batch.query_updates)
        got = part.process_deltas(batch.object_updates, batch.query_updates)
        assert got == expect, batch.timestamp
        assert part.result_table() == single.result_table(), batch.timestamp
        assert sorted(part.query_ids()) == sorted(single.query_ids())
        assert part.object_count == single.object_count
        # The partitioned contract is counter-exact — not S-fold.
        assert part.stats.snapshot() == single.stats.snapshot(), batch.timestamp


@given(shape=workload_shapes)
@settings(max_examples=10, deadline=None)
def test_partitioned_matches_replicated_and_single_changed_sets(shape):
    spec, workload = _generate(shape)
    cells = shape["cells"]
    single = CPMMonitor(cells_per_axis=cells)
    sharded = ShardedMonitor(shape["n_shards"], cells_per_axis=cells)
    part = PartitionedMonitor(
        shape["n_shards"], cells_per_axis=cells, halo=shape["halo"]
    )
    for monitor in (single, sharded, part):
        monitor.load_objects(workload.initial_objects.items())
        for qid, point in workload.initial_queries.items():
            monitor.install_query(qid, point, spec.k)
    for batch in workload.batches:
        expect = single.process(batch.object_updates, batch.query_updates)
        assert (
            part.process(batch.object_updates, batch.query_updates) == expect
        )
        assert (
            sharded.process(batch.object_updates, batch.query_updates) == expect
        )
        assert part.result_table() == single.result_table()
        assert part.result_table() == sharded.result_table()


@given(shape=workload_shapes)
@settings(max_examples=6, deadline=None)
def test_partitioned_process_executor_is_byte_identical(shape):
    spec, workload = _generate(shape)
    cells = shape["cells"]
    single = CPMMonitor(cells_per_axis=cells)
    part = PartitionedMonitor(
        shape["n_shards"],
        cells_per_axis=cells,
        halo=shape["halo"],
        executor=ProcessShardExecutor(),
    )
    try:
        single.load_objects(workload.initial_objects.items())
        part.load_objects(workload.initial_objects.items())
        for qid, point in workload.initial_queries.items():
            assert part.install_query(
                qid, point, spec.k
            ) == single.install_query(qid, point, spec.k)
        for batch in workload.batches:
            expect = single.process_deltas(
                batch.object_updates, batch.query_updates
            )
            got = part.process_deltas(batch.object_updates, batch.query_updates)
            assert got == expect, batch.timestamp
            assert part.stats.snapshot() == single.stats.snapshot()
        assert part.result_table() == single.result_table()
    finally:
        part.close()
