"""SubscriptionHub per-query routing tests (the PR5 hub redesign)."""

from repro.service.deltas import ResultDelta, diff_results
from repro.service.subscriptions import SubscriptionHub


def delta(qid: int, changed: bool = True) -> ResultDelta:
    if changed:
        return diff_results(qid, [], [(0.5, 1)])
    return diff_results(qid, [(0.5, 1)], [(0.5, 1)])


class TestTopicRouting:
    def test_targeted_subscription_sees_only_its_topics(self):
        hub = SubscriptionHub()
        seen = []
        hub.subscribe(lambda ts, d: seen.append(d.qid), qids=[2, 4])
        hub.publish(0, {qid: delta(qid) for qid in range(6)})
        assert seen == [2, 4]

    def test_firehose_sees_every_topic_in_qid_order(self):
        hub = SubscriptionHub()
        seen = []
        hub.subscribe(lambda ts, d: seen.append(d.qid))
        hub.publish(0, {qid: delta(qid) for qid in (5, 1, 3)})
        assert seen == [1, 3, 5]

    def test_delivery_order_interleaves_by_registration(self):
        hub = SubscriptionHub()
        order = []
        hub.subscribe(lambda ts, d: order.append(("targeted-1", d.qid)), qids=[1])
        hub.subscribe(lambda ts, d: order.append(("fire", d.qid)))
        hub.subscribe(lambda ts, d: order.append(("targeted-2", d.qid)), qids=[1])
        hub.publish(0, {1: delta(1)})
        assert order == [("targeted-1", 1), ("fire", 1), ("targeted-2", 1)]

    def test_unchanged_deltas_filtered_unless_requested(self):
        hub = SubscriptionHub()
        changed_only, everything = [], []
        hub.subscribe(lambda ts, d: changed_only.append(d.qid), qids=[1])
        hub.subscribe(
            lambda ts, d: everything.append(d.qid),
            qids=[1],
            include_unchanged=True,
        )
        delivered = hub.publish(0, {1: delta(1, changed=False)})
        assert delivered == 1
        assert changed_only == []
        assert everything == [1]

    def test_no_listener_topics_are_skipped_entirely(self):
        hub = SubscriptionHub()
        hub.subscribe(lambda ts, d: None, qids=[99])
        delivered = hub.publish(0, {qid: delta(qid) for qid in range(5)})
        assert delivered == 0


class TestLifecycle:
    def test_counts_and_active_flags(self):
        hub = SubscriptionHub()
        assert not hub.has_subscribers
        a = hub.subscribe(lambda ts, d: None, qids=[1, 2])
        b = hub.subscribe(lambda ts, d: None)
        assert len(hub) == 2
        assert hub.has_subscribers and hub.has_firehose
        assert hub.watched_qids() == {1, 2}
        assert a.active and b.active
        a.close()
        assert not a.active and b.active
        assert hub.watched_qids() == set()
        b.close()
        b.close()  # idempotent
        assert not hub.has_subscribers
        assert not hub.has_firehose

    def test_context_manager_unsubscribes(self):
        hub = SubscriptionHub()
        with hub.subscribe(lambda ts, d: None, qids=[7]) as subscription:
            assert subscription.active
        assert not subscription.active

    def test_subscribe_query_shorthand(self):
        hub = SubscriptionHub()
        seen = []
        subscription = hub.subscribe_query(3, lambda ts, d: seen.append(d.qid))
        hub.publish(1, {2: delta(2), 3: delta(3)})
        assert seen == [3]
        assert subscription.delivered == 1

    def test_callback_may_unsubscribe_during_delivery(self):
        hub = SubscriptionHub()
        seen = []
        subscription = hub.subscribe_query(
            1, lambda ts, d: (seen.append(d.qid), subscription.close())
        )
        hub.publish(0, {1: delta(1)})
        hub.publish(1, {1: delta(1)})
        assert seen == [1]

    def test_callback_may_subscribe_during_delivery(self):
        hub = SubscriptionHub()
        late = []

        def attach(ts, d):
            hub.subscribe_query(2, lambda ts2, d2: late.append(d2.qid))

        hub.subscribe_query(1, attach)
        hub.publish(0, {1: delta(1), 2: delta(2)})
        # The late subscription starts with the *next* publish.
        hub.publish(1, {2: delta(2)})
        assert late.count(2) >= 1
