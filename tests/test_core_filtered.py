"""Attribute-filtered kNN: FilteredStrategy + FilteredKnnSpec semantics.

The acceptance criterion: a filtered query over a mixed population is
byte-identical to a plain kNN over the tagged-only sub-population, on
every engine (CPM, brute force, sharded), across moving workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.queries import FilteredKnnSpec, KnnSpec, install_spec
from repro.api.session import Session
from repro.baselines.brute import BruteForceMonitor
from repro.core.cpm import CPMMonitor
from repro.core.strategies import FilteredStrategy, PointNNStrategy
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.sharding import ShardedMonitor
from repro.updates import ObjectUpdate


def tag_for(oid: int) -> set[str]:
    """Deterministic tag assignment: thirds of the population."""
    if oid % 3 == 0:
        return {"taxi"}
    if oid % 3 == 1:
        return {"taxi", "xl"}
    return set()


class TestSpecValidation:
    def test_tags_required(self):
        with pytest.raises(ValueError, match="at least one tag"):
            FilteredKnnSpec(point=(0.5, 0.5), k=1, tags=())

    def test_k_validated(self):
        with pytest.raises(ValueError, match="k must be"):
            FilteredKnnSpec(point=(0.5, 0.5), k=0, tags=("taxi",))

    def test_tags_normalized_sorted_unique(self):
        spec = FilteredKnnSpec(
            point=(0.5, 0.5), k=1, tags=("xl", "taxi", "xl")
        )
        assert spec.tags == ("taxi", "xl")

    def test_strategy_rejects_nesting_and_empty_tags(self):
        inner = PointNNStrategy(0.5, 0.5)
        with pytest.raises(ValueError, match="at least one tag"):
            FilteredStrategy(inner, ())
        wrapped = FilteredStrategy(inner, {"taxi"})
        with pytest.raises(TypeError, match="do not nest"):
            FilteredStrategy(wrapped, {"xl"})

    def test_unbound_strategy_accepts_nothing(self):
        strategy = FilteredStrategy(PointNNStrategy(0.5, 0.5), {"taxi"})
        assert strategy.accepts(0.5, 0.5, 1) is False


class TestFilteredSemantics:
    def make_monitors(self):
        return {
            "cpm": CPMMonitor(cells_per_axis=8),
            "brute": BruteForceMonitor(),
            "sharded": ShardedMonitor(2, cells_per_axis=8),
        }

    def test_filter_equals_knn_over_tagged_subpopulation(self):
        objects = {
            oid: ((oid % 7) / 7.0 + 0.01, (oid % 5) / 5.0 + 0.01)
            for oid in range(30)
        }
        tags = {oid: tag_for(oid) for oid in objects}
        tagged_only = {
            oid: pos for oid, pos in objects.items() if "taxi" in tag_for(oid)
        }
        spec = FilteredKnnSpec(point=(0.5, 0.5), k=4, tags=("taxi",))

        oracle = BruteForceMonitor()
        oracle.load_objects(tagged_only.items())
        expected = oracle.install_query(1, spec.point, spec.k)

        for name, monitor in self.make_monitors().items():
            monitor.load_objects(objects.items())
            monitor.set_object_tags(tags)
            assert install_spec(monitor, 1, spec) == expected, name

    def test_multi_tag_filter_needs_every_tag(self):
        objects = {1: (0.4, 0.5), 2: (0.45, 0.5), 3: (0.55, 0.5)}
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects(objects.items())
        monitor.set_object_tags({1: {"taxi"}, 2: {"taxi", "xl"}, 3: {"xl"}})
        spec = FilteredKnnSpec(point=(0.5, 0.5), k=3, tags=("taxi", "xl"))
        result = install_spec(monitor, 1, spec)
        assert [oid for _, oid in result] == [2]

    def test_filter_composes_with_region(self):
        objects = {1: (0.45, 0.5), 2: (0.55, 0.5), 3: (0.95, 0.5)}
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects(objects.items())
        monitor.set_object_tags({1: {"taxi"}, 2: {"taxi"}, 3: {"taxi"}})
        spec = FilteredKnnSpec(
            point=(0.5, 0.5), k=3, tags=("taxi",), region=(0.5, 0.0, 1.0, 1.0)
        )
        result = install_spec(monitor, 1, spec)
        assert [oid for _, oid in result] == [2, 3]

    def test_no_tagged_objects_yields_empty_result(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects([(1, (0.5, 0.5))])
        spec = FilteredKnnSpec(point=(0.5, 0.5), k=2, tags=("taxi",))
        assert install_spec(monitor, 1, spec) == []

    def test_tag_changes_apply_when_the_object_is_touched(self):
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects([(1, (0.45, 0.5)), (2, (0.9, 0.9))])
        monitor.set_object_tags({1: {"taxi"}})
        spec = FilteredKnnSpec(point=(0.5, 0.5), k=2, tags=("taxi",))
        result = install_spec(monitor, 7, spec)
        assert [oid for _, oid in result] == [1]

        # Object 2 gains the tag and moves close: it enters the result.
        monitor.set_object_tags({2: {"taxi"}})
        monitor.process([ObjectUpdate(2, (0.9, 0.9), (0.55, 0.5))], [])
        assert [oid for _, oid in monitor.result(7)] == [1, 2]

        # Object 1 loses the tag; on its next move it leaves the result.
        monitor.set_object_tags({1: set()})
        monitor.process([ObjectUpdate(1, (0.45, 0.5), (0.44, 0.5))], [])
        assert [oid for _, oid in monitor.result(7)] == [2]


class TestFilteredMonitoringEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        k=st.integers(min_value=1, max_value=4),
        cells=st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=15, deadline=None)
    def test_cpm_matches_brute_across_moving_workload(self, seed, k, cells):
        spec = WorkloadSpec(
            n_objects=60,
            n_queries=2,
            k=k,
            timestamps=4,
            seed=seed,
            query_agility=0.0,
        )
        workload = UniformGenerator(spec).generate()
        tags = {oid: tag_for(oid) for oid in workload.initial_objects}
        queries = sorted(workload.initial_queries.items())

        cpm = CPMMonitor(cells_per_axis=cells)
        brute = BruteForceMonitor()
        for monitor in (cpm, brute):
            monitor.load_objects(workload.initial_objects.items())
            monitor.set_object_tags(tags)

        results = {}
        for engine, monitor in (("cpm", cpm), ("brute", brute)):
            results[engine] = [
                install_spec(
                    monitor,
                    qid,
                    FilteredKnnSpec(point=point, k=k, tags=("taxi",)),
                )
                for qid, point in queries
            ]
        assert results["cpm"] == results["brute"]

        for batch in workload.batches:
            expect = brute.process_deltas(batch.object_updates, [])
            got = cpm.process_deltas(batch.object_updates, [])
            assert got == expect, batch.timestamp
            assert cpm.result_table() == brute.result_table(), batch.timestamp


class TestSessionFiltered:
    def test_register_filtered_spec_through_session(self):
        session = Session(CPMMonitor(cells_per_axis=8))
        session.load_objects([(1, (0.45, 0.5)), (2, (0.55, 0.5)), (3, (0.5, 0.6))])
        session.set_object_tags({1: {"taxi"}, 3: {"bus"}})
        handle = session.register(
            FilteredKnnSpec(point=(0.5, 0.5), k=3, tags=("taxi",))
        )
        assert [oid for _, oid in handle.snapshot()] == [1]
        plain = session.register(KnnSpec(point=(0.5, 0.5), k=3))
        assert [oid for _, oid in plain.snapshot()] == [1, 2, 3]

    def test_filtered_deltas_stream_to_subscribers(self):
        session = Session(CPMMonitor(cells_per_axis=8))
        session.load_objects([(1, (0.45, 0.5)), (2, (0.9, 0.9))])
        session.set_object_tags({1: {"taxi"}, 2: {"taxi"}})
        handle = session.register(
            FilteredKnnSpec(point=(0.5, 0.5), k=2, tags=("taxi",))
        )
        seen = []
        handle.subscribe(lambda ts, d: seen.append((ts, d.result)))
        session.tick(
            [ObjectUpdate(2, (0.9, 0.9), (0.55, 0.5))], timestamp=1
        )
        assert seen
        ts, result = seen[-1]
        assert ts == 1
        assert [oid for _, oid in result] == [1, 2]
