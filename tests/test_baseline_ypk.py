"""Tests for the YPK-CNN baseline monitor."""

import random

import pytest

from repro.baselines.ypk import YpkCnnMonitor
from repro.updates import (
    QueryUpdate,
    QueryUpdateKind,
    appear_update,
    disappear_update,
    move_update,
)
from tests.conftest import brute_knn, scatter


def fresh(n_objects=60, cells=8, seed=5):
    m = YpkCnnMonitor(cells_per_axis=cells)
    objs = scatter(n_objects, seed=seed)
    m.load_objects(objs)
    return m, dict(objs)


class TestInstall:
    @pytest.mark.parametrize("k", [1, 4, 9])
    def test_initial_result(self, k):
        m, positions = fresh()
        assert m.install_query(0, (0.5, 0.5), k) == brute_knn(positions, (0.5, 0.5), k)

    def test_double_install_raises(self):
        m, _ = fresh()
        m.install_query(0, (0.5, 0.5), 1)
        with pytest.raises(KeyError):
            m.install_query(0, (0.4, 0.4), 1)


class TestReEvaluation:
    def test_static_query_tracks_moving_objects(self):
        m, positions = fresh()
        m.install_query(0, (0.5, 0.5), 2)
        rng = random.Random(1)
        for t in range(8):
            updates = []
            for oid in rng.sample(list(positions), 12):
                old = positions[oid]
                new = (rng.random(), rng.random())
                positions[oid] = new
                updates.append(move_update(oid, old, new))
            m.process(updates)
            assert m.result(0) == brute_knn(positions, (0.5, 0.5), 2), t

    def test_dmax_path_used_for_small_motion(self):
        """Moving a NN slightly keeps the re-evaluation bounded by d_max
        (the SR square stays small)."""
        m, positions = fresh(n_objects=200, cells=16)
        m.install_query(0, (0.5, 0.5), 2)
        nn_oid = m.result(0)[0][1]
        old = positions[nn_oid]
        m.reset_stats()
        m.process([move_update(nn_oid, old, (old[0] + 0.01, old[1]))])
        positions[nn_oid] = (old[0] + 0.01, old[1])
        # The SR square is tiny; far fewer scans than the whole grid.
        assert 0 < m.stats.cell_scans < 50
        assert m.result(0) == brute_knn(positions, (0.5, 0.5), 2)

    def test_re_evaluates_even_without_updates(self):
        """The paper's criticism: YPK-CNN re-evaluates every query every
        cycle even when nothing near it changed."""
        m, _ = fresh()
        m.install_query(0, (0.5, 0.5), 2)
        m.reset_stats()
        m.process([])  # empty cycle
        assert m.stats.cell_scans > 0

    def test_disappearing_nn_falls_back_to_fresh_search(self):
        m, positions = fresh()
        m.install_query(0, (0.5, 0.5), 2)
        nn_oid = m.result(0)[0][1]
        m.process([disappear_update(nn_oid, positions[nn_oid])])
        del positions[nn_oid]
        assert m.result(0) == brute_knn(positions, (0.5, 0.5), 2)

    def test_appearing_object_found(self):
        m, positions = fresh()
        m.install_query(0, (0.5, 0.5), 1)
        m.process([appear_update(999, (0.501, 0.501))])
        positions[999] = (0.501, 0.501)
        assert m.result(0)[0][1] == 999

    def test_underfull_result_grows_with_population(self):
        m = YpkCnnMonitor(cells_per_axis=4)
        m.load_objects([(1, (0.3, 0.3))])
        m.install_query(0, (0.5, 0.5), 3)
        assert len(m.result(0)) == 1
        m.process([appear_update(2, (0.6, 0.6)), appear_update(3, (0.1, 0.9))])
        assert len(m.result(0)) == 3


class TestQueryUpdates:
    def test_move_handled_as_new_query(self):
        m, positions = fresh()
        m.install_query(0, (0.5, 0.5), 3)
        m.process([], [QueryUpdate(0, QueryUpdateKind.MOVE, (0.1, 0.9), 3)])
        assert m.result(0) == brute_knn(positions, (0.1, 0.9), 3)

    def test_terminate(self):
        m, _ = fresh()
        m.install_query(0, (0.5, 0.5), 1)
        m.process([], [QueryUpdate(0, QueryUpdateKind.TERMINATE)])
        assert m.query_ids() == []

    def test_mixed_cycle(self):
        m, positions = fresh()
        m.install_query(0, (0.5, 0.5), 2)
        oid = next(iter(positions))
        old = positions[oid]
        positions[oid] = (0.8, 0.2)
        m.process(
            [move_update(oid, old, (0.8, 0.2))],
            [QueryUpdate(1, QueryUpdateKind.INSERT, (0.25, 0.75), 2)],
        )
        assert m.result(0) == brute_knn(positions, (0.5, 0.5), 2)
        assert m.result(1) == brute_knn(positions, (0.25, 0.75), 2)
