"""Property-based tests: CPM correctness under arbitrary update streams.

The central invariant of the whole paper: after any sequence of object
updates (moves, appearances, disappearances), every monitored query's
result equals the brute-force k-NN over the current positions.  Distance
multisets are compared (ids can legitimately differ under exact ties,
which hypothesis *will* generate via duplicate coordinates).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cpm import CPMMonitor
from repro.updates import ObjectUpdate

coord = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
point = st.tuples(coord, coord)


def brute_dists(positions, q, k):
    dists = sorted(math.hypot(x - q[0], y - q[1]) for x, y in positions.values())
    return dists[:k]


def result_dists(entries):
    return [d for d, _oid in entries]


def close(a, b, tol=1e-9):
    return len(a) == len(b) and all(abs(x - y) <= tol for x, y in zip(a, b))


@st.composite
def update_scripts(draw):
    """An initial population plus a batched stream of random events."""
    n_initial = draw(st.integers(min_value=0, max_value=25))
    initial = {oid: draw(point) for oid in range(n_initial)}
    n_batches = draw(st.integers(min_value=1, max_value=6))
    batches = []
    alive = set(initial)
    next_oid = n_initial
    for _ in range(n_batches):
        n_events = draw(st.integers(min_value=0, max_value=8))
        events = []
        used = set()
        for _ in range(n_events):
            kind = draw(st.sampled_from(["move", "appear", "disappear"]))
            if kind == "move" and alive - used:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("move", oid, draw(point)))
                used.add(oid)
            elif kind == "disappear" and alive - used:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("disappear", oid, None))
                used.add(oid)
                alive.discard(oid)
            else:
                events.append(("appear", next_oid, draw(point)))
                alive.add(next_oid)
                used.add(next_oid)
                next_oid += 1
        batches.append(events)
    return initial, batches


@given(
    update_scripts(),
    point,
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=2, max_value=10),
)
@settings(max_examples=120, deadline=None)
def test_cpm_equals_brute_force_under_any_stream(script, q, k, cells):
    initial, batches = script
    monitor = CPMMonitor(cells_per_axis=cells)
    monitor.load_objects(initial.items())
    positions = dict(initial)
    got = monitor.install_query(0, q, k)
    assert close(result_dists(got), brute_dists(positions, q, k))
    for events in batches:
        updates = []
        for kind, oid, new in events:
            if kind == "move":
                updates.append(ObjectUpdate(oid, positions[oid], new))
                positions[oid] = new
            elif kind == "appear":
                updates.append(ObjectUpdate(oid, None, new))
                positions[oid] = new
            else:
                updates.append(ObjectUpdate(oid, positions.pop(oid), None))
        monitor.process(updates)
        assert close(
            result_dists(monitor.result(0)), brute_dists(positions, q, k)
        )


@given(
    update_scripts(),
    point,
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_ablation_variants_agree_with_full_cpm(script, q, k):
    initial, batches = script
    full = CPMMonitor(cells_per_axis=4)
    no_merge = CPMMonitor(cells_per_axis=4, merge_optimization=False)
    no_book = CPMMonitor(cells_per_axis=4, reuse_bookkeeping=False)
    monitors = (full, no_merge, no_book)
    positions = dict(initial)
    for m in monitors:
        m.load_objects(initial.items())
        m.install_query(0, q, k)
    for events in batches:
        updates = []
        for kind, oid, new in events:
            if kind == "move":
                updates.append(ObjectUpdate(oid, positions[oid], new))
                positions[oid] = new
            elif kind == "appear":
                updates.append(ObjectUpdate(oid, None, new))
                positions[oid] = new
            else:
                updates.append(ObjectUpdate(oid, positions.pop(oid), None))
        for m in monitors:
            m.process(updates)
        ref = result_dists(full.result(0))
        assert close(result_dists(no_merge.result(0)), ref)
        assert close(result_dists(no_book.result(0)), ref)


@given(
    st.lists(point, min_size=1, max_size=40),
    point,
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=2, max_value=12),
)
@settings(max_examples=150, deadline=None)
def test_search_is_cell_minimal(objects, q, k, cells):
    """CPM's visit list equals the minimal cell set: all cells with
    mindist < best_dist, none with mindist > best_dist."""
    monitor = CPMMonitor(cells_per_axis=cells)
    monitor.load_objects(
        (oid, pos) for oid, pos in enumerate(objects)
    )
    monitor.install_query(0, q, k)
    state = monitor.query_state(0)
    best = state.best_dist
    visited = set(state.visit_cells)
    grid = monitor.grid
    if math.isinf(best):
        # Under-populated: every cell must have been visited.
        assert len(visited) == grid.cols * grid.rows
        return
    for i in range(grid.cols):
        for j in range(grid.rows):
            md = grid.mindist(i, j, q)
            if md < best - 1e-12:
                assert (i, j) in visited
            elif md > best + 1e-12:
                assert (i, j) not in visited


@given(
    update_scripts(),
    point,
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_marked_prefix_invariant_holds_throughout(script, q, k):
    """The grid cells marked for a query are exactly the visit-list prefix
    recorded in its state — after every batch."""
    initial, batches = script
    monitor = CPMMonitor(cells_per_axis=5)
    monitor.load_objects(initial.items())
    positions = dict(initial)
    monitor.install_query(0, q, k)
    for events in batches:
        updates = []
        for kind, oid, new in events:
            if kind == "move":
                updates.append(ObjectUpdate(oid, positions[oid], new))
                positions[oid] = new
            elif kind == "appear":
                updates.append(ObjectUpdate(oid, None, new))
                positions[oid] = new
            else:
                updates.append(ObjectUpdate(oid, positions.pop(oid), None))
        monitor.process(updates)
        state = monitor.query_state(0)
        marked = set(monitor.grid.marked_cells(0))
        assert marked == set(state.visit_cells[: state.marked_upto])
        # And the visit list stays sorted by key.
        assert state.visit_keys == sorted(state.visit_keys)
