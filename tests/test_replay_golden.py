"""Full-replay CPM equality against the pre-rewrite result stream.

The golden fixture (``tests/data/cpm_replay_golden.json``) was recorded
with the dict-per-cell grid that preceded the columnar storage rewrite
(PR 3).  Replaying the same deterministic workload must reproduce the
stream *byte-identically* — every cycle's changed-query set, every
changed query's exact result entries (full float precision via ``repr``
round-tripping), and the final deterministic grid counters.  Any
divergence means the columnar layout or the fused scan kernels altered
observable behavior, not just speed.

Regenerate (only when the *intended* behavior changes)::

    PYTHONPATH=src python -m tests.test_replay_golden
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.cpm import CPMMonitor
from repro.experiments.common import make_workload, scaled_spec

GOLDEN_PATH = Path(__file__).parent / "data" / "cpm_replay_golden.json"

#: fixed replay parameters; changing any of these invalidates the fixture.
SPEC_OVERRIDES = dict(
    n_objects=300, n_queries=12, k=4, timestamps=10, seed=2005
)
GRID = 16


def build_stream() -> dict:
    """Replay the fixture workload into a fresh CPM monitor.

    Returns a JSON-ready document: initial results, the per-cycle change
    stream, and the final deterministic counters.
    """
    spec = scaled_spec(1.0, **SPEC_OVERRIDES)
    workload = make_workload(spec)
    monitor = CPMMonitor(GRID, bounds=spec.bounds)
    monitor.load_objects(sorted(workload.initial_objects.items()))
    initial = {
        str(qid): [[repr(d), oid] for d, oid in monitor.install_query(qid, point, spec.k)]
        for qid, point in sorted(workload.initial_queries.items())
    }
    cycles = []
    for batch in workload.batches:
        changed = monitor.process(batch.object_updates, batch.query_updates)
        cycles.append(
            {
                "timestamp": batch.timestamp,
                "changed": {
                    str(qid): [[repr(d), oid] for d, oid in monitor.result(qid)]
                    for qid in sorted(changed)
                },
            }
        )
    stats = monitor.stats
    return {
        "spec": SPEC_OVERRIDES,
        "grid": GRID,
        "initial": initial,
        "cycles": cycles,
        "counters": {
            "cell_scans": stats.cell_scans,
            "objects_scanned": stats.objects_scanned,
            "inserts": stats.inserts,
            "deletes": stats.deletes,
            "mark_ops": stats.mark_ops,
        },
    }


def test_cpm_replay_matches_pre_rewrite_stream():
    golden = json.loads(GOLDEN_PATH.read_text())
    assert build_stream() == golden


if __name__ == "__main__":  # fixture regeneration entry point
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(build_stream(), indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")
