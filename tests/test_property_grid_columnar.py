"""Property-based equivalence: columnar grid versus a dict-model reference.

The PR 3 rewrite replaced the per-cell ``dict[int, Point]`` store with
columnar ``oids`` / ``xs`` / ``ys`` lists plus a slot index
(:mod:`repro.grid.kernels`).  The accounting contract must be untouched:
for ANY interleaving of inserts, deletes, moves, same-cell relocations
and scans, the columnar grid must report the same objects, the same
kernel results and byte-identical ``cell_scans`` / ``objects_scanned``
counters as the obvious dict-of-dicts model.

Hypothesis drives random operation sequences against both and compares
after every step.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.grid import Grid

GRID_AXIS = 4  # 4x4 unit-square grid; delta = 0.25


class DictModelGrid:
    """The pre-rewrite reference: dict cells + the same charged accessors."""

    def __init__(self, cells_per_axis: int = GRID_AXIS) -> None:
        self.cols = self.rows = cells_per_axis
        self.delta = 1.0 / cells_per_axis
        self.cells: dict[int, dict[int, tuple[float, float]]] = {}
        self.cell_scans = 0
        self.objects_scanned = 0
        self.inserts = 0
        self.deletes = 0

    def cell_id(self, x: float, y: float) -> int:
        i = min(max(int(x / self.delta), 0), self.cols - 1)
        j = min(max(int(y / self.delta), 0), self.rows - 1)
        return i * self.rows + j

    def insert(self, oid: int, x: float, y: float) -> None:
        cell = self.cells.setdefault(self.cell_id(x, y), {})
        assert oid not in cell
        cell[oid] = (x, y)
        self.inserts += 1

    def delete(self, oid: int, x: float, y: float) -> None:
        cell = self.cells[self.cell_id(x, y)]
        del cell[oid]
        self.deletes += 1

    def move(self, oid: int, old, new) -> None:
        self.delete(oid, old[0], old[1])
        self.insert(oid, new[0], new[1])

    def scan(self, cid: int) -> dict[int, tuple[float, float]]:
        cell = self.cells.get(cid, {})
        self.cell_scans += 1
        self.objects_scanned += len(cell)
        return dict(cell)

    def scan_within(self, cid: int, qx: float, qy: float, r: float):
        cell = self.scan(cid)
        return [
            (math.hypot(x - qx, y - qy), oid)
            for oid, (x, y) in cell.items()
            if math.hypot(x - qx, y - qy) <= r
        ]

    def scan_best_k(self, cid: int, qx: float, qy: float, k: int, bound: float):
        return sorted(self.scan_within(cid, qx, qy, bound))[:k]


coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
point = st.tuples(coord, coord)
oid_st = st.integers(min_value=0, max_value=11)

operation = st.one_of(
    st.tuples(st.just("insert"), oid_st, point),
    st.tuples(st.just("delete"), oid_st, st.none()),
    st.tuples(st.just("move"), oid_st, point),
    st.tuples(st.just("scan"), st.integers(0, GRID_AXIS * GRID_AXIS - 1), st.none()),
    st.tuples(st.just("scan_within"), st.integers(0, GRID_AXIS * GRID_AXIS - 1), point),
    st.tuples(st.just("scan_best_k"), st.integers(0, GRID_AXIS * GRID_AXIS - 1), point),
    st.tuples(st.just("scan_all_flat"), st.integers(0, GRID_AXIS * GRID_AXIS - 1), st.none()),
)


@settings(max_examples=120, deadline=None)
@given(st.lists(operation, max_size=60))
def test_columnar_grid_matches_dict_model(ops):
    grid = Grid(GRID_AXIS)
    model = DictModelGrid()
    live: dict[int, tuple[float, float]] = {}  # oid -> position

    for op, arg, payload in ops:
        if op == "insert":
            if arg in live:
                continue
            x, y = payload
            grid.insert(arg, x, y)
            model.insert(arg, x, y)
            live[arg] = (x, y)
        elif op == "delete":
            if arg not in live:
                continue
            x, y = live.pop(arg)
            grid.delete(arg, x, y)
            model.delete(arg, x, y)
        elif op == "move":
            if arg not in live:
                continue
            old = live[arg]
            new = payload
            # Exercises the same-cell relocate fast path whenever the
            # packed ids collide.
            grid.move(arg, old, new)
            model.move(arg, old, new)
            live[arg] = new
        elif op == "scan":
            assert grid.scan_id(arg) == model.scan(arg)
        elif op == "scan_within":
            qx, qy = payload
            r = 0.4
            assert sorted(grid.scan_within(arg, qx, qy, r)) == sorted(
                model.scan_within(arg, qx, qy, r)
            )
        elif op == "scan_best_k":
            qx, qy = payload
            assert grid.scan_best_k(arg, qx, qy, 3) == model.scan_best_k(
                arg, qx, qy, 3, math.inf
            )
        else:  # scan_all_flat
            oids, xs, ys = grid.scan_all_flat(arg)
            flat = {oid: (x, y) for oid, x, y in zip(oids, xs, ys)}
            assert flat == model.scan(arg)

        # Invariants after every step, counters byte-identical.
        assert len(grid) == len(live)
        assert grid.stats.cell_scans == model.cell_scans
        assert grid.stats.objects_scanned == model.objects_scanned
        assert grid.stats.inserts == model.inserts
        assert grid.stats.deletes == model.deletes

    # Full-content sweep at the end (uncharged peeks).
    for i in range(grid.cols):
        for j in range(grid.rows):
            cid = grid.pack(i, j)
            expected = {
                oid: pos for oid, pos in live.items() if model.cell_id(*pos) == cid
            }
            assert grid.peek(i, j) == expected


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(oid_st, point, point), min_size=1, max_size=30))
def test_same_cell_relocate_matches_delete_insert_counters(moves):
    """grid.move's relocate fast path bumps exactly one delete+insert."""
    grid = Grid(GRID_AXIS)
    placed: dict[int, tuple[float, float]] = {}
    for oid, first, second in moves:
        if oid not in placed:
            grid.insert(oid, first[0], first[1])
            placed[oid] = first
        before_ins = grid.stats.inserts
        before_del = grid.stats.deletes
        old = placed[oid]
        grid.move(oid, old, second)
        placed[oid] = second
        assert grid.stats.inserts == before_ins + 1
        assert grid.stats.deletes == before_del + 1
        assert grid.peek(*grid.cell_of(second[0], second[1]))[oid] == second
