"""Tests for Minkowski-metric NN monitoring (footnote 3 extension)."""

import math
import random

import pytest

from repro.core.cpm import CPMMonitor
from repro.core.metrics_ext import MinkowskiNNStrategy, minkowski_dist
from repro.updates import move_update
from tests.conftest import scatter


def brute_minkowski(positions, q, k, p):
    entries = sorted(
        (minkowski_dist(x, y, q[0], q[1], p), oid)
        for oid, (x, y) in positions.items()
    )
    return entries[:k]


class TestMinkowskiDist:
    def test_l1(self):
        assert minkowski_dist(0, 0, 3, 4, 1.0) == 7.0

    def test_l2(self):
        assert minkowski_dist(0, 0, 3, 4, 2.0) == 5.0

    def test_linf(self):
        assert minkowski_dist(0, 0, 3, 4, None) == 4.0

    def test_general_p(self):
        assert minkowski_dist(0, 0, 1, 1, 3.0) == pytest.approx(2 ** (1 / 3))

    def test_norm_ordering(self):
        # L1 >= L2 >= Linf for any displacement.
        for dx, dy in [(0.3, 0.7), (1.0, 0.0), (0.5, 0.5)]:
            l1 = minkowski_dist(0, 0, dx, dy, 1.0)
            l2 = minkowski_dist(0, 0, dx, dy, 2.0)
            linf = minkowski_dist(0, 0, dx, dy, None)
            assert l1 >= l2 >= linf


class TestStrategyValidation:
    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            MinkowskiNNStrategy(0.5, 0.5, "cosine")

    def test_exponent_below_one_raises(self):
        with pytest.raises(ValueError):
            MinkowskiNNStrategy(0.5, 0.5, 0.5)

    def test_l2_equals_euclidean_strategy(self):
        from repro.core.strategies import PointNNStrategy

        mink = MinkowskiNNStrategy(0.3, 0.7, "l2")
        plain = PointNNStrategy(0.3, 0.7)
        for x, y in [(0.1, 0.9), (0.5, 0.5), (0.99, 0.01)]:
            assert mink.dist(x, y) == pytest.approx(plain.dist(x, y))

    def test_cell_key_lower_bounds_dist(self):
        from repro.grid.grid import Grid

        rng = random.Random(4)
        grid = Grid(8)
        for metric in ("l1", "l2", "linf", 3.0):
            s = MinkowskiNNStrategy(0.37, 0.58, metric)
            for _ in range(50):
                i, j = rng.randrange(8), rng.randrange(8)
                x0, y0, x1, y1 = grid.cell_rect(i, j)
                px, py = rng.uniform(x0, x1), rng.uniform(y0, y1)
                assert s.cell_key(grid, i, j) <= s.dist(px, py) + 1e-12

    def test_strip_keys_lower_bound_strip_cells(self):
        from repro.core.partition import DIRECTIONS
        from repro.grid.grid import Grid

        grid = Grid(8)
        for metric in ("l1", "linf"):
            s = MinkowskiNNStrategy(0.41, 0.66, metric)
            part = s.partition(grid)
            for direction in DIRECTIONS:
                if not part.exists(direction, 0):
                    continue
                key = s.strip_key0(grid, part, direction)
                level = 0
                while part.exists(direction, level):
                    for i, j in part.strip_cells(direction, level):
                        assert s.cell_key(grid, i, j) >= key - 1e-12
                    key += s.level_step(grid)
                    level += 1


class TestMonitoring:
    @pytest.mark.parametrize("metric,p", [("l1", 1.0), ("l2", 2.0), ("linf", None)])
    def test_search_matches_brute_force(self, metric, p):
        monitor = CPMMonitor(cells_per_axis=8)
        objs = scatter(70, seed=31)
        monitor.load_objects(objs)
        positions = dict(objs)
        for qid, q in enumerate([(0.5, 0.5), (0.1, 0.9), (0.97, 0.03)]):
            result = monitor.install_strategy_query(
                qid, MinkowskiNNStrategy(q[0], q[1], metric), k=4
            )
            assert result == brute_minkowski(positions, q, 4, p)

    @pytest.mark.parametrize("metric,p", [("l1", 1.0), ("linf", None)])
    def test_updates_match_brute_force(self, metric, p):
        rng = random.Random(5)
        monitor = CPMMonitor(cells_per_axis=8)
        objs = scatter(60, seed=32)
        monitor.load_objects(objs)
        positions = dict(objs)
        q = (0.45, 0.55)
        monitor.install_strategy_query(0, MinkowskiNNStrategy(*q, metric), k=3)
        for _ in range(10):
            updates = []
            for oid in rng.sample(list(positions), 12):
                old = positions[oid]
                new = (rng.random(), rng.random())
                positions[oid] = new
                updates.append(move_update(oid, old, new))
            monitor.process(updates)
            assert monitor.result(0) == brute_minkowski(positions, q, 3, p)

    def test_metrics_can_disagree_on_the_nn(self):
        # A point far along one axis beats a diagonal point under Linf but
        # loses under L1.
        monitor = CPMMonitor(cells_per_axis=8)
        monitor.load_objects([(1, (0.8, 0.5)), (2, (0.68, 0.68))])
        q = (0.5, 0.5)
        l1 = monitor.install_strategy_query(0, MinkowskiNNStrategy(*q, "l1"), 1)
        linf = monitor.install_strategy_query(1, MinkowskiNNStrategy(*q, "linf"), 1)
        assert l1[0][1] == 1       # L1: 0.3 vs 0.36
        assert linf[0][1] == 2     # Linf: 0.3 vs 0.18
