"""Unit tests for repro.geometry.points."""

import math

import pytest

from repro.geometry.points import (
    dist,
    dist_sq,
    max_distance_to_corners,
    midpoint,
    translate,
)


class TestDist:
    def test_pythagorean_triple(self):
        assert dist((0.0, 0.0), (3.0, 4.0)) == 5.0

    def test_zero_for_same_point(self):
        assert dist((0.3, 0.7), (0.3, 0.7)) == 0.0

    def test_symmetry(self):
        a, b = (0.1, 0.9), (0.8, 0.2)
        assert dist(a, b) == dist(b, a)

    def test_axis_aligned(self):
        assert dist((0.0, 0.0), (2.5, 0.0)) == 2.5
        assert dist((0.0, 0.0), (0.0, 1.5)) == 1.5

    def test_triangle_inequality(self):
        a, b, c = (0.0, 0.0), (0.4, 0.7), (1.0, 0.1)
        assert dist(a, c) <= dist(a, b) + dist(b, c) + 1e-12

    def test_negative_coordinates(self):
        assert dist((-1.0, -1.0), (2.0, 3.0)) == 5.0


class TestDistSq:
    def test_matches_dist_squared(self):
        a, b = (0.13, 0.58), (0.92, 0.31)
        assert dist_sq(a, b) == pytest.approx(dist(a, b) ** 2)

    def test_zero(self):
        assert dist_sq((1.0, 2.0), (1.0, 2.0)) == 0.0


class TestMidpoint:
    def test_basic(self):
        assert midpoint((0.0, 0.0), (1.0, 2.0)) == (0.5, 1.0)

    def test_same_point(self):
        assert midpoint((0.4, 0.4), (0.4, 0.4)) == (0.4, 0.4)

    def test_equidistant(self):
        a, b = (0.1, 0.3), (0.9, 0.5)
        m = midpoint(a, b)
        assert dist(a, m) == pytest.approx(dist(b, m))


class TestTranslate:
    def test_basic(self):
        assert translate((1.0, 2.0), 0.5, -0.5) == (1.5, 1.5)

    def test_zero_displacement(self):
        assert translate((0.2, 0.8), 0.0, 0.0) == (0.2, 0.8)

    def test_preserves_distance(self):
        a, b = (0.1, 0.2), (0.7, 0.9)
        assert dist(translate(a, 0.3, 0.1), translate(b, 0.3, 0.1)) == pytest.approx(
            dist(a, b)
        )


class TestMaxDistanceToCorners:
    def test_unit_square_from_origin(self):
        corners = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
        assert max_distance_to_corners((0.0, 0.0), corners) == pytest.approx(
            math.sqrt(2.0)
        )

    def test_center(self):
        corners = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
        assert max_distance_to_corners((0.5, 0.5), corners) == pytest.approx(
            math.sqrt(0.5)
        )

    def test_empty_iterable(self):
        assert max_distance_to_corners((0.5, 0.5), []) == 0.0
