"""End-to-end telemetry: replay over a socket, scrape, alerts, resync.

The acceptance scenario for the observability tier: a feed replayed over
a real socket into an instrumented driver + service, published through a
:class:`MonitorSocketServer` carrying the same registry — then asserted
from *outside* the process boundary: the remote scrape must match the
in-process registry, ``watch_metrics`` must stream snapshot frames,
soft health alerts must arrive as wire ``alert`` frames, and a lagging
client with ``auto_resync`` must recover through the sync handshake.
"""

import socket
import threading
import time

import pytest

from repro.api.client import Client, RemoteError
from repro.api.queries import KnnSpec
from repro.api.server import MonitorSocketServer
from repro.api.session import Session
from repro.core.cpm import CPMMonitor
from repro.ingest.buffer import BackPressurePolicy, IngestBuffer
from repro.ingest.driver import IngestDriver
from repro.ingest.feeds import SocketFeed, WorkloadFeed, push_feed_to_socket
from repro.mobility.uniform import UniformGenerator
from repro.mobility.workload import WorkloadSpec
from repro.obs.health import AlertEvent, DropRateSpike, HealthPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.scrape import parse_prometheus, scrape_text
from repro.service.service import MonitoringService
from repro.service.subscriptions import SlowConsumerPolicy
from repro.updates import ObjectUpdate

SPEC = WorkloadSpec(
    n_objects=120, n_queries=4, k=3, timestamps=6, seed=23, query_agility=0.0
)
CELLS = 16


@pytest.fixture(scope="module")
def workload():
    return UniformGenerator(SPEC).generate()


def _stable(snapshot: dict) -> dict:
    """Drop the wall-clock-dependent series before comparing snapshots."""
    return {
        key: value
        for key, value in snapshot.items()
        if "staleness" not in key
    }


def _wait_for(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestTelemetryEndToEnd:
    def test_socket_replay_scrape_and_alerts(self, workload):
        """The headline acceptance flow, one pipeline end to end."""
        registry = MetricsRegistry()
        monitor = CPMMonitor(cells_per_axis=CELLS)
        service = MonitoringService(monitor, metrics=registry)
        session = Session(service)
        server = MonitorSocketServer(
            session, name="obs-e2e", registry=registry, scrape_port=0
        )
        host, port = server.start()

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        feed_port = listener.getsockname()[1]

        def produce():
            conn, _ = listener.accept()
            try:
                push_feed_to_socket(WorkloadFeed(workload), conn)
            finally:
                conn.close()
                listener.close()

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        feed = SocketFeed.connect(
            "127.0.0.1",
            feed_port,
            initial_objects=workload.initial_objects,
            initial_queries=workload.initial_queries,
        )
        # A deliberately lossy buffer: every mark cycle offers ~120
        # updates into 16 slots, so the drop-rate rule must fire (the
        # ground-truth soft alert of the acceptance criterion).
        driver = IngestDriver(
            feed,
            service,
            buffer=IngestBuffer(
                capacity=16, policy=BackPressurePolicy.DROP_OLDEST
            ),
            metrics=registry,
            health=HealthPolicy(
                rules=(DropRateSpike(max_rate=0.05, min_offered=10),)
            ),
            on_alert=server.publish_alert,
            queue_depth_probe=lambda: server.stats().depth,
        )
        try:
            with Client.connect(host, port, metrics=registry) as client:
                first = client.watch_metrics(interval_ms=25, alerts=True)
                # The immediate frame is the pre-run registry snapshot.
                names = {name for name, _ in first.rows}
                assert "repro_service_ticks_total" in names
                assert "repro_ingest_cycles_total" in names

                driver.prime(k=SPEC.k)
                report = driver.run()
                producer.join(timeout=10)

                assert not report.failed
                assert report.n_cycles > 0
                assert report.total_dropped > 0
                assert report.alerts, "lossy replay emitted no soft alert"

                # Wire-exported alerts match the in-process ground truth.
                assert _wait_for(
                    lambda: len(client.alert_events) >= len(report.alerts)
                )
                ground_truth = {
                    (event.rule, event.cycle) for event in report.alerts
                }
                received = {
                    (frame.rule, frame.cycle) for frame in client.alert_events
                }
                assert ground_truth <= received
                assert all(
                    frame.level == "soft" for frame in client.alert_events
                )

                # Exported counters match the run's report exactly.
                snap = registry.snapshot()
                assert snap["repro_ingest_cycles_total"] == report.n_cycles
                assert snap["repro_ingest_dropped_total"] == (
                    report.total_dropped
                )
                assert snap["repro_ingest_coalesced_total"] == (
                    report.total_coalesced
                )
                assert snap["repro_service_ticks_total"] == report.n_cycles
                assert snap['repro_health_alerts_total{level="soft"}'] == len(
                    report.alerts
                )
                assert snap[
                    "repro_client_alerts_received_total"
                    '{level="soft"}'
                ] >= len(report.alerts)

                # Periodic metrics frames kept flowing during the run.
                assert _wait_for(lambda: len(client.metrics_frames) >= 2)
                latest = dict(client.metrics_frames[-1].rows)
                assert latest["repro_ingest_cycles_total"] == report.n_cycles

                # The remote scrape equals the in-process registry (the
                # retry loop absorbs in-flight gauge movement while the
                # fan-out quiesces).
                scrape_host, scrape_port = server.scrape_address
                assert _wait_for(
                    lambda: _stable(
                        parse_prometheus(scrape_text(scrape_host, scrape_port))
                    )
                    == _stable(registry.snapshot())
                )

                # The server's stats surface, while the client is live.
                stats = server.stats()
                assert stats.accepted == 1
                assert len(stats.connections) == 1
                assert stats.connections[0].frames_sent > 0
        finally:
            feed.close()
            server.stop()

    def test_watch_metrics_requires_a_registry(self):
        session = Session(CPMMonitor(cells_per_axis=CELLS))
        server = MonitorSocketServer(session, name="bare")
        host, port = server.start()
        try:
            with Client.connect(host, port) as client:
                with pytest.raises(RemoteError, match="metrics registry"):
                    client.watch_metrics()
        finally:
            server.stop()

    def test_publish_alert_reaches_only_watching_connections(self):
        registry = MetricsRegistry()
        session = Session(CPMMonitor(cells_per_axis=CELLS))
        server = MonitorSocketServer(
            session, name="alerts", registry=registry
        )
        host, port = server.start()
        try:
            with Client.connect(host, port) as watching, Client.connect(
                host, port
            ) as deaf:
                watching.watch_metrics(interval_ms=0, alerts=True)
                event = AlertEvent(
                    level="soft",
                    rule="queue_depth_growth",
                    message="depth 300 exceeds 256",
                    value=300.0,
                    cycle=7,
                    timestamp=1.5,
                )
                reached = server.publish_alert(event)
                assert reached == 1
                assert _wait_for(lambda: watching.alert_events)
                frame = watching.alert_events[0]
                assert frame.rule == "queue_depth_growth"
                assert frame.cycle == 7
                assert frame.value == 300.0
                assert not deaf.alert_events
                assert (
                    registry.snapshot()["repro_server_alerts_published_total"]
                    == 1
                )
        finally:
            server.stop()

    def test_server_stats_fold_retired_connections(self, workload):
        session = Session(CPMMonitor(cells_per_axis=CELLS))
        session.load_objects(workload.initial_objects.items())
        server = MonitorSocketServer(session, name="stats")
        host, port = server.start()
        try:
            with Client.connect(host, port) as client:
                handle = client.register(KnnSpec(point=(0.5, 0.5), k=2))
                handle.subscribe(lambda ts, delta: None)
                for batch in workload.batches[:2]:
                    client.send_updates(batch.object_updates)
                    client.tick(timestamp=batch.timestamp)
                live = server.stats()
                assert live.accepted == 1
                delivered_live = live.delivered
                assert delivered_live > 0
            # The connection closed: its totals fold into the retired
            # aggregate instead of vanishing.
            assert _wait_for(lambda: not server.stats().connections)
            folded = server.stats()
            assert folded.accepted == 1
            assert folded.delivered >= delivered_live
        finally:
            server.stop()


class TestLagSnapshotPush:
    def test_stalled_consumer_converges_without_auto_resync(self):
        """The server-pushed ``sync_query`` follow-ups land the
        authoritative post-gap result in ``lag_snapshots`` — no resync
        handshake, no request from the client at all."""
        session = Session(CPMMonitor(cells_per_axis=CELLS))
        server = MonitorSocketServer(
            session,
            name="lag-push-server",
            outbound_limit=4,
            slow_consumer=SlowConsumerPolicy.DROP_AND_SNAPSHOT,
            sndbuf=4096,
        )
        host, port = server.start()
        try:
            with Client.connect(host, port) as lagging:
                handle = lagging.register(
                    KnnSpec(point=(0.5, 0.5), k=2), qid=1
                )
                handle.subscribe(
                    lambda ts, delta: (
                        time.sleep(0.02) if not lagging.lag_events else None
                    )
                )
                with Client.connect(host, port) as driving:
                    driving.send_updates(
                        [
                            ObjectUpdate(1, None, (0.52, 0.5)),
                            ObjectUpdate(2, None, (0.9, 0.9)),
                        ]
                    )
                    driving.tick(timestamp=0)
                    old = (0.52, 0.5)
                    for i in range(200):
                        new = [(0.55, 0.5), (0.6, 0.5)][i % 2]
                        driving.send_updates([ObjectUpdate(1, old, new)])
                        driving.tick(timestamp=i + 1)
                        old = new
                        if 1 in lagging.lag_snapshots:
                            break
                assert _wait_for(lambda: lagging.lag_events, timeout=15.0)
                assert _wait_for(
                    lambda: 1 in lagging.lag_snapshots, timeout=15.0
                )
                assert lagging.lag_snapshots[1], "pushed snapshot was empty"
                # Convergence came in-band: no sync handshake ran.
                assert not lagging.resync_events
                assert not lagging.callback_errors
        finally:
            server.stop()


class TestAutoResync:
    def test_lagged_client_resyncs_automatically(self):
        """Satellite (a): a ``lagged`` marker triggers the wire-v2 sync
        handshake on a side thread, refreshing every handle's result."""
        session = Session(CPMMonitor(cells_per_axis=CELLS))
        server = MonitorSocketServer(
            session,
            name="lag-server",
            outbound_limit=4,
            slow_consumer=SlowConsumerPolicy.DROP_AND_SNAPSHOT,
            sndbuf=4096,
        )
        host, port = server.start()
        try:
            with Client.connect(host, port, auto_resync=True) as lagging:
                handle = lagging.register(
                    KnnSpec(point=(0.5, 0.5), k=2), qid=1
                )
                # Stall delta consumption until the server sheds for us;
                # then drain fast so the resync can complete.
                handle.subscribe(
                    lambda ts, delta: (
                        time.sleep(0.02) if not lagging.lag_events else None
                    )
                )
                with Client.connect(host, port) as driving:
                    driving.send_updates(
                        [
                            ObjectUpdate(1, None, (0.52, 0.5)),
                            ObjectUpdate(2, None, (0.9, 0.9)),
                        ]
                    )
                    driving.tick(timestamp=0)
                    old = (0.52, 0.5)
                    for i in range(200):
                        new = [(0.55, 0.5), (0.6, 0.5)][i % 2]
                        driving.send_updates([ObjectUpdate(1, old, new)])
                        driving.tick(timestamp=i + 1)
                        old = new
                        if lagging.resync_events:
                            break
                assert _wait_for(lambda: lagging.lag_events, timeout=15.0)
                assert _wait_for(lambda: lagging.resync_events, timeout=15.0)
                state = lagging.resync_events[-1]
                # The re-sync re-adopted the session's queries with their
                # authoritative post-gap results.
                assert 1 in state.results
                assert state.results[1]
                assert not lagging.callback_errors
        finally:
            server.stop()
