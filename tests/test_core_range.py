"""Tests for continuous range monitoring (repro.core.range_monitor)."""

import random

import pytest

from repro.core.range_monitor import GridRangeMonitor
from repro.geometry.rects import Rect
from repro.updates import appear_update, disappear_update, move_update
from tests.conftest import scatter


def brute_range(positions, rect):
    return {oid for oid, (x, y) in positions.items() if rect.contains_point(x, y)}


def fresh(n_objects=80, cells=8, seed=17):
    monitor = GridRangeMonitor(cells_per_axis=cells)
    objs = scatter(n_objects, seed=seed)
    monitor.load_objects(objs)
    return monitor, dict(objs)


class TestInstall:
    def test_initial_result(self):
        monitor, positions = fresh()
        rect = Rect(0.2, 0.2, 0.6, 0.7)
        assert monitor.install_range_query(0, rect) == brute_range(positions, rect)

    def test_empty_range(self):
        monitor, _ = fresh()
        rect = Rect(0.45001, 0.45001, 0.45002, 0.45002)
        result = monitor.install_range_query(0, rect)
        assert isinstance(result, set)

    def test_whole_workspace(self):
        monitor, positions = fresh()
        assert monitor.install_range_query(0, Rect(0.0, 0.0, 1.0, 1.0)) == set(
            positions
        )

    def test_duplicate_install_raises(self):
        monitor, _ = fresh()
        monitor.install_range_query(0, Rect(0.1, 0.1, 0.2, 0.2))
        with pytest.raises(KeyError):
            monitor.install_range_query(0, Rect(0.1, 0.1, 0.2, 0.2))

    def test_influence_cells_are_intersecting_cells(self):
        monitor, _ = fresh()
        rect = Rect(0.3, 0.3, 0.55, 0.4)
        monitor.install_range_query(0, rect)
        expected = set(monitor.grid.cells_in_rect(rect.x0, rect.y0, rect.x1, rect.y1))
        assert set(monitor.influence_cells(0)) == expected
        assert set(monitor.grid.marked_cells(0)) == expected


class TestMonitoring:
    def test_enter_and_leave(self):
        monitor, positions = fresh()
        rect = Rect(0.4, 0.4, 0.6, 0.6)
        monitor.install_range_query(0, rect)
        outsider = next(
            oid for oid, (x, y) in positions.items() if not rect.contains_point(x, y)
        )
        old = positions[outsider]
        changed = monitor.process([move_update(outsider, old, (0.5, 0.5))])
        positions[outsider] = (0.5, 0.5)
        assert changed == {0}
        assert outsider in monitor.result(0)
        changed = monitor.process([move_update(outsider, (0.5, 0.5), old)])
        positions[outsider] = old
        assert changed == {0}
        assert outsider not in monitor.result(0)

    def test_never_scans_cells_during_updates(self):
        monitor, positions = fresh()
        monitor.install_range_query(0, Rect(0.3, 0.3, 0.7, 0.7))
        monitor.reset_stats()
        oid = next(iter(positions))
        monitor.process([move_update(oid, positions[oid], (0.5, 0.5))])
        assert monitor.stats.cell_scans == 0

    def test_random_stream_matches_brute_force(self):
        rng = random.Random(23)
        monitor, positions = fresh()
        rects = {
            0: Rect(0.0, 0.0, 0.3, 0.3),
            1: Rect(0.25, 0.25, 0.75, 0.75),
            2: Rect(0.6, 0.1, 0.95, 0.9),
        }
        for qid, rect in rects.items():
            monitor.install_range_query(qid, rect)
        next_oid = 1000
        for _ in range(12):
            updates = []
            for oid in rng.sample(sorted(positions), 15):
                old = positions[oid]
                new = (rng.random(), rng.random())
                positions[oid] = new
                updates.append(move_update(oid, old, new))
            if rng.random() < 0.5:
                pos = (rng.random(), rng.random())
                updates.append(appear_update(next_oid, pos))
                positions[next_oid] = pos
                next_oid += 1
            monitor.process(updates)
            for qid, rect in rects.items():
                assert monitor.result(qid) == brute_range(positions, rect), qid

    def test_disappearance_removes_member(self):
        monitor, positions = fresh()
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        monitor.install_range_query(0, rect)
        victim = next(iter(positions))
        monitor.process([disappear_update(victim, positions[victim])])
        assert victim not in monitor.result(0)

    def test_overlapping_queries_share_marks(self):
        monitor, positions = fresh()
        monitor.install_range_query(0, Rect(0.2, 0.2, 0.6, 0.6))
        monitor.install_range_query(1, Rect(0.4, 0.4, 0.8, 0.8))
        mover = next(iter(positions))
        old = positions[mover]
        changed = monitor.process([move_update(mover, old, (0.5, 0.5))])
        positions[mover] = (0.5, 0.5)
        assert changed <= {0, 1}
        assert mover in monitor.result(0)
        assert mover in monitor.result(1)

    def test_terminate_clears_marks(self):
        monitor, _ = fresh()
        monitor.install_range_query(0, Rect(0.1, 0.1, 0.9, 0.9))
        monitor.remove_query(0)
        assert monitor.grid.total_marks == 0
        assert monitor.query_ids() == []

    def test_boundary_containment_is_closed(self):
        monitor = GridRangeMonitor(cells_per_axis=4)
        monitor.load_objects([(1, (0.5, 0.5))])
        assert monitor.install_range_query(0, Rect(0.5, 0.5, 0.7, 0.7)) == {1}

    def test_load_guard(self):
        monitor, _ = fresh()
        monitor.install_range_query(0, Rect(0.1, 0.1, 0.2, 0.2))
        with pytest.raises(RuntimeError):
            monitor.load_objects([(999, (0.5, 0.5))])
