"""Smoke tests: every example script runs cleanly and verifies itself."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "initial 3-NN result" in out
        assert "t=4" in out

    def test_ride_hailing(self):
        out = run_example("ride_hailing.py")
        assert "0 mismatching cycles" in out
        assert "rider" in out

    def test_meeting_point(self):
        out = run_example("meeting_point.py")
        assert out.count("OK") >= 3
        assert "MISMATCH" not in out
        assert "the newcomer" in out

    def test_constrained_sector(self):
        out = run_example("constrained_sector.py")
        assert "intruder excluded" in out
        assert "brute-force verification: OK" in out

    def test_algorithm_shootout(self):
        out = run_example("algorithm_shootout.py", "--scale", "0.008")
        assert "agree with brute force on every cycle: True" in out
        assert "CPM" in out and "YPK-CNN" in out and "SEA-CNN" in out

    def test_geofencing(self):
        out = run_example("geofencing.py")
        assert "cell scans during the whole stream: 0" in out
        assert "brute-force verification: OK" in out

    def test_drone_airspace(self):
        out = run_example("drone_airspace.py")
        assert "brute-force verification (3D): OK" in out
        assert "sweep 9" in out

    def test_live_dashboard(self):
        out = run_example("live_dashboard.py")
        assert "0 mismatching deltas" in out
        assert "[install]" in out and "[t=0]" in out
        assert "+obj" in out and "-obj" in out

    def test_remote_dashboard(self):
        out = run_example("remote_dashboard.py")
        assert "leaked topics: none" in out
        assert "byte-identical: True" in out
        assert '"t":"delta"' in out

    def test_streaming_feed(self):
        out = run_example("streaming_feed.py")
        assert "offline replay of the recorded stream: MATCHES" in out
        assert "cycle   0" in out
        assert "overruns=" in out

    def test_partition_gallery(self):
        out = run_example("partition_gallery.py")
        assert "Figure 3.1b" in out
        assert out.count("q") >= 1
        assert "+---------+" in out

    def test_examples_directory_complete(self):
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "ride_hailing.py",
            "meeting_point.py",
            "constrained_sector.py",
            "algorithm_shootout.py",
            "geofencing.py",
            "drone_airspace.py",
            "partition_gallery.py",
            "live_dashboard.py",
            "remote_dashboard.py",
            "streaming_feed.py",
        } <= present
