"""Unit tests for repro.grid.grid (the grid index G of Section 3)."""

import math

import pytest

from repro.geometry.rects import Rect
from repro.grid.grid import Grid

from tests.conftest import scatter


class TestConstruction:
    def test_cells_per_axis(self):
        grid = Grid(128)
        assert grid.cols == 128
        assert grid.rows == 128
        assert grid.delta == pytest.approx(1.0 / 128.0)

    def test_delta(self):
        grid = Grid(delta=0.25)
        assert grid.cols == 4
        assert grid.rows == 4

    def test_non_square_workspace(self):
        grid = Grid(delta=0.25, bounds=(0.0, 0.0, 1.0, 0.5))
        assert grid.cols == 4
        assert grid.rows == 2

    def test_both_params_raises(self):
        with pytest.raises(ValueError):
            Grid(8, delta=0.1)

    def test_neither_param_raises(self):
        with pytest.raises(ValueError):
            Grid()

    def test_bad_values(self):
        with pytest.raises(ValueError):
            Grid(0)
        with pytest.raises(ValueError):
            Grid(delta=-0.1)
        with pytest.raises(ValueError):
            Grid(8, bounds=(0, 0, 0, 1))


class TestAddressing:
    def test_cell_of_paper_convention(self):
        # c_{i,j} covers [i*delta, (i+1)*delta) x [j*delta, (j+1)*delta).
        grid = Grid(4)  # delta = 0.25
        assert grid.cell_of(0.0, 0.0) == (0, 0)
        assert grid.cell_of(0.24, 0.24) == (0, 0)
        assert grid.cell_of(0.25, 0.0) == (1, 0)
        assert grid.cell_of(0.0, 0.25) == (0, 1)
        assert grid.cell_of(0.99, 0.99) == (3, 3)

    def test_max_edge_clamps_into_last_cell(self):
        grid = Grid(4)
        assert grid.cell_of(1.0, 1.0) == (3, 3)

    def test_out_of_bounds_clamps(self):
        grid = Grid(4)
        assert grid.cell_of(-0.5, 2.0) == (0, 3)

    def test_offset_workspace(self):
        grid = Grid(delta=1.0, bounds=(10.0, 20.0, 14.0, 24.0))
        assert grid.cell_of(10.5, 23.5) == (0, 3)
        assert grid.cell_of(13.999, 20.0) == (3, 0)

    def test_in_bounds(self):
        grid = Grid(4)
        assert grid.in_bounds(0, 0)
        assert grid.in_bounds(3, 3)
        assert not grid.in_bounds(4, 0)
        assert not grid.in_bounds(0, -1)

    def test_cell_rect(self):
        grid = Grid(4)
        assert grid.cell_rect(1, 2) == pytest.approx((0.25, 0.5, 0.5, 0.75))


class TestMindist:
    def test_query_inside_cell_is_zero(self):
        grid = Grid(4)
        assert grid.mindist(2, 2, (0.6, 0.6)) == 0.0

    def test_axis_distance(self):
        grid = Grid(4)
        # q in cell (0,0), cell (2,0) starts at x=0.5.
        assert grid.mindist(2, 0, (0.1, 0.1)) == pytest.approx(0.4)

    def test_diagonal_distance(self):
        grid = Grid(4)
        # Cell (2,2) corner (0.5, 0.5) is nearest to q=(0.2, 0.1).
        assert grid.mindist(2, 2, (0.2, 0.1)) == pytest.approx(
            math.hypot(0.3, 0.4)
        )

    def test_lower_bound_property(self, small_grid):
        # mindist(c, q) <= dist(p, q) for every object p in the cell.
        q = (0.37, 0.59)
        for i in range(small_grid.cols):
            for j in range(small_grid.rows):
                md = small_grid.mindist(i, j, q)
                for _oid, (x, y) in small_grid.peek(i, j).items():
                    assert md <= math.hypot(x - q[0], y - q[1]) + 1e-12


class TestObjectMaintenance:
    def test_insert_delete_roundtrip(self):
        grid = Grid(8)
        coord = grid.insert(7, 0.3, 0.9)
        assert grid.cell_of(0.3, 0.9) == coord
        assert len(grid) == 1
        assert grid.delete(7, 0.3, 0.9) == coord
        assert len(grid) == 0
        assert grid.occupied_cells == 0

    def test_double_insert_raises(self):
        grid = Grid(8)
        grid.insert(1, 0.5, 0.5)
        with pytest.raises(KeyError):
            grid.insert(1, 0.5, 0.5)

    def test_delete_missing_raises(self):
        grid = Grid(8)
        with pytest.raises(KeyError):
            grid.delete(1, 0.5, 0.5)

    def test_delete_wrong_position_raises(self):
        grid = Grid(8)
        grid.insert(1, 0.1, 0.1)
        with pytest.raises(KeyError):
            grid.delete(1, 0.9, 0.9)

    def test_move_across_cells(self):
        grid = Grid(8)
        grid.insert(1, 0.1, 0.1)
        old, new = grid.move(1, (0.1, 0.1), (0.9, 0.9))
        assert old == (0, 0)
        assert new == (7, 7)
        assert grid.peek(7, 7) == {1: (0.9, 0.9)}
        assert grid.peek(0, 0) == {}

    def test_move_within_cell(self):
        grid = Grid(8)
        grid.insert(1, 0.10, 0.10)
        old, new = grid.move(1, (0.10, 0.10), (0.11, 0.11))
        assert old == new == (0, 0)

    def test_bulk_load(self):
        grid = Grid(8)
        objs = scatter(50, seed=3)
        grid.bulk_load(objs)
        assert len(grid) == 50

    def test_counters(self):
        grid = Grid(8)
        grid.insert(1, 0.5, 0.5)
        grid.move(1, (0.5, 0.5), (0.1, 0.1))
        grid.delete(1, 0.1, 0.1)
        assert grid.stats.inserts == 2
        assert grid.stats.deletes == 2


class TestScanAccounting:
    def test_scan_counts_access(self, small_grid):
        before = small_grid.stats.cell_scans
        small_grid.scan(0, 0)
        assert small_grid.stats.cell_scans == before + 1

    def test_scan_counts_objects(self):
        grid = Grid(2)
        grid.insert(1, 0.1, 0.1)
        grid.insert(2, 0.2, 0.2)
        grid.scan(0, 0)
        assert grid.stats.objects_scanned == 2

    def test_scan_empty_cell(self):
        grid = Grid(2)
        assert grid.scan(1, 1) == {}
        assert grid.stats.cell_scans == 1
        assert grid.stats.objects_scanned == 0

    def test_repeat_scans_count_each_time(self, small_grid):
        # "a cell may be accessed multiple times within a cycle"
        small_grid.stats.reset()
        small_grid.scan(2, 2)
        small_grid.scan(2, 2)
        assert small_grid.stats.cell_scans == 2

    def test_peek_does_not_count(self, small_grid):
        small_grid.stats.reset()
        small_grid.peek(2, 2)
        assert small_grid.stats.cell_scans == 0


class TestCellEnumeration:
    def test_cells_in_rect_full_cover(self):
        grid = Grid(4)
        assert set(grid.cells_in_rect(0.0, 0.0, 1.0, 1.0)) == set(grid.all_cells())

    def test_cells_in_rect_single(self):
        grid = Grid(4)
        assert list(grid.cells_in_rect(0.3, 0.3, 0.3, 0.3)) == [(1, 1)]

    def test_cells_in_rect_clips(self):
        grid = Grid(4)
        cells = set(grid.cells_in_rect(-5.0, -5.0, 0.1, 0.1))
        assert cells == {(0, 0)}

    def test_cells_in_rect_inverted_empty(self):
        grid = Grid(4)
        assert list(grid.cells_in_rect(0.8, 0.8, 0.2, 0.2)) == []

    def test_cells_in_circle_radius_zero(self):
        grid = Grid(4)
        assert set(grid.cells_in_circle((0.3, 0.3), 0.0)) == {(1, 1)}

    def test_cells_in_circle_excludes_far_corners(self):
        grid = Grid(4)
        cells = set(grid.cells_in_circle((0.125, 0.125), 0.3))
        assert (0, 0) in cells
        assert (3, 3) not in cells

    def test_cells_in_circle_matches_mindist_filter(self):
        grid = Grid(8)
        center, radius = (0.4, 0.6), 0.27
        expected = {
            (i, j)
            for i in range(8)
            for j in range(8)
            if grid.mindist(i, j, center) <= radius
        }
        assert set(grid.cells_in_circle(center, radius)) == expected

    def test_negative_radius_empty(self):
        grid = Grid(4)
        assert list(grid.cells_in_circle((0.5, 0.5), -1.0)) == []


class TestMarks:
    def test_add_and_read(self):
        grid = Grid(4)
        grid.add_mark((1, 1), 42)
        assert grid.marks((1, 1)) == {42}
        assert grid.marks((0, 0)) == frozenset()

    def test_add_idempotent(self):
        grid = Grid(4)
        grid.add_mark((1, 1), 42)
        grid.add_mark((1, 1), 42)
        assert grid.total_marks == 1
        assert grid.stats.mark_ops == 1

    def test_remove(self):
        grid = Grid(4)
        grid.add_mark((1, 1), 42)
        grid.remove_mark((1, 1), 42)
        assert grid.marks((1, 1)) == frozenset()
        assert grid.total_marks == 0

    def test_remove_absent_is_noop(self):
        grid = Grid(4)
        grid.remove_mark((1, 1), 42)  # no raise
        assert grid.stats.mark_ops == 0

    def test_multiple_queries_per_cell(self):
        grid = Grid(4)
        grid.add_mark((2, 2), 1)
        grid.add_mark((2, 2), 2)
        assert grid.marks((2, 2)) == {1, 2}

    def test_marked_cells(self):
        grid = Grid(4)
        grid.add_mark((0, 0), 9)
        grid.add_mark((3, 1), 9)
        grid.add_mark((3, 1), 8)
        assert sorted(grid.marked_cells(9)) == [(0, 0), (3, 1)]

    def test_memory_units(self):
        grid = Grid(4)
        grid.insert(1, 0.1, 0.1)
        grid.insert(2, 0.9, 0.9)
        grid.add_mark((0, 0), 7)
        # 3 units per object + 1 per mark (Section 4.1 accounting).
        assert grid.memory_units() == 7


class TestWorkspaceBounds:
    def test_rect_bounds_accepted(self):
        grid = Grid(4, bounds=Rect(0.0, 0.0, 2.0, 2.0))
        assert grid.delta == pytest.approx(0.5)

    def test_objects_in_offset_workspace(self):
        grid = Grid(delta=1.0, bounds=(-2.0, -2.0, 2.0, 2.0))
        coord = grid.insert(1, -1.5, 1.5)
        assert coord == (0, 3)


class TestPackedIdApi:
    """The flat packed-cell-id surface used by the monitoring hot paths."""

    def test_pack_unpack_roundtrip(self):
        grid = Grid(8)
        for i in (0, 3, 7):
            for j in (0, 5, 7):
                assert grid.unpack(grid.pack(i, j)) == (i, j)

    def test_cell_id_matches_cell_of(self):
        grid = Grid(16)
        for x, y in [(0.0, 0.0), (0.999, 0.001), (0.5, 0.5), (1.0, 1.0), (-3.0, 7.0)]:
            assert grid.unpack(grid.cell_id(x, y)) == grid.cell_of(x, y)

    def test_insert_at_and_delete_at_mirror_coordinate_api(self):
        grid = Grid(8)
        cid = grid.cell_id(0.3, 0.7)
        grid.insert_at(cid, 1, (0.3, 0.7))
        assert grid.peek(*grid.unpack(cid)) == {1: (0.3, 0.7)}
        assert len(grid) == 1
        assert grid.occupied_cells == 1
        grid.delete_at(cid, 1)
        assert len(grid) == 0
        assert grid.occupied_cells == 0

    def test_insert_at_duplicate_raises(self):
        grid = Grid(8)
        cid = grid.cell_id(0.5, 0.5)
        grid.insert_at(cid, 1, (0.5, 0.5))
        with pytest.raises(KeyError):
            grid.insert_at(cid, 1, (0.5, 0.5))

    def test_delete_at_missing_raises(self):
        grid = Grid(8)
        with pytest.raises(KeyError):
            grid.delete_at(grid.cell_id(0.5, 0.5), 99)

    def test_relocate_at_counts_as_delete_plus_insert(self):
        grid = Grid(8)
        cid = grid.cell_id(0.51, 0.51)
        grid.insert_at(cid, 1, (0.51, 0.51))
        before_ins, before_del = grid.stats.inserts, grid.stats.deletes
        grid.relocate_at(cid, 1, (0.52, 0.52))
        assert grid.peek(*grid.unpack(cid))[1] == (0.52, 0.52)
        assert grid.stats.inserts == before_ins + 1
        assert grid.stats.deletes == before_del + 1
        assert len(grid) == 1

    def test_relocate_at_missing_raises(self):
        grid = Grid(8)
        with pytest.raises(KeyError):
            grid.relocate_at(grid.cell_id(0.5, 0.5), 1, (0.5, 0.5))

    def test_mark_ids_mirror_coordinate_marks(self):
        grid = Grid(8)
        cid = grid.pack(2, 3)
        grid.add_mark_id(cid, 42)
        assert grid.marks((2, 3)) == {42}
        assert grid.marks_id(cid) == {42}
        assert grid.total_marks == 1
        grid.remove_mark_id(cid, 42)
        assert grid.marks((2, 3)) == frozenset()
        assert grid.total_marks == 0

    def test_add_mark_out_of_bounds_raises(self):
        grid = Grid(8)
        with pytest.raises(ValueError):
            grid.add_mark((8, 0), 1)

    def test_remove_mark_out_of_bounds_is_noop(self):
        grid = Grid(8)
        grid.remove_mark((99, 99), 1)  # no raise
        assert grid.total_marks == 0

    def test_scan_id_charges_a_cell_access(self):
        grid = Grid(8)
        cid = grid.cell_id(0.1, 0.1)
        grid.insert_at(cid, 1, (0.1, 0.1))
        before = grid.stats.cell_scans
        cell = grid.scan_id(cid)
        assert cell == {1: (0.1, 0.1)}
        assert grid.stats.cell_scans == before + 1
        assert grid.stats.objects_scanned >= 1

    def test_emptied_cell_keeps_reusable_container(self):
        """Cells that empty and refill reuse their dict (no realloc churn)."""
        grid = Grid(8)
        cid = grid.cell_id(0.4, 0.4)
        grid.insert_at(cid, 1, (0.4, 0.4))
        grid.delete_at(cid, 1)
        assert grid.occupied_cells == 0
        assert grid.peek(*grid.unpack(cid)) == {}
        grid.insert_at(cid, 2, (0.41, 0.41))
        assert grid.occupied_cells == 1

    def test_sparse_fallback_semantics(self):
        """Grids beyond the dense limit behave identically via the sparse store."""
        from repro.grid import grid as grid_mod

        old_limit = grid_mod._DENSE_LIMIT
        grid_mod._DENSE_LIMIT = 0  # force the sparse store
        try:
            grid = Grid(8)
            assert isinstance(grid._cells, grid_mod._SparseStore)
            coord = grid.insert(1, 0.9, 0.9)
            assert grid.peek(*coord) == {1: (0.9, 0.9)}
            grid.add_mark(coord, 5)
            assert grid.marked_cells(5) == [coord]
            assert grid.total_marks == 1
            grid.delete(1, 0.9, 0.9)
            grid.remove_mark(coord, 5)
            assert len(grid) == 0
            assert grid.occupied_cells == 0
            assert grid.total_marks == 0
        finally:
            grid_mod._DENSE_LIMIT = old_limit
