"""The paper's worked examples, reconstructed exactly.

Figure 3.2a walks through a 1-NN computation on a grid with ``δ = 1``:
the query q sits in cell c_{4,4} with initial heap
``H = {<c_44, 0>, <U0, 0.1>, <L0, 0.2>, <R0, 0.8>, <D0, 0.9>}``;
the first candidate is p1 in c_{3,3} at distance 1.7, then p2 in c_{2,4}
at distance 1.3 becomes the answer, and the search terminates at c_{5,6}
because ``mindist(c_56, q) >= best_dist``.

From the strip keys we can reconstruct the query point: the U0 gap of 0.1
puts q at y = 4.9, the L0 gap of 0.2 at x = 4.2.  Object positions are
chosen to produce the paper's distances (1.7 and 1.3).
"""

import math

import pytest

from repro.core.cpm import CPMMonitor
from repro.core.partition import DOWN, LEFT, RIGHT, UP
from repro.core.strategies import PointNNStrategy

# An 8x8 grid with delta = 1 over [0, 8]^2 contains all referenced cells.
GRID_CELLS = 8
BOUNDS = (0.0, 0.0, 8.0, 8.0)

QX, QY = 4.2, 4.9
# p1 in c_{3,3} at distance 1.7 from q: place it along the line to the
# cell so the arithmetic is exact enough.
P1 = (3.2, 3.53)   # dist ~ 1.69... close to the paper's 1.7
P2 = (2.9, 4.9)    # in c_{2,4}, dist = 1.3 exactly


@pytest.fixture
def monitor():
    m = CPMMonitor(cells_per_axis=GRID_CELLS, bounds=BOUNDS)
    m.load_objects([(1, P1), (2, P2)])
    return m


class TestFigure32a:
    def test_initial_strip_keys(self, monitor):
        strategy = PointNNStrategy(QX, QY)
        partition = strategy.partition(monitor.grid)
        keys = {
            UP: strategy.strip_key0(monitor.grid, partition, UP),
            LEFT: strategy.strip_key0(monitor.grid, partition, LEFT),
            RIGHT: strategy.strip_key0(monitor.grid, partition, RIGHT),
            DOWN: strategy.strip_key0(monitor.grid, partition, DOWN),
        }
        # The paper's heap: U0=0.1, L0=0.2, R0=0.8, D0=0.9.
        assert keys[UP] == pytest.approx(0.1)
        assert keys[LEFT] == pytest.approx(0.2)
        assert keys[RIGHT] == pytest.approx(0.8)
        assert keys[DOWN] == pytest.approx(0.9)
        # And the query cell is c_{4,4} with key 0.
        assert monitor.grid.cell_of(QX, QY) == (4, 4)
        assert strategy.cell_key(monitor.grid, 4, 4) == 0.0

    def test_search_returns_p2(self, monitor):
        result = monitor.install_query(0, (QX, QY), 1)
        assert result[0][1] == 2
        assert result[0][0] == pytest.approx(1.3)

    def test_candidate_p1_found_first_then_replaced(self, monitor):
        """c_{3,3} (key ~1.03) is de-heaped before c_{2,4} (key 1.2): the
        visit list must contain both, in that order."""
        monitor.install_query(0, (QX, QY), 1)
        visit = monitor.query_state(0).visit_cells
        assert visit.index((3, 3)) < visit.index((2, 4))

    def test_termination_cell_not_processed(self, monitor):
        """mindist(c_56, q) = hypot(0.8, 1.1) ~ 1.36 >= best_dist = 1.3:
        the search stops without scanning c_{5,6}."""
        expected_c56 = math.hypot(5.0 - QX, 6.0 - QY)
        assert expected_c56 > 1.3
        monitor.install_query(0, (QX, QY), 1)
        assert (5, 6) not in set(monitor.query_state(0).visit_cells)

    def test_visited_cells_lie_within_best_dist(self, monitor):
        monitor.install_query(0, (QX, QY), 1)
        for key in monitor.query_state(0).visit_keys:
            assert key < 1.3 + 1e-9

    def test_boundary_boxes_remain_in_heap(self, monitor):
        """After the search the heap keeps one boundary box per direction
        (U2, D1, L2, R1 in the paper's example)."""
        monitor.install_query(0, (QX, QY), 1)
        heap = monitor.query_state(0).heap
        rect_entries = [e for e in heap.entries() if e[2] == 1]
        directions = {e[3] for e in rect_entries}
        assert directions == {UP, DOWN, LEFT, RIGHT}
        levels = {e[3]: e[4] for e in rect_entries}
        assert levels[UP] == 2
        assert levels[DOWN] == 1
        assert levels[LEFT] == 2
        assert levels[RIGHT] == 1


class TestFigure35UpdateExamples:
    """Figure 3.5: update handling around the same configuration."""

    def test_update_outside_influence_region_is_free(self, monitor):
        # Like p4 -> p'4 in Figure 3.5a: an object moves between two cells
        # outside the influence region; nothing happens.
        monitor.load_objects = None  # guard against accidental use
        m = CPMMonitor(cells_per_axis=GRID_CELLS, bounds=BOUNDS)
        m.load_objects([(1, P1), (2, P2), (4, (5.5, 6.5))])
        m.install_query(0, (QX, QY), 1)
        m.reset_stats()
        from repro.updates import move_update

        changed = m.process([move_update(4, (5.5, 6.5), (5.5, 3.5))])
        assert changed == set()
        assert m.stats.cell_scans == 0
        assert m.result(0)[0][1] == 2

    def test_outgoing_nn_triggers_recomputation(self):
        # Like p2 -> p'2 in Figure 3.5b: the NN leaves; recomputation finds
        # the next object.
        m = CPMMonitor(cells_per_axis=GRID_CELLS, bounds=BOUNDS)
        m.load_objects([(1, P1), (2, P2), (4, (5.5, 3.5))])
        m.install_query(0, (QX, QY), 1)
        assert m.result(0)[0][1] == 2
        from repro.updates import move_update

        m.process([move_update(2, P2, (0.5, 6.5))])
        # New NN is p1 (dist ~1.69) not p4 (dist ~1.9).
        assert m.result(0)[0][1] == 1
