"""Property-based tests for continuous range monitoring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.range_monitor import GridRangeMonitor
from repro.geometry.rects import Rect
from repro.updates import ObjectUpdate

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
point = st.tuples(coord, coord)


@st.composite
def rect_strategy(draw):
    x0 = draw(st.floats(min_value=0.0, max_value=0.9))
    y0 = draw(st.floats(min_value=0.0, max_value=0.9))
    w = draw(st.floats(min_value=0.0, max_value=1.0 - x0))
    h = draw(st.floats(min_value=0.0, max_value=1.0 - y0))
    return Rect(x0, y0, x0 + w, y0 + h)


@st.composite
def range_scripts(draw):
    n_initial = draw(st.integers(min_value=0, max_value=20))
    initial = {oid: draw(point) for oid in range(n_initial)}
    n_batches = draw(st.integers(min_value=1, max_value=5))
    batches = []
    alive = set(initial)
    next_oid = n_initial
    for _ in range(n_batches):
        events = []
        used = set()
        for _ in range(draw(st.integers(min_value=0, max_value=7))):
            kind = draw(st.sampled_from(["move", "appear", "disappear"]))
            if kind == "move" and alive - used:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("move", oid, draw(point)))
                used.add(oid)
            elif kind == "disappear" and alive - used:
                oid = draw(st.sampled_from(sorted(alive - used)))
                events.append(("disappear", oid, None))
                used.add(oid)
                alive.discard(oid)
            else:
                events.append(("appear", next_oid, draw(point)))
                alive.add(next_oid)
                used.add(next_oid)
                next_oid += 1
        batches.append(events)
    return initial, batches


@given(
    range_scripts(),
    st.lists(rect_strategy(), min_size=1, max_size=3),
    st.integers(min_value=2, max_value=10),
)
@settings(max_examples=120, deadline=None)
def test_range_results_match_brute_force(script, rects, cells):
    initial, batches = script
    monitor = GridRangeMonitor(cells_per_axis=cells)
    monitor.load_objects(initial.items())
    positions = dict(initial)
    for qid, rect in enumerate(rects):
        got = monitor.install_range_query(qid, rect)
        want = {o for o, p in positions.items() if rect.contains_point(*p)}
        assert got == want
    for events in batches:
        updates = []
        for kind, oid, new in events:
            if kind == "move":
                updates.append(ObjectUpdate(oid, positions[oid], new))
                positions[oid] = new
            elif kind == "appear":
                updates.append(ObjectUpdate(oid, None, new))
                positions[oid] = new
            else:
                updates.append(ObjectUpdate(oid, positions.pop(oid), None))
        monitor.process(updates)
        for qid, rect in enumerate(rects):
            want = {o for o, p in positions.items() if rect.contains_point(*p)}
            assert monitor.result(qid) == want


@given(range_scripts(), rect_strategy())
@settings(max_examples=60, deadline=None)
def test_range_monitoring_never_scans(script, rect):
    """The defining property: range maintenance is scan-free."""
    initial, batches = script
    monitor = GridRangeMonitor(cells_per_axis=6)
    monitor.load_objects(initial.items())
    positions = dict(initial)
    monitor.install_range_query(0, rect)
    monitor.reset_stats()
    for events in batches:
        updates = []
        for kind, oid, new in events:
            if kind == "move":
                updates.append(ObjectUpdate(oid, positions[oid], new))
                positions[oid] = new
            elif kind == "appear":
                updates.append(ObjectUpdate(oid, None, new))
                positions[oid] = new
            else:
                updates.append(ObjectUpdate(oid, positions.pop(oid), None))
        monitor.process(updates)
    assert monitor.stats.cell_scans == 0
