"""Wire-protocol tests: round-trip identity for every frame type,
canonical re-encoding, and version/type rejection."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.api import wire
from repro.api.queries import (
    ConstrainedKnnSpec,
    FilteredKnnSpec,
    KnnSpec,
    RangeSpec,
)
from repro.service.deltas import ResultDelta
from repro.updates import ObjectUpdate, QueryUpdate, QueryUpdateKind

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.tuples(finite, finite)
oids = st.integers(min_value=0, max_value=2**40)
entries = st.lists(
    st.tuples(st.floats(min_value=0, max_value=1e6, allow_nan=False), oids),
    max_size=6,
).map(tuple)

object_updates = st.one_of(
    st.builds(ObjectUpdate, oids, points, points),          # move
    st.builds(ObjectUpdate, oids, st.none(), points),       # appear
    st.builds(ObjectUpdate, oids, points, st.none()),       # disappear
)

query_updates = st.one_of(
    st.builds(
        QueryUpdate,
        oids,
        st.sampled_from([QueryUpdateKind.INSERT, QueryUpdateKind.MOVE]),
        points,
        st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
    ),
    st.builds(QueryUpdate, oids, st.just(QueryUpdateKind.TERMINATE)),
)

deltas = st.builds(
    ResultDelta,
    qid=oids,
    incoming=entries,
    outgoing=entries,
    reordered=st.booleans(),
    result=entries,
    terminated=st.booleans(),
)

tags = st.lists(
    st.text(min_size=1, max_size=8), min_size=0, max_size=3
).map(tuple)
nonempty_tags = st.lists(
    st.text(min_size=1, max_size=8), min_size=1, max_size=3
).map(tuple)

specs = st.one_of(
    st.builds(KnnSpec, point=points, k=st.integers(min_value=1, max_value=64)),
    st.builds(
        FilteredKnnSpec,
        point=points,
        k=st.integers(min_value=1, max_value=64),
        tags=nonempty_tags,
        region=st.one_of(
            st.none(),
            st.tuples(finite, finite, finite, finite).map(
                lambda t: (min(t[0], t[2]), min(t[1], t[3]),
                           max(t[0], t[2]), max(t[1], t[3]))
            ),
        ),
    ),
    st.builds(
        ConstrainedKnnSpec,
        point=points,
        region=st.tuples(finite, finite, finite, finite).map(
            lambda t: (min(t[0], t[2]), min(t[1], t[3]),
                       max(t[0], t[2]), max(t[1], t[3]))
        ),
        k=st.integers(min_value=1, max_value=64),
    ),
    st.builds(
        RangeSpec,
        region=st.tuples(finite, finite, finite, finite).map(
            lambda t: (min(t[0], t[2]), min(t[1], t[3]),
                       max(t[0], t[2]), max(t[1], t[3]))
        ),
    ),
)

timestamps = st.one_of(st.none(), st.integers(min_value=0, max_value=2**40))

# Telemetry values keep their JSON number type (a counter stays int);
# mixing both shapes here is what pins that through the round trip.
metric_values = st.one_of(
    st.integers(min_value=0, max_value=2**40),
    st.floats(min_value=0, max_value=1e9, allow_nan=False),
)
metric_rows = st.lists(
    st.tuples(st.text(min_size=1, max_size=30), metric_values), max_size=6
).map(tuple)
wall_clock = st.floats(min_value=0, max_value=2e9, allow_nan=False)

frames = st.one_of(
    st.builds(wire.Hello, client=st.text(max_size=20)),
    st.builds(
        wire.Welcome,
        server=st.text(max_size=20),
        versions=st.lists(
            st.integers(min_value=1, max_value=9), min_size=1, max_size=3
        ).map(tuple),
    ),
    st.builds(wire.Updates, updates=st.lists(object_updates, max_size=5).map(tuple)),
    st.builds(wire.QueryOp, update=query_updates),
    st.builds(wire.Tick, timestamp=timestamps),
    st.builds(
        wire.Ticked,
        timestamp=timestamps,
        changed=st.lists(oids, max_size=5).map(tuple),
    ),
    st.builds(
        wire.Register,
        spec=specs,
        qid=st.one_of(st.none(), oids),
        watch=st.booleans(),
    ),
    st.builds(wire.Registered, qid=oids, result=entries),
    st.builds(wire.Move, qid=oids, point=points),
    st.builds(wire.Terminate, qid=oids),
    st.builds(wire.GetSnapshot, qid=oids),
    st.builds(wire.Snapshot, qid=oids, result=entries),
    st.builds(wire.Subscribe, qid=oids, include_unchanged=st.booleans()),
    st.builds(wire.Unsubscribe, qid=oids),
    st.builds(wire.Delta, timestamp=timestamps, delta=deltas),
    st.builds(wire.Tags, rows=st.lists(st.tuples(oids, tags), max_size=4).map(tuple)),
    st.builds(wire.Sync, objects=st.booleans(), watch=st.booleans()),
    st.builds(
        wire.SyncObjects,
        rows=st.lists(
            st.tuples(oids, points, st.one_of(st.none(), tags)), max_size=4
        ).map(tuple),
    ),
    st.builds(wire.SyncQuery, qid=oids, spec=specs, result=entries),
    st.builds(
        wire.SyncDone,
        queries=st.integers(min_value=0, max_value=2**20),
        objects=st.integers(min_value=0, max_value=2**20),
    ),
    st.builds(wire.Lagged, dropped=st.integers(min_value=1, max_value=2**20)),
    st.builds(
        wire.WatchMetrics,
        interval_ms=st.integers(min_value=0, max_value=60_000),
        alerts=st.booleans(),
    ),
    st.builds(wire.Metrics, timestamp=wall_clock, rows=metric_rows),
    st.builds(
        wire.Alert,
        level=st.sampled_from(["soft", "hard"]),
        rule=st.text(min_size=1, max_size=20),
        message=st.text(max_size=60),
        value=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        cycle=st.integers(min_value=0, max_value=2**40),
        timestamp=wall_clock,
    ),
    st.builds(wire.Ok, op=st.sampled_from(["subscribe", "terminate"]),
              qid=st.one_of(st.none(), oids)),
    st.builds(wire.Error, message=st.text(max_size=40)),
    st.builds(wire.Bye),
)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------


class TestRoundTrip:
    @given(frames)
    def test_decode_encode_identity(self, frame):
        """encode -> decode reproduces the frame object exactly."""
        line = wire.encode_frame(frame)
        assert wire.decode_frame(line) == frame

    @given(frames)
    def test_encoding_is_canonical(self, frame):
        """decode -> encode reproduces the line byte for byte (what makes
        delta streams comparable across process boundaries)."""
        line = wire.encode_frame(frame)
        assert wire.encode_frame(wire.decode_frame(line)) == line

    @given(frames)
    def test_one_line_ndjson(self, frame):
        line = wire.encode_frame(frame)
        assert "\n" not in line
        obj = json.loads(line)
        assert obj["v"] == wire.WIRE_VERSION
        assert isinstance(obj["t"], str)

    @given(frames)
    def test_bytes_accepted(self, frame):
        line = wire.encode_frame(frame)
        assert wire.decode_frame(line.encode("utf-8")) == frame

    def test_every_frame_type_covered(self):
        """One hand-built example per frame type round-trips, and the
        example list covers the full :data:`wire.Frame` union."""
        import typing

        examples = [
            wire.Hello(client="c"),
            wire.Welcome(server="s", versions=(1,)),
            wire.Updates(updates=(ObjectUpdate(1, None, (0.5, 0.5)),)),
            wire.QueryOp(update=QueryUpdate(2, QueryUpdateKind.TERMINATE)),
            wire.Tick(timestamp=None),
            wire.Ticked(timestamp=4, changed=(1, 2)),
            wire.Register(spec=KnnSpec(point=(0.1, 0.2), k=3), qid=None),
            wire.Registered(qid=9, result=((0.5, 1),)),
            wire.Move(qid=9, point=(0.3, 0.4)),
            wire.Terminate(qid=9),
            wire.GetSnapshot(qid=9),
            wire.Snapshot(qid=9, result=()),
            wire.Subscribe(qid=9, include_unchanged=True),
            wire.Unsubscribe(qid=9),
            wire.Delta(
                timestamp=None,
                delta=ResultDelta(9, (), (), False, (), terminated=True),
            ),
            wire.Tags(rows=((1, ("taxi",)), (2, ()))),
            wire.Sync(objects=True, watch=False),
            wire.SyncObjects(rows=((1, (0.5, 0.5), ("taxi",)), (2, (0.1, 0.2), None))),
            wire.SyncQuery(
                qid=9,
                spec=FilteredKnnSpec(point=(0.1, 0.2), k=2, tags=("taxi",)),
                result=((0.5, 1),),
            ),
            wire.SyncDone(queries=1, objects=2),
            wire.Lagged(dropped=7),
            wire.WatchMetrics(interval_ms=500, alerts=True),
            wire.Metrics(
                timestamp=12.5,
                rows=(("repro_ticks_total", 42), ("repro_depth", 0.5)),
            ),
            wire.Alert(
                level="soft",
                rule="drop_rate_spike",
                message="buffer dropped 25.0% of offered events",
                value=0.25,
                cycle=17,
                timestamp=12.5,
            ),
            wire.Ok(op="subscribe", qid=9),
            wire.Error(message="boom"),
            wire.Bye(),
        ]
        assert {type(f) for f in examples} == set(typing.get_args(wire.Frame))
        for frame in examples:
            assert wire.decode_frame(wire.encode_frame(frame)) == frame


class TestDeltaFrames:
    def test_delta_encoding_shape(self):
        delta = ResultDelta(
            qid=7,
            incoming=((0.5, 3),),
            outgoing=((0.25, 9),),
            reordered=True,
            result=((0.5, 3), (0.75, 4)),
            terminated=False,
        )
        obj = json.loads(wire.encode_delta(11, delta))
        assert obj == {
            "v": 3,
            "t": "delta",
            "ts": 11,
            "qid": 7,
            "in": [[0.5, 3]],
            "out": [[0.25, 9]],
            "reordered": True,
            "result": [[0.5, 3], [0.75, 4]],
            "terminated": False,
        }

    def test_install_delta_has_null_timestamp(self):
        delta = ResultDelta(
            qid=1, incoming=(), outgoing=(), reordered=False, result=(),
            terminated=True,
        )
        obj = json.loads(wire.encode_delta(None, delta))
        assert obj["ts"] is None


# ----------------------------------------------------------------------
# Rejection
# ----------------------------------------------------------------------


class TestRejection:
    def test_unknown_version_rejected(self):
        line = wire.encode_frame(wire.Tick(timestamp=3)).replace(
            '"v":3', '"v":4', 1
        )
        with pytest.raises(wire.WireError, match="unsupported wire version"):
            wire.decode_frame(line)

    def test_v1_frames_still_decode(self):
        """v2/v3 are additive: a v1 line from an old peer still decodes."""
        line = wire.encode_frame(wire.Tick(timestamp=3)).replace(
            '"v":3', '"v":1', 1
        )
        assert wire.decode_frame(line) == wire.Tick(timestamp=3)

    def test_v2_frames_still_decode(self):
        """v3 is additive: a v2 line (pub/sub era) still decodes."""
        line = wire.encode_frame(wire.Sync(objects=True, watch=False)).replace(
            '"v":3', '"v":2', 1
        )
        assert wire.decode_frame(line) == wire.Sync(objects=True, watch=False)

    def test_v4_telemetry_frames_rejected(self):
        """The new frames obey the same version gate as everything else."""
        frame = wire.Metrics(timestamp=1.5, rows=(("repro_ticks_total", 3),))
        line = wire.encode_frame(frame).replace('"v":3', '"v":4', 1)
        with pytest.raises(wire.WireError, match="unsupported wire version"):
            wire.decode_frame(line)

    def test_metrics_values_keep_number_type(self):
        """Int counters stay int through decode → canonical re-encode."""
        line = '{"v":3,"t":"metrics","ts":1.5,"rows":[["a",7],["b",0.5]]}'
        frame = wire.decode_frame(line)
        assert frame.rows == (("a", 7), ("b", 0.5))
        assert type(frame.rows[0][1]) is int
        assert type(frame.rows[1][1]) is float
        assert wire.encode_frame(frame) == line

    def test_missing_version_rejected(self):
        with pytest.raises(wire.WireError, match="unsupported wire version"):
            wire.decode_frame('{"t":"tick","ts":0}')

    @given(frames)
    def test_future_version_rejected_for_every_frame(self, frame):
        obj = json.loads(wire.encode_frame(frame))
        obj["v"] = 99
        with pytest.raises(wire.WireError, match="unsupported wire version"):
            wire.decode_frame(json.dumps(obj))

    def test_unknown_type_rejected(self):
        with pytest.raises(wire.WireError, match="unknown frame type"):
            wire.decode_frame('{"v":1,"t":"frobnicate"}')

    def test_malformed_json_rejected(self):
        with pytest.raises(wire.WireError, match="malformed frame"):
            wire.decode_frame("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(wire.WireError, match="not an object"):
            wire.decode_frame("[1,2,3]")

    def test_bad_shape_rejected(self):
        with pytest.raises(wire.WireError, match="bad 'move' frame"):
            wire.decode_frame('{"v":1,"t":"move","qid":1}')

    def test_unknown_spec_type_rejected(self):
        with pytest.raises(wire.WireError, match="bad 'register' frame"):
            wire.decode_frame(
                '{"v":1,"t":"register","spec":{"type":"voronoi"},"qid":null,'
                '"watch":true}'
            )
