"""Unit tests for repro.geometry.rects."""

import math

import pytest

from repro.geometry.rects import Rect, mindist_point_rect, rects_intersect


class TestMindistPointRect:
    def test_inside_is_zero(self):
        assert mindist_point_rect(0.5, 0.5, 0.0, 0.0, 1.0, 1.0) == 0.0

    def test_on_border_is_zero(self):
        assert mindist_point_rect(0.0, 0.5, 0.0, 0.0, 1.0, 1.0) == 0.0
        assert mindist_point_rect(1.0, 1.0, 0.0, 0.0, 1.0, 1.0) == 0.0

    def test_left_of(self):
        assert mindist_point_rect(-0.5, 0.5, 0.0, 0.0, 1.0, 1.0) == 0.5

    def test_right_of(self):
        assert mindist_point_rect(1.7, 0.5, 0.0, 0.0, 1.0, 1.0) == pytest.approx(0.7)

    def test_above(self):
        assert mindist_point_rect(0.5, 2.0, 0.0, 0.0, 1.0, 1.0) == 1.0

    def test_below(self):
        assert mindist_point_rect(0.5, -0.25, 0.0, 0.0, 1.0, 1.0) == 0.25

    def test_diagonal_corner(self):
        assert mindist_point_rect(-3.0, -4.0, 0.0, 0.0, 1.0, 1.0) == 5.0

    def test_degenerate_point_rect(self):
        assert mindist_point_rect(1.0, 1.0, 0.5, 0.5, 0.5, 0.5) == pytest.approx(
            math.sqrt(0.5)
        )

    def test_is_lower_bound_for_interior_points(self):
        # mindist must never exceed the distance to any point of the rect.
        import random

        rng = random.Random(5)
        for _ in range(100):
            px, py = rng.uniform(-2, 2), rng.uniform(-2, 2)
            x0, y0 = rng.uniform(-1, 1), rng.uniform(-1, 1)
            x1, y1 = x0 + rng.uniform(0, 1), y0 + rng.uniform(0, 1)
            md = mindist_point_rect(px, py, x0, y0, x1, y1)
            for _ in range(10):
                ix = rng.uniform(x0, x1)
                iy = rng.uniform(y0, y1)
                assert md <= math.hypot(px - ix, py - iy) + 1e-12


class TestRectsIntersect:
    def test_overlapping(self):
        assert rects_intersect(0, 0, 1, 1, 0.5, 0.5, 1.5, 1.5)

    def test_touching_edge_counts(self):
        assert rects_intersect(0, 0, 1, 1, 1.0, 0.0, 2.0, 1.0)

    def test_touching_corner_counts(self):
        assert rects_intersect(0, 0, 1, 1, 1.0, 1.0, 2.0, 2.0)

    def test_disjoint_x(self):
        assert not rects_intersect(0, 0, 1, 1, 1.1, 0, 2, 1)

    def test_disjoint_y(self):
        assert not rects_intersect(0, 0, 1, 1, 0, 1.1, 1, 2)

    def test_containment(self):
        assert rects_intersect(0, 0, 1, 1, 0.25, 0.25, 0.75, 0.75)


class TestRect:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_zero_area_allowed(self):
        r = Rect(0.5, 0.5, 0.5, 0.5)
        assert r.area == 0.0

    def test_properties(self):
        r = Rect(0.0, 0.0, 2.0, 1.0)
        assert r.width == 2.0
        assert r.height == 1.0
        assert r.area == 2.0
        assert r.center == (1.0, 0.5)

    def test_corners(self):
        r = Rect(0.0, 0.0, 1.0, 2.0)
        assert set(r.corners) == {(0.0, 0.0), (1.0, 0.0), (1.0, 2.0), (0.0, 2.0)}

    def test_bounding(self):
        r = Rect.bounding([(0.2, 0.9), (0.5, 0.1), (0.8, 0.4)])
        assert (r.x0, r.y0, r.x1, r.y1) == (0.2, 0.1, 0.8, 0.9)

    def test_bounding_single_point(self):
        r = Rect.bounding([(0.3, 0.4)])
        assert r.area == 0.0
        assert r.center == (0.3, 0.4)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_contains_point(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.contains_point(0.5, 0.5)
        assert r.contains_point(0.0, 1.0)  # border inclusive
        assert not r.contains_point(1.01, 0.5)

    def test_contains_rect(self):
        outer = Rect(0.0, 0.0, 1.0, 1.0)
        assert outer.contains_rect(Rect(0.1, 0.1, 0.9, 0.9))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(0.5, 0.5, 1.5, 0.9))

    def test_intersects(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        assert a.intersects(Rect(0.9, 0.9, 2.0, 2.0))
        assert not a.intersects(Rect(1.5, 1.5, 2.0, 2.0))

    def test_mindist(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.mindist((0.5, 0.5)) == 0.0
        assert r.mindist((2.0, 0.5)) == 1.0

    def test_clamp(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.clamp(-1.0, 0.5) == (0.0, 0.5)
        assert r.clamp(0.5, 5.0) == (0.5, 1.0)
        assert r.clamp(0.2, 0.3) == (0.2, 0.3)

    def test_expanded(self):
        r = Rect(0.2, 0.2, 0.8, 0.8).expanded(0.1)
        assert (r.x0, r.y0, r.x1, r.y1) == pytest.approx((0.1, 0.1, 0.9, 0.9))
