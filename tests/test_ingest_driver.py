"""End-to-end tests of the ingest driver (feed -> buffer -> batcher ->
service), including the back-pressure acceptance property: a feed that
outruns the cycle budget coalesces/drops, and an offline replay of the
recorded (coalesced) stream reproduces the exact end state."""

from repro.core.cpm import CPMMonitor
from repro.ingest import (
    BackPressurePolicy,
    GeneratorFeed,
    IngestBuffer,
    IngestDriver,
    ThreadedFeedPump,
    WorkloadFeed,
)
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.workload import WorkloadSpec
from repro.service.service import MonitoringService, TickReport

SPEC = WorkloadSpec(
    n_objects=120,
    n_queries=6,
    k=3,
    timestamps=8,
    seed=31,
    object_speed="fast",
    query_agility=0.4,
)


def _fresh_service(cells: int = 8) -> MonitoringService:
    return MonitoringService(CPMMonitor(cells_per_axis=cells))


def _reference_monitor(workload, cells: int = 8) -> CPMMonitor:
    monitor = CPMMonitor(cells_per_axis=cells)
    monitor.load_objects(sorted(workload.initial_objects.items()))
    for qid, point in sorted(workload.initial_queries.items()):
        monitor.install_query(qid, point, SPEC.k)
    for batch in workload.batches:
        monitor.process(batch.object_updates, batch.query_updates)
    return monitor


class TestMarkHonoringReplay:
    def test_driver_replay_is_byte_identical_to_direct_replay(self):
        """Mark-honoring flat-path ingestion == plain replay: same
        results, same changed counts, same deterministic counters."""
        workload = BrinkhoffGenerator(SPEC).generate()
        reference = _reference_monitor(workload)

        service = _fresh_service()
        driver = IngestDriver(WorkloadFeed(workload), service)
        driver.prime(k=SPEC.k)
        report = driver.run()

        assert report.n_cycles == len(workload.batches)
        assert [c.timestamp for c in report.cycles] == [
            b.timestamp for b in workload.batches
        ]
        assert all(c.trigger == "mark" for c in report.cycles)
        assert service.monitor.result_table() == reference.result_table()
        ref_stats = reference.stats
        got_stats = service.monitor.stats
        for field in ("cell_scans", "objects_scanned", "inserts", "deletes", "mark_ops"):
            assert getattr(got_stats, field) == getattr(ref_stats, field), field
        # An exact replay coalesces and drops nothing.
        assert report.total_coalesced == 0
        assert report.total_dropped == 0
        assert report.total_applied == workload.total_object_updates
        # A plain engine has no cross-partition traffic to report.
        assert report.partition is None

    def test_partitioned_service_reports_traffic_counters(self):
        """Driving a PartitionedMonitor fills IngestReport.partition
        with the cross-partition traffic counters at the identical end
        state."""
        from repro.service.partition import PartitionedMonitor

        workload = BrinkhoffGenerator(SPEC).generate()
        reference = _reference_monitor(workload)

        monitor = PartitionedMonitor(4, cells_per_axis=8)
        service = MonitoringService(monitor)
        driver = IngestDriver(WorkloadFeed(workload), service)
        driver.prime(k=SPEC.k)
        try:
            report = driver.run()
            table = service.monitor.result_table()
        finally:
            monitor.close()

        assert table == reference.result_table()
        assert report.partition is not None
        assert report.partition["cycles"] == len(workload.batches)
        assert report.partition["fanout_rows"] > 0
        for key in ("sync_rows", "pulls", "pull_objects", "migrations"):
            assert report.partition[key] >= 0

    def test_row_path_driver_matches_flat_path_driver(self):
        workload = BrinkhoffGenerator(SPEC).generate()
        flat_service = _fresh_service()
        flat_driver = IngestDriver(WorkloadFeed(workload), flat_service, flat=True)
        flat_driver.prime(k=SPEC.k)
        flat_driver.run()

        row_service = _fresh_service()
        row_driver = IngestDriver(WorkloadFeed(workload), row_service, flat=False)
        row_driver.prime(k=SPEC.k)
        row_driver.run()

        assert flat_service.monitor.result_table() == row_service.monitor.result_table()
        for field in ("cell_scans", "objects_scanned", "inserts", "deletes"):
            assert getattr(flat_service.monitor.stats, field) == getattr(
                row_service.monitor.stats, field
            ), field

    def test_max_cycles_caps_the_run(self):
        workload = BrinkhoffGenerator(SPEC).generate()
        service = _fresh_service()
        driver = IngestDriver(WorkloadFeed(workload), service)
        driver.prime(k=SPEC.k)
        report = driver.run(max_cycles=3)
        assert report.n_cycles == 3


class TestRecutCycles:
    def test_size_trigger_recuts_but_preserves_end_state(self):
        """Ignoring marks and cutting every 40 objects re-shapes the
        cycles; the end-of-run state must still match the direct replay
        (the batcher re-bases every move off applied positions)."""
        workload = BrinkhoffGenerator(SPEC).generate()
        reference = _reference_monitor(workload)
        service = _fresh_service()
        driver = IngestDriver(
            WorkloadFeed(workload), service, honor_marks=False, max_batch=40
        )
        driver.prime(k=SPEC.k)
        report = driver.run()
        assert any(c.trigger == "size" for c in report.cycles)
        assert service.monitor.result_table() == reference.result_table()
        assert service.monitor.object_count == reference.object_count

    def test_deadline_trigger_with_fake_clock(self):
        """A virtual clock that advances one tick per reading makes the
        deadline trigger fire deterministically.  At 6ms per reading and
        a 10ms deadline, the post-trigger bookkeeping alone (several
        clock reads) exceeds a further full period, so the overrun
        accounting must flag deadline-triggered cycles too."""
        workload = BrinkhoffGenerator(SPEC).generate()
        ticks = iter(range(10_000_000))
        clock = lambda: next(ticks) * 0.006  # noqa: E731 - tiny test stub
        service = _fresh_service()
        driver = IngestDriver(
            WorkloadFeed(workload),
            service,
            honor_marks=False,
            cycle_deadline=0.01,
            clock=clock,
        )
        driver.prime(k=SPEC.k)
        report = driver.run()
        assert any(c.trigger == "deadline" for c in report.cycles)
        assert report.deadline_overruns >= 1
        reference = _reference_monitor(workload)
        assert service.monitor.result_table() == reference.result_table()

    def test_early_triggered_cycles_are_not_flagged_overrun_when_fast(self):
        """Mark-honoring cycles close long before a generous deadline:
        none may be flagged as overruns."""
        workload = BrinkhoffGenerator(SPEC).generate()
        service = _fresh_service()
        driver = IngestDriver(WorkloadFeed(workload), service, cycle_deadline=60.0)
        driver.prime(k=SPEC.k)
        report = driver.run()
        assert all(c.trigger == "mark" for c in report.cycles)
        assert report.deadline_overruns == 0


class TestBackPressure:
    def test_overrunning_feed_coalesces_and_replays_consistently(self):
        """The acceptance criterion: a producer thread outrunning the
        consumer's budget forces coalescing/drops, and replaying the
        recorded coalesced stream offline reproduces the end state."""
        spec = WorkloadSpec(
            n_objects=150,
            n_queries=4,
            k=3,
            timestamps=25,
            seed=5,
            object_speed="fast",
            object_agility=1.0,
            query_agility=0.0,
        )
        feed = GeneratorFeed(spec, timestamps=spec.timestamps)
        buffer = IngestBuffer(capacity=16, policy=BackPressurePolicy.DROP_OLDEST)
        service = _fresh_service()
        driver = IngestDriver(
            feed,
            service,
            buffer=buffer,
            max_batch=12,
            honor_marks=False,
            record=True,
        )
        driver.prime(k=spec.k)
        pump = ThreadedFeedPump(feed, buffer).start()
        report = driver.run(from_buffer=True)
        pump.stop()

        # The pump pushes far faster than one drain per 12 objects can
        # keep up with: back-pressure must have engaged.
        assert report.total_coalesced + report.total_dropped > 0

        # Offline replay of the recorded stream == the live end state.
        offline = CPMMonitor(cells_per_axis=8)
        offline.load_objects(sorted(feed.initial_objects().items()))
        for qid, point in sorted(feed.initial_queries().items()):
            offline.install_query(qid, point, spec.k)
        for batch in driver.recorded:
            offline.process_flat(batch)
        assert offline.result_table() == service.monitor.result_table()
        assert offline.object_count == service.monitor.object_count

    def test_block_policy_applies_real_back_pressure(self):
        spec = WorkloadSpec(
            n_objects=60, n_queries=2, k=2, timestamps=10, seed=3, query_agility=0.0
        )
        feed = GeneratorFeed(spec, timestamps=spec.timestamps)
        buffer = IngestBuffer(capacity=8, policy=BackPressurePolicy.BLOCK)
        service = _fresh_service()
        driver = IngestDriver(
            feed, service, buffer=buffer, max_batch=8, honor_marks=False, record=True
        )
        driver.prime(k=spec.k)
        pump = ThreadedFeedPump(feed, buffer, offer_timeout=0.005).start()
        report = driver.run(from_buffer=True)
        pump.stop()
        # BLOCK never drops; every offered update is applied or coalesced.
        assert report.total_dropped == 0
        offline = CPMMonitor(cells_per_axis=8)
        offline.load_objects(sorted(feed.initial_objects().items()))
        for qid, point in sorted(feed.initial_queries().items()):
            offline.install_query(qid, point, spec.k)
        for batch in driver.recorded:
            offline.process_flat(batch)
        assert offline.result_table() == service.monitor.result_table()


class TestPullModeBoundedBuffer:
    def test_small_block_buffer_never_deadlocks_the_pull_loop(self):
        """Regression: a caller-supplied bounded BLOCK buffer must not
        deadlock the single-threaded pull loop — a full buffer closes
        the cycle and the unplaceable event carries into the next one,
        with no update lost."""
        workload = BrinkhoffGenerator(SPEC).generate()
        reference = _reference_monitor(workload)
        service = _fresh_service()
        buffer = IngestBuffer(capacity=5, policy=BackPressurePolicy.BLOCK)
        driver = IngestDriver(
            WorkloadFeed(workload), service, buffer=buffer, honor_marks=False
        )
        driver.prime(k=SPEC.k)
        report = driver.run()
        # BLOCK sheds nothing; cycles are clamped at the buffer capacity.
        assert report.total_dropped == 0
        assert all(c.applied <= 5 for c in report.cycles)
        # Carried events count exactly once: no producer ever waited or
        # was rejected in single-threaded pull mode.
        assert report.total_offered == workload.total_object_updates
        assert all(c.blocked == 0 for c in report.cycles)
        assert service.monitor.result_table() == reference.result_table()
        assert service.monitor.object_count == reference.object_count


class TestBufferedDeadlineOnly:
    def test_deadline_without_max_batch_accumulates_until_deadline(self):
        """Regression: with only cycle_deadline configured, buffered mode
        must accumulate for the full deadline instead of closing a
        one-object cycle the moment anything is staged."""
        spec = WorkloadSpec(
            n_objects=100, n_queries=3, k=2, timestamps=6, seed=17, query_agility=0.0
        )
        feed = GeneratorFeed(spec, timestamps=spec.timestamps)
        buffer = IngestBuffer(capacity=1 << 16)
        service = _fresh_service()
        driver = IngestDriver(
            feed, service, buffer=buffer, cycle_deadline=0.05, honor_marks=False
        )
        driver.prime(k=spec.k)
        pump = ThreadedFeedPump(feed, buffer).start()
        report = driver.run(from_buffer=True)
        pump.stop()
        # The pump finishes the whole finite feed well inside a few
        # 50ms windows: the run must be a handful of fat cycles, not
        # hundreds of one-object cycles.
        assert report.n_cycles < 50
        assert any(c.applied > 1 for c in report.cycles)
        assert all(c.trigger in ("deadline", "drain", "end") for c in report.cycles)


class TestBackgroundDriver:
    def test_start_stop_round_trip(self):
        workload = BrinkhoffGenerator(SPEC).generate()
        reference = _reference_monitor(workload)
        service = _fresh_service()
        driver = IngestDriver(WorkloadFeed(workload), service)
        driver.prime(k=SPEC.k)
        driver.start()
        # The feed is finite; the background loop drains it completely.
        import time

        report = None
        for _ in range(2000):
            if len(driver.report.cycles) >= len(workload.batches):
                report = driver.stop()
                break
            time.sleep(0.005)
        assert report is not None
        assert report.n_cycles == len(workload.batches)
        assert service.monitor.result_table() == reference.result_table()


class TestTickReport:
    def test_tick_report_surfaces_label_and_counts(self):
        workload = BrinkhoffGenerator(SPEC).generate()
        service = _fresh_service()
        service.load_objects(sorted(workload.initial_objects.items()))
        for qid, point in sorted(workload.initial_queries.items()):
            service.install_query(qid, point, SPEC.k)
        batch = workload.batches[0]
        report = service.tick_report(batch)
        assert isinstance(report, TickReport)
        assert report.timestamp == batch.timestamp
        assert service.last_timestamp == batch.timestamp
        assert report.object_updates == len(batch.object_updates)
        assert report.query_updates == len(batch.query_updates)
        assert not report.streamed
        assert report.process_sec >= 0.0

    def test_tick_report_flat_matches_row_batch(self):
        from repro.updates import FlatUpdateBatch

        workload = BrinkhoffGenerator(SPEC).generate()
        row_service = _fresh_service()
        flat_service = _fresh_service()
        for service in (row_service, flat_service):
            service.load_objects(sorted(workload.initial_objects.items()))
            for qid, point in sorted(workload.initial_queries.items()):
                service.install_query(qid, point, SPEC.k)
        for batch in workload.batches:
            row_report = row_service.tick_report(batch)
            flat_report = flat_service.tick_report(FlatUpdateBatch.from_batch(batch))
            assert flat_report.changed == row_report.changed
            assert flat_report.timestamp == row_report.timestamp
        assert row_service.monitor.result_table() == flat_service.monitor.result_table()
