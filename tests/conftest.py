"""Shared test fixtures and helpers."""

from __future__ import annotations

import random

import pytest

from repro.grid.grid import Grid


def scatter(n: int, seed: int = 0, bounds=(0.0, 0.0, 1.0, 1.0)) -> list[tuple[int, tuple[float, float]]]:
    """n pseudo-random objects ``(oid, (x, y))`` inside ``bounds``."""
    rng = random.Random(seed)
    x0, y0, x1, y1 = bounds
    return [
        (oid, (rng.uniform(x0, x1), rng.uniform(y0, y1)))
        for oid in range(n)
    ]


def brute_knn(objects: dict[int, tuple[float, float]], q, k: int):
    """Ground-truth k-NN over a position table, ``(dist, oid)`` ordering."""
    import math

    entries = sorted(
        (math.hypot(x - q[0], y - q[1]), oid) for oid, (x, y) in objects.items()
    )
    return entries[:k]


@pytest.fixture
def small_grid() -> Grid:
    """8x8 unit-square grid with a deterministic 64-object population."""
    grid = Grid(8)
    for oid, (x, y) in scatter(64, seed=11):
        grid.insert(oid, x, y)
    return grid


@pytest.fixture
def empty_grid() -> Grid:
    return Grid(8)
