"""Tests for the full monitoring loop (Figure 3.9): query insertions,
terminations, movements, and mixed object/query update cycles."""

import random

import pytest

from repro.core.cpm import CPMMonitor
from repro.updates import (
    ObjectUpdate,
    QueryUpdate,
    QueryUpdateKind,
    move_update,
)
from tests.conftest import brute_knn, scatter


def fresh(n_objects=60, cells=8, seed=3):
    monitor = CPMMonitor(cells_per_axis=cells)
    objs = scatter(n_objects, seed=seed)
    monitor.load_objects(objs)
    return monitor, dict(objs)


class TestQueryLifecycle:
    def test_insert_via_update_stream(self):
        monitor, positions = fresh()
        changed = monitor.process(
            [], [QueryUpdate(5, QueryUpdateKind.INSERT, (0.4, 0.6), 3)]
        )
        assert changed == {5}
        assert monitor.result(5) == brute_knn(positions, (0.4, 0.6), 3)

    def test_terminate_via_update_stream(self):
        monitor, _ = fresh()
        monitor.install_query(5, (0.4, 0.6), 3)
        changed = monitor.process([], [QueryUpdate(5, QueryUpdateKind.TERMINATE)])
        assert 5 not in monitor.query_ids()
        assert 5 not in changed
        assert not monitor.grid.marked_cells(5)

    def test_move_recomputes_from_scratch(self):
        monitor, positions = fresh()
        monitor.install_query(5, (0.4, 0.6), 3)
        changed = monitor.process(
            [], [QueryUpdate(5, QueryUpdateKind.MOVE, (0.9, 0.1), 3)]
        )
        assert changed == {5}
        assert monitor.result(5) == brute_knn(positions, (0.9, 0.1), 3)

    def test_move_relocates_influence_marks(self):
        monitor, _ = fresh(n_objects=200)
        monitor.install_query(5, (0.1, 0.1), 2)
        before = set(monitor.grid.marked_cells(5))
        monitor.process([], [QueryUpdate(5, QueryUpdateKind.MOVE, (0.9, 0.9), 2)])
        after = set(monitor.grid.marked_cells(5))
        assert after
        assert before != after

    def test_move_can_change_k(self):
        monitor, positions = fresh()
        monitor.install_query(5, (0.4, 0.6), 3)
        monitor.process([], [QueryUpdate(5, QueryUpdateKind.MOVE, (0.4, 0.6), 7)])
        assert monitor.result(5) == brute_knn(positions, (0.4, 0.6), 7)


class TestUpdatedQueriesIgnoredForObjectUpdates:
    def test_moving_query_sees_post_batch_world(self):
        """Figure 3.9: object updates are applied first; a moving query's
        fresh search then runs over the updated grid."""
        monitor, positions = fresh()
        monitor.install_query(5, (0.4, 0.6), 1)
        nn_oid = monitor.result(5)[0][1]
        old = positions[nn_oid]
        object_updates = [move_update(nn_oid, old, (0.95, 0.05))]
        query_updates = [QueryUpdate(5, QueryUpdateKind.MOVE, (0.41, 0.61), 1)]
        monitor.process(object_updates, query_updates)
        positions[nn_oid] = (0.95, 0.05)
        assert monitor.result(5) == brute_knn(positions, (0.41, 0.61), 1)

    def test_terminating_query_skipped_during_object_phase(self):
        monitor, positions = fresh()
        monitor.install_query(5, (0.4, 0.6), 1)
        nn_oid = monitor.result(5)[0][1]
        old = positions[nn_oid]
        monitor.process(
            [move_update(nn_oid, old, (0.9, 0.9))],
            [QueryUpdate(5, QueryUpdateKind.TERMINATE)],
        )
        assert 5 not in monitor.query_ids()


class TestMultiQueryCycles:
    def test_interleaved_stream_stays_correct(self):
        rng = random.Random(21)
        monitor, positions = fresh(n_objects=80)
        queries = {}
        next_qid = 0
        for t in range(12):
            object_updates = []
            for oid in rng.sample(list(positions), 15):
                old = positions[oid]
                new = (
                    min(max(old[0] + rng.uniform(-0.15, 0.15), 0.0), 1.0),
                    min(max(old[1] + rng.uniform(-0.15, 0.15), 0.0), 1.0),
                )
                positions[oid] = new
                object_updates.append(move_update(oid, old, new))
            query_updates = []
            if t % 3 == 0:
                q = (rng.random(), rng.random())
                k = rng.choice([1, 2, 5])
                queries[next_qid] = (q, k)
                query_updates.append(
                    QueryUpdate(next_qid, QueryUpdateKind.INSERT, q, k)
                )
                next_qid += 1
            if t % 4 == 2 and queries:
                qid = rng.choice(list(queries))
                q = (rng.random(), rng.random())
                k = queries[qid][1]
                queries[qid] = (q, k)
                query_updates.append(QueryUpdate(qid, QueryUpdateKind.MOVE, q, k))
            if t % 5 == 4 and len(queries) > 1:
                qid = rng.choice(list(queries))
                del queries[qid]
                query_updates.append(QueryUpdate(qid, QueryUpdateKind.TERMINATE))
            monitor.process(object_updates, query_updates)
            for qid, (q, k) in queries.items():
                assert monitor.result(qid) == brute_knn(positions, q, k), (t, qid)

    def test_shared_cells_between_queries(self):
        monitor, positions = fresh(n_objects=50)
        monitor.install_query(0, (0.50, 0.50), 3)
        monitor.install_query(1, (0.52, 0.48), 3)
        nn0 = monitor.result(0)[0][1]
        old = positions[nn0]
        monitor.process([move_update(nn0, old, (0.05, 0.95))])
        positions[nn0] = (0.05, 0.95)
        assert monitor.result(0) == brute_knn(positions, (0.50, 0.50), 3)
        assert monitor.result(1) == brute_knn(positions, (0.52, 0.48), 3)

    def test_no_queries_is_cheap_and_safe(self):
        monitor, positions = fresh()
        oid = next(iter(positions))
        monitor.reset_stats()
        changed = monitor.process([move_update(oid, positions[oid], (0.9, 0.9))])
        assert changed == set()
        assert monitor.stats.cell_scans == 0

    def test_changed_set_reports_only_real_changes(self):
        monitor, positions = fresh(n_objects=100)
        monitor.install_query(0, (0.2, 0.2), 2)
        monitor.install_query(1, (0.8, 0.8), 2)
        # Move an object near query 0 only.
        near0 = min(
            positions,
            key=lambda o: (positions[o][0] - 0.2) ** 2 + (positions[o][1] - 0.2) ** 2,
        )
        old = positions[near0]
        changed = monitor.process([move_update(near0, old, (0.21, 0.19))])
        assert 1 not in changed
