"""Tests for the CPM NN computation module (Figure 3.4).

Covers correctness against brute force, the cell-minimality guarantee
(CPM processes exactly the cells intersecting the best_dist circle, like
the naive sorted-cell algorithm), and the book-keeping left behind
(visit list order, influence marks, residual heap).
"""

import math

import pytest

from repro.baselines.naive_grid import naive_nn_search
from repro.core.cpm import CPMMonitor
from tests.conftest import brute_knn, scatter


def build_monitor(n_objects=80, cells=8, seed=1):
    monitor = CPMMonitor(cells_per_axis=cells)
    objs = scatter(n_objects, seed=seed)
    monitor.load_objects(objs)
    return monitor, dict(objs)


class TestSearchCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 5, 16])
    def test_matches_brute_force(self, k):
        monitor, positions = build_monitor()
        for qid, q in enumerate([(0.5, 0.5), (0.05, 0.95), (0.99, 0.01), (0.31, 0.62)]):
            got = monitor.install_query(qid, q, k)
            assert got == brute_knn(positions, q, k)

    def test_query_on_cell_corner(self):
        monitor, positions = build_monitor()
        q = (0.25, 0.25)  # exact cell corner of an 8x8 grid
        assert monitor.install_query(0, q, 3) == brute_knn(positions, q, 3)

    def test_query_on_workspace_corner(self):
        monitor, positions = build_monitor()
        q = (0.0, 0.0)
        assert monitor.install_query(0, q, 4) == brute_knn(positions, q, 4)
        q2 = (1.0, 1.0)
        assert monitor.install_query(1, q2, 4) == brute_knn(positions, q2, 4)

    def test_query_colocated_with_object(self):
        monitor = CPMMonitor(cells_per_axis=4)
        monitor.load_objects([(1, (0.5, 0.5)), (2, (0.9, 0.9))])
        result = monitor.install_query(0, (0.5, 0.5), 1)
        assert result == [(0.0, 1)]

    def test_k_larger_than_population(self):
        monitor = CPMMonitor(cells_per_axis=4)
        monitor.load_objects([(1, (0.2, 0.2)), (2, (0.8, 0.8))])
        result = monitor.install_query(0, (0.5, 0.5), 5)
        assert len(result) == 2
        assert math.isinf(monitor.best_dist(0))

    def test_empty_grid(self):
        monitor = CPMMonitor(cells_per_axis=4)
        assert monitor.install_query(0, (0.5, 0.5), 3) == []

    def test_duplicate_install_raises(self):
        monitor, _ = build_monitor()
        monitor.install_query(0, (0.5, 0.5), 1)
        with pytest.raises(KeyError):
            monitor.install_query(0, (0.5, 0.5), 1)

    def test_many_random_queries_various_grids(self):
        import random

        rng = random.Random(77)
        for cells in (2, 3, 8, 20):
            monitor = CPMMonitor(cells_per_axis=cells)
            objs = scatter(60, seed=cells)
            monitor.load_objects(objs)
            positions = dict(objs)
            for qid in range(10):
                q = (rng.random(), rng.random())
                k = rng.choice([1, 3, 7])
                assert monitor.install_query(qid, q, k) == brute_knn(positions, q, k)


class TestCellMinimality:
    def test_processes_same_cells_as_naive(self):
        """CPM's visit list must equal the naive algorithm's processed set
        (the minimal cell set, Section 3.1 optimality claim)."""
        monitor, _ = build_monitor(n_objects=100, cells=10, seed=5)
        naive_grid = CPMMonitor(cells_per_axis=10)
        naive_grid.load_objects(scatter(100, seed=5))
        for qid, (q, k) in enumerate([((0.5, 0.5), 1), ((0.2, 0.8), 4), ((0.9, 0.1), 8)]):
            monitor.install_query(qid, q, k)
            state = monitor.query_state(qid)
            _entries, naive_cells = naive_nn_search(naive_grid.grid, q, k)
            assert set(state.visit_cells) == set(naive_cells)

    def test_visit_list_keys_ascending(self):
        monitor, _ = build_monitor()
        monitor.install_query(0, (0.37, 0.59), 5)
        keys = monitor.query_state(0).visit_keys
        assert keys == sorted(keys)

    def test_all_visited_cells_within_best_dist(self):
        monitor, _ = build_monitor()
        monitor.install_query(0, (0.5, 0.5), 3)
        state = monitor.query_state(0)
        for key in state.visit_keys:
            assert key < state.best_dist

    def test_residual_heap_keys_at_least_best_dist(self):
        monitor, _ = build_monitor()
        monitor.install_query(0, (0.5, 0.5), 3)
        state = monitor.query_state(0)
        assert state.heap.peek_key() >= state.best_dist


class TestInfluenceRegion:
    def test_marks_equal_visit_prefix(self):
        monitor, _ = build_monitor()
        monitor.install_query(0, (0.5, 0.5), 4)
        state = monitor.query_state(0)
        marked = set(monitor.grid.marked_cells(0))
        assert marked == set(state.visit_cells[: state.marked_upto])

    def test_marks_are_cells_intersecting_circle(self):
        monitor, _ = build_monitor()
        monitor.install_query(0, (0.5, 0.5), 4)
        best = monitor.best_dist(0)
        expected = {
            (i, j)
            for i, j in monitor.grid.all_cells()
            if monitor.grid.mindist(i, j, (0.5, 0.5)) <= best
        }
        got = set(monitor.influence_cells(0))
        # Processed cells with mindist <= best_dist; boundary-touching cells
        # that were never de-heaped may legitimately be absent.
        assert got <= expected
        strict = {c for c in expected if monitor.grid.mindist(*c, (0.5, 0.5)) < best}
        assert strict <= got

    def test_query_cell_always_marked(self):
        monitor, _ = build_monitor()
        monitor.install_query(0, (0.51, 0.52), 2)
        assert monitor.grid.cell_of(0.51, 0.52) in set(monitor.influence_cells(0))

    def test_underfull_query_marks_all_cells(self):
        monitor = CPMMonitor(cells_per_axis=4)
        monitor.load_objects([(1, (0.1, 0.1))])
        monitor.install_query(0, (0.9, 0.9), 3)
        # best_dist is inf: every cell is in the influence region.
        assert len(monitor.influence_cells(0)) == 16


class TestRemoveQuery:
    def test_unmarks_everything(self):
        monitor, _ = build_monitor()
        monitor.install_query(0, (0.5, 0.5), 4)
        assert monitor.grid.marked_cells(0)
        monitor.remove_query(0)
        assert not monitor.grid.marked_cells(0)
        assert 0 not in monitor.query_ids()

    def test_remove_missing_raises(self):
        monitor, _ = build_monitor()
        with pytest.raises(KeyError):
            monitor.remove_query(123)

    def test_other_queries_unaffected(self):
        monitor, positions = build_monitor()
        monitor.install_query(0, (0.5, 0.5), 4)
        expected = brute_knn(positions, (0.2, 0.2), 2)
        monitor.install_query(1, (0.2, 0.2), 2)
        monitor.remove_query(0)
        assert monitor.result(1) == expected


class TestCsh:
    def test_csh_counts_visit_plus_heap_cells(self):
        monitor, _ = build_monitor()
        monitor.install_query(0, (0.5, 0.5), 2)
        state = monitor.query_state(0)
        assert state.csh() == len(state.visit_cells) + state.heap.cell_entry_count()

    def test_boundary_boxes_at_most_four(self):
        monitor, _ = build_monitor()
        monitor.install_query(0, (0.5, 0.5), 2)
        assert monitor.query_state(0).heap.rect_entry_count() <= 4


class TestLoadGuard:
    def test_bulk_load_after_queries_raises(self):
        monitor, _ = build_monitor()
        monitor.install_query(0, (0.5, 0.5), 1)
        with pytest.raises(RuntimeError):
            monitor.load_objects([(999, (0.4, 0.4))])
