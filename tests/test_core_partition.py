"""Unit tests for the conceptual partition (Figure 3.1b / Lemma 3.1)."""

import pytest

from repro.core.partition import (
    DIRECTION_NAMES,
    DIRECTIONS,
    DOWN,
    LEFT,
    RIGHT,
    UP,
    ConceptualPartition,
)


def full_tiling(partition: ConceptualPartition) -> dict:
    """Map every grid cell to its owning rectangle (or 'core')."""
    owners = {}
    for direction in DIRECTIONS:
        level = 0
        while partition.exists(direction, level):
            for cell in partition.strip_cells(direction, level):
                owners.setdefault(cell, []).append((direction, level))
            level += 1
    for cell in partition.core_cells():
        owners.setdefault(cell, []).append(("core", 0))
    return owners


class TestConstruction:
    def test_core_outside_grid_raises(self):
        with pytest.raises(ValueError):
            ConceptualPartition(5, 5, 5, 5, 4, 4)

    def test_inverted_core_raises(self):
        with pytest.raises(ValueError):
            ConceptualPartition(3, 2, 0, 0, 4, 4)

    def test_around_cell(self):
        p = ConceptualPartition.around_cell((2, 3), 8, 8)
        assert (p.i_lo, p.i_hi, p.j_lo, p.j_hi) == (2, 2, 3, 3)


class TestMaxLevel:
    def test_center_cell(self):
        p = ConceptualPartition.around_cell((4, 4), 9, 9)
        # 4 rows above / below / left / right of the core.
        for direction in DIRECTIONS:
            assert p.max_level(direction) == 3

    def test_corner_cell(self):
        p = ConceptualPartition.around_cell((0, 0), 8, 8)
        assert p.max_level(UP) == 6
        assert p.max_level(RIGHT) == 6
        assert p.max_level(DOWN) == -1
        assert p.max_level(LEFT) == -1

    def test_exists(self):
        p = ConceptualPartition.around_cell((0, 0), 8, 8)
        assert p.exists(UP, 0)
        assert p.exists(UP, 6)
        assert not p.exists(UP, 7)
        assert not p.exists(DOWN, 0)
        assert not p.exists(UP, -1)

    def test_core_spanning_grid_has_no_rectangles(self):
        p = ConceptualPartition(0, 3, 0, 3, 4, 4)
        for direction in DIRECTIONS:
            assert p.max_level(direction) == -1


class TestStripGeometry:
    def test_pinwheel_level0_around_center(self):
        p = ConceptualPartition.around_cell((2, 2), 5, 5)
        assert set(p.strip_cells(UP, 0)) == {(2, 3), (3, 3)}
        assert set(p.strip_cells(RIGHT, 0)) == {(3, 1), (3, 2)}
        assert set(p.strip_cells(DOWN, 0)) == {(1, 1), (2, 1)}
        assert set(p.strip_cells(LEFT, 0)) == {(1, 2), (1, 3)}

    def test_arm_lengths_grow_with_level(self):
        p = ConceptualPartition.around_cell((8, 8), 17, 17)
        for direction in DIRECTIONS:
            for level in range(4):
                # Unclipped arm covers 2*(level+1) cells.
                assert p.strip_cell_count(direction, level) == 2 * (level + 1)

    def test_clipping_near_border(self):
        p = ConceptualPartition.around_cell((0, 0), 8, 8)
        # U_0 around the corner cell: row 1, columns [0, 1] after clipping.
        assert set(p.strip_cells(UP, 0)) == {(0, 1), (1, 1)}

    def test_nonexistent_strip_raises(self):
        p = ConceptualPartition.around_cell((0, 0), 8, 8)
        with pytest.raises(ValueError):
            p.strip_cell_range(DOWN, 0)

    def test_core_cells_block(self):
        p = ConceptualPartition(1, 2, 3, 4, 8, 8)
        assert set(p.core_cells()) == {(1, 3), (1, 4), (2, 3), (2, 4)}
        assert p.core_cell_count() == 4


class TestTiling:
    @pytest.mark.parametrize(
        "core,cols,rows",
        [
            ((4, 4), 9, 9),     # centered
            ((0, 0), 6, 6),     # corner
            ((5, 0), 6, 6),     # other corner
            ((3, 0), 7, 5),     # edge, non-square grid
            ((2, 4), 5, 8),     # asymmetric
        ],
    )
    def test_point_core_tiles_exactly_once(self, core, cols, rows):
        p = ConceptualPartition.around_cell(core, cols, rows)
        owners = full_tiling(p)
        assert len(owners) == cols * rows
        multi = {cell: who for cell, who in owners.items() if len(who) != 1}
        assert not multi, f"cells covered != once: {multi}"

    def test_block_core_tiles_exactly_once(self):
        p = ConceptualPartition(2, 4, 1, 2, 9, 7)
        owners = full_tiling(p)
        assert len(owners) == 9 * 7
        assert all(len(who) == 1 for who in owners.values())

    def test_owner_of_matches_enumeration(self):
        p = ConceptualPartition.around_cell((3, 3), 8, 8)
        for direction in DIRECTIONS:
            level = 0
            while p.exists(direction, level):
                for cell in p.strip_cells(direction, level):
                    assert p.owner_of(cell) == (direction, level)
                level += 1

    def test_owner_of_core_is_none(self):
        p = ConceptualPartition.around_cell((3, 3), 8, 8)
        assert p.owner_of((3, 3)) is None

    def test_owner_of_outside_grid_raises(self):
        p = ConceptualPartition.around_cell((3, 3), 8, 8)
        with pytest.raises(ValueError):
            p.owner_of((8, 0))


class TestDirectionNames:
    def test_names_align_with_constants(self):
        assert DIRECTION_NAMES[UP] == "U"
        assert DIRECTION_NAMES[RIGHT] == "R"
        assert DIRECTION_NAMES[DOWN] == "D"
        assert DIRECTION_NAMES[LEFT] == "L"
