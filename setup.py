"""Legacy setup shim.

The reproduction environment is offline and has setuptools but no
``wheel`` package, so PEP 660 editable installs (which must build a wheel)
fail.  Keeping a ``setup.py`` and omitting the ``[build-system]`` table in
pyproject.toml lets ``pip install -e .`` take the legacy ``setup.py
develop`` path, which needs neither network access nor ``wheel``.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
