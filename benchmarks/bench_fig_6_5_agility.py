"""Figure 6.5 — effect of object agility f_obj (6.5a) and query agility
f_qry (6.5b).

Paper: every method's cost grows with the fraction of moving objects; CPM
grows linearly (index maintenance).  CPM's cost also grows with query
agility (fresh NN computations for moving queries), while YPK-CNN is
nearly flat in f_qry (it re-evaluates everything anyway).
"""

import pytest

from _harness import (
    ALGORITHMS,
    cached_workload,
    default_grid,
    default_spec,
    print_series_table,
    run_benchmark_case,
)

AGILITIES = (0.1, 0.2, 0.3, 0.4, 0.5)

REGISTRY_OBJ: dict = {}
REGISTRY_QRY: dict = {}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("agility", AGILITIES)
def test_fig_6_5a_object_agility(benchmark, agility, algorithm):
    benchmark.group = f"fig6.5a f_obj={agility}"
    workload = cached_workload(default_spec(object_agility=agility))
    run_benchmark_case(
        benchmark, REGISTRY_OBJ, (agility, algorithm), algorithm, workload,
        default_grid(),
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("agility", AGILITIES)
def test_fig_6_5b_query_agility(benchmark, agility, algorithm):
    benchmark.group = f"fig6.5b f_qry={agility}"
    workload = cached_workload(default_spec(query_agility=agility))
    run_benchmark_case(
        benchmark, REGISTRY_QRY, (agility, algorithm), algorithm, workload,
        default_grid(),
    )


def test_fig_6_5_shape():
    if not REGISTRY_OBJ or not REGISTRY_QRY:
        pytest.skip("benchmarks did not run")
    print_series_table("Figure 6.5a: CPU vs object agility", REGISTRY_OBJ)
    print_series_table("Figure 6.5b: CPU vs query agility", REGISTRY_QRY)
    # 6.5a: cell scans grow with object agility for the baselines (more
    # updates -> more invalidations).
    for algo in ALGORITHMS:
        low = REGISTRY_OBJ[(0.1, algo)].total_cell_scans
        high = REGISTRY_OBJ[(0.5, algo)].total_cell_scans
        assert high >= low, algo
    # 6.5b: CPM's scans grow with query agility (moving queries recompute
    # from scratch).
    cpm_low = REGISTRY_QRY[(0.1, "CPM")].total_cell_scans
    cpm_high = REGISTRY_QRY[(0.5, "CPM")].total_cell_scans
    assert cpm_high > cpm_low
    # CPM scans fewest cells everywhere.
    for registry in (REGISTRY_OBJ, REGISTRY_QRY):
        for agility in AGILITIES:
            cpm = registry[(agility, "CPM")].total_cell_scans
            assert cpm < registry[(agility, "YPK-CNN")].total_cell_scans
            assert cpm < registry[(agility, "SEA-CNN")].total_cell_scans
