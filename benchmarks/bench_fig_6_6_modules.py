"""Figure 6.6 — module isolation versus N: constantly moving queries
(6.6a, NN computation) and static queries (6.6b, result maintenance).

Paper: 6.6a compares only CPM and YPK-CNN (SEA-CNN has no first-time
evaluation module); CPM wins and the gap widens with N.  6.6b shows
YPK-CNN and SEA-CNN behaving similarly while CPM performs far fewer
computations.
"""

import pytest

from _harness import (
    ALGORITHMS,
    bench_scale,
    cached_workload,
    default_grid,
    default_spec,
    print_series_table,
    run_benchmark_case,
)
from repro.experiments.fig_6_2 import PAPER_N

REGISTRY_MOVING: dict = {}
REGISTRY_STATIC: dict = {}


def object_counts() -> list[int]:
    seen = []
    for paper_n in PAPER_N:
        n = max(200, round(paper_n * bench_scale()))
        if n not in seen:
            seen.append(n)
    return seen


@pytest.mark.parametrize("algorithm", ("CPM", "YPK-CNN"))
@pytest.mark.parametrize("n_objects", object_counts())
def test_fig_6_6a_moving_queries(benchmark, n_objects, algorithm):
    benchmark.group = f"fig6.6a moving N={n_objects}"
    workload = cached_workload(
        default_spec(n_objects=n_objects, query_agility=1.0)
    )
    run_benchmark_case(
        benchmark, REGISTRY_MOVING, (n_objects, algorithm), algorithm, workload,
        default_grid(),
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n_objects", object_counts())
def test_fig_6_6b_static_queries(benchmark, n_objects, algorithm):
    benchmark.group = f"fig6.6b static N={n_objects}"
    workload = cached_workload(
        default_spec(n_objects=n_objects, query_agility=0.0)
    )
    run_benchmark_case(
        benchmark, REGISTRY_STATIC, (n_objects, algorithm), algorithm, workload,
        default_grid(),
    )


def test_fig_6_6_shape():
    if not REGISTRY_MOVING or not REGISTRY_STATIC:
        pytest.skip("benchmarks did not run")
    print_series_table(
        "Figure 6.6a: constantly moving queries vs N", REGISTRY_MOVING,
        algorithms=("CPM", "YPK-CNN"),
    )
    print_series_table("Figure 6.6b: static queries vs N", REGISTRY_STATIC)
    # 6.6a: CPM's NN computation module processes fewer cells than
    # YPK-CNN's two-step search at every N.
    for n in object_counts():
        cpm = REGISTRY_MOVING[(n, "CPM")]
        ypk = REGISTRY_MOVING[(n, "YPK-CNN")]
        assert cpm.total_cell_scans < ypk.total_cell_scans, n
    # 6.6b: result maintenance — CPM far below both baselines.
    for n in object_counts():
        cpm = REGISTRY_STATIC[(n, "CPM")]
        assert cpm.total_cell_scans < REGISTRY_STATIC[(n, "YPK-CNN")].total_cell_scans
        assert cpm.total_cell_scans < REGISTRY_STATIC[(n, "SEA-CNN")].total_cell_scans
