"""Footnote 6 — space overhead of the three methods.

Paper (footnote 6): at the default setting the space overheads are
2.854 / 3.074 / 3.314 MBytes for YPK-CNN / SEA-CNN / CPM — the ordering
YPK < SEA < CPM with all three within a small factor.  The benchmark
measures live monitors after a replay at the bench scale and checks the
ordering; the modeled full-size figures are asserted against the paper's
ballpark.
"""

import pytest

from _harness import ALGORITHMS, cached_workload, default_grid, default_spec
from repro.analysis.space import (
    measured_space_units,
    modeled_space_units,
    units_to_mbytes,
)
from repro.api.session import replay_workload
from repro.experiments.common import build_monitor

REGISTRY: dict = {}


def replay_and_measure(algorithm: str) -> float:
    workload = cached_workload(default_spec())
    monitor = build_monitor(algorithm, default_grid())
    replay_workload(monitor, workload)
    return measured_space_units(monitor)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_space_overhead(benchmark, algorithm):
    benchmark.group = "footnote-6 space"
    units = benchmark.pedantic(
        replay_and_measure, args=(algorithm,), rounds=1, iterations=1
    )
    benchmark.extra_info["memory_units"] = int(units)
    benchmark.extra_info["mbytes"] = round(units_to_mbytes(units), 4)
    REGISTRY[algorithm] = units


def test_space_shape():
    if len(REGISTRY) < 3:
        pytest.skip("benchmarks did not run")
    print("\n== Footnote 6: measured memory units ==")
    for name, units in REGISTRY.items():
        print(f"  {name:8s} {units:12.0f} units  {units_to_mbytes(units):.4f} MB")
    # Ordering: YPK < SEA < CPM (CPM pays for its book-keeping).
    assert REGISTRY["YPK-CNN"] < REGISTRY["SEA-CNN"] < REGISTRY["CPM"]
    # All within a small factor of each other (paper: 2.85 .. 3.31 MB).
    assert REGISTRY["CPM"] < 3.0 * REGISTRY["YPK-CNN"]


def test_space_model_full_size():
    """Modeled full-size footprints near the paper's reported MBytes."""
    delta = 1.0 / 128.0
    paper = {"YPK-CNN": 2.854, "SEA-CNN": 3.074, "CPM": 3.314}
    for method, reported in paper.items():
        modeled = units_to_mbytes(
            modeled_space_units(method, delta, 16, 100_000, 5_000)
        )
        # Within a factor of ~2.5 of the paper's numbers (the paper's exact
        # accounting of per-entry constants is not fully specified).
        assert reported / 2.5 < modeled < reported * 2.5, (method, modeled)
    # And the ordering matches.
    m = {
        name: modeled_space_units(name, delta, 16, 100_000, 5_000)
        for name in paper
    }
    assert m["YPK-CNN"] < m["SEA-CNN"] < m["CPM"]
