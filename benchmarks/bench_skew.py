"""Granularity sensitivity under skewed data (Section 2 / 4.1 discussion).

The paper's analysis assumes uniform data; Yu et al.'s hierarchical grid
exists because "highly skewed data" breaks any single δ.  This benchmark
quantifies that: the same algorithms replay a uniform and a heavily
clustered workload of identical population at several granularities.
Expected shape: under skew, coarse grids suffer (dense hotspot cells make
every scan expensive) and the CPU-optimal granularity shifts finer than
under uniformity, while CPM remains the most access-frugal method in both
regimes.
"""

import pytest

from _harness import ALGORITHMS, bench_scale, replay, run_benchmark_case
from repro.experiments.common import scaled_spec
from repro.mobility.skewed import SkewedGenerator
from repro.mobility.uniform import UniformGenerator

REGISTRY: dict = {}

GRIDS = (16, 32, 64)

_WORKLOADS: dict = {}


def workload(kind: str):
    wl = _WORKLOADS.get(kind)
    if wl is None:
        spec = scaled_spec(bench_scale())
        if kind == "uniform":
            wl = UniformGenerator(spec).generate()
        else:
            wl = SkewedGenerator(spec, hotspots=4, spread=0.04).generate()
        _WORKLOADS[kind] = wl
    return wl


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("grid", GRIDS)
@pytest.mark.parametrize("kind", ("uniform", "skewed"))
def test_skew(benchmark, kind, grid, algorithm):
    benchmark.group = f"skew {kind} grid={grid}"
    run_benchmark_case(
        benchmark, REGISTRY, (kind, grid, algorithm), algorithm, workload(kind), grid
    )


def test_skew_shape():
    if not REGISTRY:
        pytest.skip("benchmarks did not run")
    print("\n== Skewed vs uniform (cell scans) ==")
    for kind in ("uniform", "skewed"):
        for grid in GRIDS:
            row = "  ".join(
                f"{algo}={REGISTRY[(kind, grid, algo)].total_cell_scans}"
                for algo in ALGORITHMS
            )
            print(f"  {kind:8s} grid={grid:3d}: {row}")
    # CPM stays the most access-frugal method under both regimes.
    for kind in ("uniform", "skewed"):
        for grid in GRIDS:
            cpm = REGISTRY[(kind, grid, "CPM")].total_objects_scanned
            assert cpm <= REGISTRY[(kind, grid, "YPK-CNN")].total_objects_scanned
            assert cpm <= REGISTRY[(kind, grid, "SEA-CNN")].total_objects_scanned
    # Skew concentrates objects: at the coarsest grid, every method probes
    # more objects per scan than under uniformity.
    for algo in ALGORITHMS:
        uniform_ratio = (
            REGISTRY[("uniform", GRIDS[0], algo)].total_objects_scanned
            / max(1, REGISTRY[("uniform", GRIDS[0], algo)].total_cell_scans)
        )
        skewed_ratio = (
            REGISTRY[("skewed", GRIDS[0], algo)].total_objects_scanned
            / max(1, REGISTRY[("skewed", GRIDS[0], algo)].total_cell_scans)
        )
        assert skewed_ratio > uniform_ratio * 0.8, algo
