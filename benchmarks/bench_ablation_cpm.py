"""Ablations of CPM's design choices (DESIGN.md Section 6).

Variants replaying the same workload:

* full            — the paper's algorithm;
* no-merge        — Section 3.3 batch merge disabled (any outgoing NN
                    forces a re-computation, per Section 3.2 semantics);
* no-bookkeeping  — visit list/heap reuse disabled (the low-memory
                    fallback: recompute from scratch).

Expected: full <= no-merge <= no-bookkeeping in cell scans; the deltas
quantify the contribution of each mechanism.
"""

import pytest

from _harness import cached_workload, default_grid, default_spec
from repro.api.session import replay_workload
from repro.experiments.ablations import VARIANTS, build_variant

REGISTRY: dict = {}


def replay_variant(variant: str):
    workload = cached_workload(default_spec())
    monitor = build_variant(variant, default_grid(), workload.spec.bounds)
    return replay_workload(monitor, workload)


@pytest.mark.parametrize("variant", VARIANTS)
def test_ablation(benchmark, variant):
    benchmark.group = "CPM ablations"
    report = benchmark.pedantic(replay_variant, args=(variant,), rounds=1, iterations=1)
    benchmark.extra_info["total_cell_scans"] = report.total_cell_scans
    benchmark.extra_info["cell_accesses_per_query_per_ts"] = round(
        report.cell_accesses_per_query_per_timestamp, 4
    )
    REGISTRY[variant] = report


def test_ablation_shape():
    if len(REGISTRY) < 3:
        pytest.skip("benchmarks did not run")
    print("\n== CPM ablations (cell scans) ==")
    for variant, report in REGISTRY.items():
        print(
            f"  {variant:15s} cpu={report.total_processing_sec:.3f}s "
            f"scans={report.total_cell_scans}"
        )
    full = REGISTRY["full"].total_cell_scans
    no_merge = REGISTRY["no-merge"].total_cell_scans
    no_book = REGISTRY["no-bookkeeping"].total_cell_scans
    # Each mechanism saves work: the merge avoids re-computations entirely
    # when incomers offset outgoing NNs; book-keeping reuse shortens each
    # re-computation.  (The two ablations are not ordered relative to each
    # other: no-merge recomputes more *often*, no-bookkeeping makes each
    # recomputation *pricier* — which dominates depends on the workload.)
    assert full <= no_merge
    assert full <= no_book
