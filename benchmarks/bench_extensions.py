"""Benchmarks for the Section 5 extensions and the library's own additions.

Not figures of the paper, but quantified claims of its text:

* **Aggregate NN** (Section 5): monitoring cost of sum/min/max queries
  stays the same order as plain NN monitoring on the same stream.
* **Constrained NN** (Figure 5.3): restricting the search to a sector
  costs no more than the unconstrained query.
* **Range monitoring** (methodology transfer): zero cell scans during
  maintenance, by construction.
* **d-dimensional CPM** (footnote 3): 3D monitoring validated at speed.
"""

import random

import pytest

from _harness import bench_scale
from repro.core.cpm import CPMMonitor
from repro.core.range_monitor import GridRangeMonitor
from repro.geometry.rects import Rect
from repro.ndim.cpm import NdCPMMonitor
from repro.updates import ObjectUpdate

REGISTRY: dict = {}


def _uniform_stream(n_objects: int, cycles: int, movers: int, seed: int = 7, d: int = 2):
    rng = random.Random(seed)
    positions = {
        oid: tuple(rng.random() for _ in range(d)) for oid in range(n_objects)
    }
    initial = dict(positions)
    batches = []
    for _ in range(cycles):
        updates = []
        for oid in rng.sample(sorted(positions), movers):
            old = positions[oid]
            new = tuple(
                min(max(c + rng.uniform(-0.05, 0.05), 0.0), 1.0) for c in old
            )
            positions[oid] = new
            updates.append(ObjectUpdate(oid, old, new))
        batches.append(updates)
    return initial, batches


def _scaled_sizes():
    scale = bench_scale()
    n_objects = max(500, round(100_000 * scale))
    cycles = 10
    movers = max(50, n_objects // 10)
    return n_objects, cycles, movers


@pytest.mark.parametrize("fn", ["nn", "sum", "min", "max"])
def test_aggregate_monitoring(benchmark, fn):
    benchmark.group = "extensions: aggregate NN"
    n_objects, cycles, movers, = _scaled_sizes()
    initial, batches = _uniform_stream(n_objects, cycles, movers)
    q_points = [(0.4, 0.4), (0.6, 0.45), (0.5, 0.62)]

    def run():
        monitor = CPMMonitor(cells_per_axis=32)
        monitor.load_objects(initial.items())
        if fn == "nn":
            monitor.install_query(0, (0.5, 0.5), k=8)
        else:
            monitor.install_ann_query(0, q_points, k=8, fn=fn)
        for updates in batches:
            monitor.process(updates)
        return monitor.stats.snapshot()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cell_scans"] = stats.cell_scans
    REGISTRY[("agg", fn)] = stats


@pytest.mark.parametrize("mode", ["unconstrained", "constrained"])
def test_constrained_monitoring(benchmark, mode):
    benchmark.group = "extensions: constrained NN"
    n_objects, cycles, movers = _scaled_sizes()
    initial, batches = _uniform_stream(n_objects, cycles, movers, seed=8)

    def run():
        monitor = CPMMonitor(cells_per_axis=32)
        monitor.load_objects(initial.items())
        if mode == "constrained":
            monitor.install_constrained_query(
                0, (0.5, 0.5), Rect(0.5, 0.5, 1.0, 1.0), k=4
            )
        else:
            monitor.install_query(0, (0.5, 0.5), k=4)
        for updates in batches:
            monitor.process(updates)
        return monitor.stats.snapshot()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cell_scans"] = stats.cell_scans
    REGISTRY[("constrained", mode)] = stats


def test_range_monitoring(benchmark):
    benchmark.group = "extensions: range monitoring"
    n_objects, cycles, movers = _scaled_sizes()
    initial, batches = _uniform_stream(n_objects, cycles, movers, seed=9)

    def run():
        monitor = GridRangeMonitor(cells_per_axis=32)
        monitor.load_objects(initial.items())
        monitor.install_range_query(0, Rect(0.3, 0.3, 0.7, 0.7))
        monitor.reset_stats()
        for updates in batches:
            monitor.process(updates)
        return monitor.stats.snapshot()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cell_scans"] = stats.cell_scans
    REGISTRY[("range", "maintenance")] = stats


def test_ndim_monitoring(benchmark):
    benchmark.group = "extensions: 3D CPM"
    scale = bench_scale()
    n_objects = max(300, round(20_000 * scale))
    initial, batches = _uniform_stream(n_objects, 10, max(30, n_objects // 10), seed=10, d=3)

    def run():
        monitor = NdCPMMonitor(cells_per_axis=8, dimensions=3)
        monitor.load_objects(initial.items())
        monitor.install_query(0, (0.5, 0.5, 0.5), k=4)
        for updates in batches:
            monitor.process(updates)
        return monitor.stats.snapshot()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cell_scans"] = stats.cell_scans
    REGISTRY[("ndim", "3d")] = stats


def test_extension_shapes():
    if len(REGISTRY) < 7:
        pytest.skip("benchmarks did not run")
    # Range maintenance never touches the grid.
    assert REGISTRY[("range", "maintenance")].cell_scans == 0
    # A constrained query does no more scanning than its unconstrained
    # counterpart (it prunes cells outside the sector).
    assert (
        REGISTRY[("constrained", "constrained")].cell_scans
        <= REGISTRY[("constrained", "unconstrained")].cell_scans * 1.5
    )
    # Aggregate monitoring stays within an order of magnitude of plain NN.
    nn = max(1, REGISTRY[("agg", "nn")].cell_scans)
    for fn in ("sum", "min", "max"):
        assert REGISTRY[("agg", fn)].cell_scans < 100 * nn, fn
