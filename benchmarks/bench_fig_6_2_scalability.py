"""Figure 6.2 — scalability: CPU time versus N (6.2a) and versus n (6.2b).

Paper: all methods grow roughly linearly in both the object population and
the query count, with the baselines far more sensitive than CPM.
"""

import pytest

from _harness import (
    ALGORITHMS,
    bench_scale,
    cached_workload,
    default_grid,
    default_spec,
    print_series_table,
    run_benchmark_case,
)
from repro.experiments.fig_6_2 import PAPER_N, PAPER_QUERIES

REGISTRY_N: dict = {}
REGISTRY_Q: dict = {}


def object_counts() -> list[int]:
    seen = []
    for paper_n in PAPER_N:
        n = max(200, round(paper_n * bench_scale()))
        if n not in seen:
            seen.append(n)
    return seen


def query_counts() -> list[int]:
    seen = []
    for paper_n in PAPER_QUERIES:
        n = max(2, round(paper_n * bench_scale()))
        if n not in seen:
            seen.append(n)
    return seen


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n_objects", object_counts())
def test_fig_6_2a_objects(benchmark, n_objects, algorithm):
    benchmark.group = f"fig6.2a N={n_objects}"
    workload = cached_workload(default_spec(n_objects=n_objects))
    run_benchmark_case(
        benchmark, REGISTRY_N, (n_objects, algorithm), algorithm, workload,
        default_grid(),
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n_queries", query_counts())
def test_fig_6_2b_queries(benchmark, n_queries, algorithm):
    benchmark.group = f"fig6.2b n={n_queries}"
    workload = cached_workload(default_spec(n_queries=n_queries))
    run_benchmark_case(
        benchmark, REGISTRY_Q, (n_queries, algorithm), algorithm, workload,
        default_grid(),
    )


def test_fig_6_2_shape():
    """Cost grows with N and n; CPM scans fewest cells at every point."""
    if not REGISTRY_N or not REGISTRY_Q:
        pytest.skip("benchmarks did not run")
    print_series_table("Figure 6.2a: CPU vs N", REGISTRY_N)
    print_series_table("Figure 6.2b: CPU vs n", REGISTRY_Q)
    for registry in (REGISTRY_N, REGISTRY_Q):
        for (value, algo), report in registry.items():
            if algo == "CPM":
                assert (
                    report.total_cell_scans
                    < registry[(value, "YPK-CNN")].total_cell_scans
                )
                assert (
                    report.total_cell_scans
                    < registry[(value, "SEA-CNN")].total_cell_scans
                )
    # 6.2a: CPU grows with N (note: *cell scans* legitimately shrink with N
    # at fixed k, because best_dist — and hence every search region —
    # contracts as density rises; the paper's y-axis is CPU time).
    for algo in ALGORITHMS:
        points = sorted(
            (value, r.total_processing_sec)
            for (value, a), r in REGISTRY_N.items()
            if a == algo
        )
        assert points[-1][1] > 0.8 * points[0][1], ("N", algo)
    # 6.2b: work grows with the query count for every method.
    for algo in ALGORITHMS:
        points = sorted(
            (value, r.total_cell_scans)
            for (value, a), r in REGISTRY_Q.items()
            if a == algo
        )
        assert points[-1][1] >= points[0][1], ("n", algo)
