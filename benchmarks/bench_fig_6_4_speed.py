"""Figure 6.4 — effect of object speed (6.4a) and query speed (6.4b).

Paper: CPM is practically unaffected by object speed while both baselines
degrade (their search regions grow with how far the previous neighbors
moved); for query speed, CPM and YPK-CNN are insensitive while SEA-CNN's
cost grows with the query displacement.
"""

import pytest

from _harness import (
    ALGORITHMS,
    cached_workload,
    default_grid,
    default_spec,
    print_series_table,
    run_benchmark_case,
)

SPEEDS = ("slow", "medium", "fast")

REGISTRY_OBJ: dict = {}
REGISTRY_QRY: dict = {}


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("speed", SPEEDS)
def test_fig_6_4a_object_speed(benchmark, speed, algorithm):
    benchmark.group = f"fig6.4a object={speed}"
    workload = cached_workload(default_spec(object_speed=speed))
    run_benchmark_case(
        benchmark, REGISTRY_OBJ, (speed, algorithm), algorithm, workload,
        default_grid(),
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("speed", SPEEDS)
def test_fig_6_4b_query_speed(benchmark, speed, algorithm):
    benchmark.group = f"fig6.4b query={speed}"
    workload = cached_workload(default_spec(query_speed=speed))
    run_benchmark_case(
        benchmark, REGISTRY_QRY, (speed, algorithm), algorithm, workload,
        default_grid(),
    )


def test_fig_6_4_shape():
    if not REGISTRY_OBJ or not REGISTRY_QRY:
        pytest.skip("benchmarks did not run")
    print_series_table("Figure 6.4a: CPU vs object speed", REGISTRY_OBJ)
    print_series_table("Figure 6.4b: CPU vs query speed", REGISTRY_QRY)
    # 6.4a: the baselines' search regions grow with object speed — their
    # cell scans at fast speed far exceed their slow-speed scans, while
    # CPM's growth is comparatively mild.
    for algo in ("YPK-CNN", "SEA-CNN"):
        slow = REGISTRY_OBJ[("slow", algo)].total_cell_scans
        fast = REGISTRY_OBJ[("fast", algo)].total_cell_scans
        assert fast > slow, algo
    cpm_slow = REGISTRY_OBJ[("slow", "CPM")].total_cell_scans
    cpm_fast = REGISTRY_OBJ[("fast", "CPM")].total_cell_scans
    ypk_growth = (
        REGISTRY_OBJ[("fast", "YPK-CNN")].total_cell_scans
        / max(1, REGISTRY_OBJ[("slow", "YPK-CNN")].total_cell_scans)
    )
    cpm_growth = cpm_fast / max(1, cpm_slow)
    assert cpm_growth < ypk_growth, "CPM should be less speed-sensitive than YPK"
    # CPM scans fewest cells at every speed in both sweeps.
    for registry in (REGISTRY_OBJ, REGISTRY_QRY):
        for speed in SPEEDS:
            cpm = registry[(speed, "CPM")].total_cell_scans
            assert cpm < registry[(speed, "YPK-CNN")].total_cell_scans
            assert cpm < registry[(speed, "SEA-CNN")].total_cell_scans
