"""Shared benchmark harness.

Every benchmark module regenerates one figure of the paper's evaluation:
each (sweep value, algorithm) pair is a pytest-benchmark case replaying an
identical workload, so the pytest-benchmark table *is* the figure's data
series.  Cell-access metrics ride along in ``extra_info`` and in the
module-level REGISTRY, which the trailing (non-benchmark) shape tests use
to assert the paper's qualitative claims — who wins, and how curves move.

Scale: benchmarks default to ``REPRO_BENCH_SCALE`` (default 0.02; 2% of
the paper's population and query counts).  Raise it toward 1.0 to run the
paper's full sizes.  All sweeps keep the paper's parameter ratios.
"""

from __future__ import annotations

import os

from repro.engine.metrics import RunReport
from repro.api.session import replay_workload
from repro.experiments.common import (
    build_monitor,
    make_workload,
    scaled_grid,
    scaled_spec,
)
from repro.mobility.workload import Workload, WorkloadSpec

ALGORITHMS = ("CPM", "YPK-CNN", "SEA-CNN")


def bench_scale() -> float:
    """Workload scale for the benchmark suite (env-overridable)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))


_WORKLOADS: dict[WorkloadSpec, Workload] = {}


def cached_workload(spec: WorkloadSpec) -> Workload:
    """Materialize (once) and cache the workload for a spec."""
    workload = _WORKLOADS.get(spec)
    if workload is None:
        workload = make_workload(spec)
        _WORKLOADS[spec] = workload
    return workload


def replay(algorithm: str, workload: Workload, cells_per_axis: int) -> RunReport:
    """One full replay of a workload into a fresh monitor."""
    monitor = build_monitor(algorithm, cells_per_axis, bounds=workload.spec.bounds)
    return replay_workload(monitor, workload)


def run_benchmark_case(
    benchmark,
    registry: dict,
    key: tuple,
    algorithm: str,
    workload: Workload,
    cells_per_axis: int,
) -> RunReport:
    """Standard benchmark body: time a full replay, record the report."""
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["cells_per_axis"] = cells_per_axis
    report = benchmark.pedantic(
        replay, args=(algorithm, workload, cells_per_axis), rounds=1, iterations=1
    )
    benchmark.extra_info["cell_accesses_per_query_per_ts"] = round(
        report.cell_accesses_per_query_per_timestamp, 4
    )
    benchmark.extra_info["total_cell_scans"] = report.total_cell_scans
    registry[key] = report
    return report


def series(registry: dict, algorithm: str, metric: str = "total_processing_sec"):
    """Extract one algorithm's series from a registry, in sweep order."""
    out = []
    for (value, algo), report in registry.items():
        if algo == algorithm:
            out.append((value, getattr(report, metric)))
    return out


def print_series_table(title: str, registry: dict, algorithms=ALGORITHMS) -> None:
    """Print the regenerated figure series (visible with pytest -s)."""
    values = []
    for (value, _algo) in registry.items():
        if value[0] not in values:
            values.append(value[0])
    print(f"\n== {title} ==")
    header = ["param"] + [f"{a} cpu(s)" for a in algorithms] + [
        f"{a} acc/q/ts" for a in algorithms
    ]
    print("  ".join(header))
    for value in values:
        row = [str(value)]
        for algo in algorithms:
            report = registry.get((value, algo))
            row.append(f"{report.total_processing_sec:.3f}" if report else "-")
        for algo in algorithms:
            report = registry.get((value, algo))
            row.append(
                f"{report.cell_accesses_per_query_per_timestamp:.2f}" if report else "-"
            )
        print("  ".join(row))


def default_spec(**overrides) -> WorkloadSpec:
    """Scaled Table 6.1 defaults for the benchmark suite."""
    return scaled_spec(bench_scale(), **overrides)


def default_grid() -> int:
    """Scaled default grid granularity (128 at full scale)."""
    return scaled_grid(bench_scale())
