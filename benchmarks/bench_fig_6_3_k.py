"""Figure 6.3 — effect of k: CPU time (6.3a) and cell accesses (6.3b).

Paper: costs grow with k; CPM stays far below the baselines in both
metrics, and for small k CPM performs less than one cell access per query
per timestamp (results maintained from the update stream alone).
"""

import pytest

from _harness import (
    ALGORITHMS,
    bench_scale,
    cached_workload,
    default_grid,
    default_spec,
    print_series_table,
    run_benchmark_case,
)
from repro.experiments.fig_6_3 import PAPER_K

REGISTRY: dict = {}


def k_values() -> list[int]:
    spec = default_spec()
    seen = []
    for paper_k in PAPER_K:
        k = min(paper_k, max(1, spec.n_objects // 8))
        if k not in seen:
            seen.append(k)
    return seen


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("k", k_values())
def test_fig_6_3(benchmark, k, algorithm):
    benchmark.group = f"fig6.3 k={k}"
    workload = cached_workload(default_spec(k=k))
    run_benchmark_case(
        benchmark, REGISTRY, (k, algorithm), algorithm, workload, default_grid()
    )


def test_fig_6_3_shape():
    if not REGISTRY:
        pytest.skip("benchmarks did not run")
    print_series_table("Figure 6.3: CPU and cell accesses vs k", REGISTRY)
    for k in k_values():
        cpm = REGISTRY[(k, "CPM")]
        ypk = REGISTRY[(k, "YPK-CNN")]
        sea = REGISTRY[(k, "SEA-CNN")]
        # 6.3b: CPM accesses far fewer cells at every k.
        assert cpm.total_cell_scans < ypk.total_cell_scans
        assert cpm.total_cell_scans < sea.total_cell_scans
    # For the smallest k, CPM stays within ~1 access per query per
    # timestamp (the paper reports < 1 for k=1 and k=4).
    smallest = min(k_values())
    cpm_small = REGISTRY[(smallest, "CPM")]
    assert cpm_small.cell_accesses_per_query_per_timestamp < 5.0
    # Cell accesses grow with k for every algorithm.
    for algo in ALGORITHMS:
        accesses = [
            REGISTRY[(k, algo)].total_cell_scans for k in sorted(k_values())
        ]
        assert accesses[-1] > accesses[0], algo
