"""Figure 6.1 — CPU time versus grid granularity.

Paper: grids 32^2 .. 1024^2 at Table 6.1 defaults; CPM lowest everywhere,
SEA-CNN worse than YPK-CNN (moving-query overhead), every method degrading
at over-fine granularities.  Granularities scale with the workload so that
objects-per-cell match the paper's densities (see EXPERIMENTS.md).
"""

import pytest

from _harness import (
    ALGORITHMS,
    bench_scale,
    cached_workload,
    default_spec,
    print_series_table,
    run_benchmark_case,
)
from repro.experiments.common import scaled_grid
from repro.experiments.fig_6_1 import PAPER_GRIDS

REGISTRY: dict = {}


def grids() -> list[int]:
    seen = []
    for paper_grid in PAPER_GRIDS:
        grid = scaled_grid(bench_scale(), paper_grid)
        if grid not in seen:
            seen.append(grid)
    return seen


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("grid", grids())
def test_fig_6_1(benchmark, grid, algorithm):
    benchmark.group = f"fig6.1 granularity grid={grid}"
    workload = cached_workload(default_spec())
    run_benchmark_case(benchmark, REGISTRY, (grid, algorithm), algorithm, workload, grid)


def test_fig_6_1_shape():
    """CPM must scan the fewest cells at every granularity."""
    if not REGISTRY:
        pytest.skip("benchmarks did not run (collected with -k or --benchmark-skip)")
    print_series_table("Figure 6.1: CPU vs granularity", REGISTRY)
    for grid in grids():
        cpm = REGISTRY[(grid, "CPM")]
        ypk = REGISTRY[(grid, "YPK-CNN")]
        sea = REGISTRY[(grid, "SEA-CNN")]
        assert (
            cpm.total_cell_scans < ypk.total_cell_scans
        ), f"CPM should scan fewer cells than YPK-CNN at {grid}^2"
        assert (
            cpm.total_cell_scans < sea.total_cell_scans
        ), f"CPM should scan fewer cells than SEA-CNN at {grid}^2"
